"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only exists so
that `pip install -e .` can fall back to the legacy setuptools editable
install when PEP 517 build isolation is unavailable (offline environments).
"""
from setuptools import setup

setup()
