#!/usr/bin/env python3
"""Technology-scaling study: why bitline isolation only pays off at 70nm.

Walks the four CMOS nodes of Table 1 and shows, from the circuit models
alone, the two trends the paper's argument rests on:

1. the energy overhead of toggling the precharge devices collapses
   relative to the leakage it saves (Figure 2), and
2. the worst-case bitline pull-up never fits in the final decode stage,
   so on-demand precharging always costs a cycle (Table 3).

It then runs one benchmark with gated precharging at each node to show the
architectural consequence: the discharge savings grow toward 70nm.

Usage::

    python examples/technology_scaling.py [benchmark]
"""

from __future__ import annotations

import sys

from repro.circuits import available_nodes, cache_organization, get_technology
from repro.circuits.transient import isolation_transient
from repro.experiments.report import format_table
from repro.sim import PolicySpec, SimEngine, SimulationConfig


def circuit_trends() -> None:
    rows = []
    for nm in available_nodes():
        tech = get_technology(nm)
        transient = isolation_transient(tech)
        org = cache_organization(nm, 32 * 1024, 32, 2, 1024, ports=2)
        rows.append(
            [
                nm,
                f"{tech.supply_voltage:.1f}",
                f"{tech.clock_frequency_ghz:.1f}",
                f"{transient.peak_normalized_power * 100:.0f}%",
                f"{transient.settling_time_s * 1e9:.0f}",
                f"{org.decoder.final_decode_s * 1e9:.3f}",
                f"{org.subarray.worst_case_pull_up_s * 1e9:.3f}",
                org.isolated_access_penalty_cycles,
            ]
        )
    print(
        format_table(
            headers=[
                "Node (nm)",
                "Vdd",
                "GHz",
                "Isolation peak power",
                "Settle (ns)",
                "Final decode (ns)",
                "Pull-up (ns)",
                "Penalty (cycles)",
            ],
            rows=rows,
            title="Circuit-level scaling trends (Figure 2 / Table 3)",
        )
    )


def architectural_consequence(benchmark: str) -> None:
    engine = SimEngine()
    configs = [
        SimulationConfig(
            benchmark=benchmark,
            dcache=PolicySpec("gated-predecode"),
            icache=PolicySpec("gated"),
            feature_size_nm=nm,
            n_instructions=12_000,
        )
        for nm in available_nodes()
    ]
    results = engine.run_many(configs, workers=min(4, len(configs)))
    rows = []
    for nm, result in zip(available_nodes(), results):
        rows.append(
            [
                nm,
                f"{result.energy.dcache_relative_discharge:.3f}",
                f"{result.energy.icache_relative_discharge:.3f}",
            ]
        )
    print()
    print(
        format_table(
            headers=["Node (nm)", "D-cache rel. discharge", "I-cache rel. discharge"],
            rows=rows,
            title=f"Gated precharging across nodes ({benchmark})",
        )
    )


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    circuit_trends()
    architectural_consequence(benchmark)


if __name__ == "__main__":
    main()
