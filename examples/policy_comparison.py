#!/usr/bin/env python3
"""Compare every precharge-control policy on a set of benchmarks.

Reproduces, in miniature, the paper's central comparison: for each
benchmark the five policies (static pull-up, oracle, on-demand, gated,
resizable) are simulated and their execution time and remaining bitline
discharge are tabulated — showing that gated precharging captures nearly
all of the oracle's savings at a fraction of on-demand's performance cost.

Usage::

    python examples/policy_comparison.py [benchmark ...]
"""

from __future__ import annotations

import sys

from repro.experiments.report import format_table
from repro.sim import PolicySpec, SimEngine, SimulationConfig, slowdown

POLICIES = [
    ("static", "static"),
    ("oracle", "oracle"),
    ("on-demand", "on-demand"),
    ("gated-predecode", "gated"),
    ("resizable", "resizable"),
]


def main() -> None:
    benchmarks = sys.argv[1:] or ["gcc", "mesa", "health"]
    n_instructions = 15_000

    engine = SimEngine()
    for benchmark in benchmarks:
        configs = [
            SimulationConfig(
                benchmark=benchmark,
                dcache=PolicySpec(dcache_policy),
                icache=PolicySpec(icache_policy),
                feature_size_nm=70,
                n_instructions=n_instructions,
            )
            for dcache_policy, icache_policy in POLICIES
        ]
        results = engine.run_many(configs, workers=min(4, len(configs)))
        baseline = results[0]
        rows = []
        for (dcache_policy, _), result in zip(POLICIES, results):
            rows.append(
                [
                    dcache_policy,
                    f"{result.cycles}",
                    f"{slowdown(result, baseline) * 100:+.2f}%",
                    f"{result.energy.dcache_relative_discharge:.3f}",
                    f"{result.energy.icache_relative_discharge:.3f}",
                    f"{result.energy.dcache.precharged_fraction:.3f}",
                ]
            )
        print(
            format_table(
                headers=[
                    "Policy (D-cache)",
                    "Cycles",
                    "Slowdown",
                    "D rel. discharge",
                    "I rel. discharge",
                    "D precharged frac",
                ],
                rows=rows,
                title=f"\n=== {benchmark} (70nm, {n_instructions} micro-ops) ===",
            )
        )


if __name__ == "__main__":
    main()
