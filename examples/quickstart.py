#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under gated precharging.

Runs the synthetic ``gcc`` workload through the out-of-order processor
model twice — once with conventional statically pulled-up L1 caches and
once with gated precharging (the paper's technique) — and prints the
performance and bitline-discharge comparison.

Usage::

    python examples/quickstart.py [benchmark] [threshold]
"""

from __future__ import annotations

import sys

from repro.sim import PolicySpec, SimEngine, SimulationConfig, slowdown


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    threshold = int(sys.argv[2]) if len(sys.argv) > 2 else 100

    baseline_config = SimulationConfig(
        benchmark=benchmark,
        dcache=PolicySpec("static"),
        icache=PolicySpec("static"),
        feature_size_nm=70,
        n_instructions=20_000,
    )
    gated_config = baseline_config.with_policies(
        dcache=PolicySpec("gated-predecode", {"threshold": threshold}),
        icache=PolicySpec("gated", {"threshold": threshold}),
    )

    engine = SimEngine()
    print(f"Simulating {benchmark!r} at 70nm ({baseline_config.n_instructions} micro-ops)...")
    baseline, gated = engine.run_many([baseline_config, gated_config])

    print()
    print(f"Baseline (static pull-up):   {baseline.summary()}")
    print(f"Gated precharging (T={threshold}):  {gated.summary()}")
    print()
    print(f"Performance degradation:        {slowdown(gated, baseline) * 100:6.2f}%")
    print(
        "Data-cache bitline discharge:   "
        f"{gated.energy.dcache_relative_discharge * 100:6.1f}% of conventional "
        f"({gated.energy.dcache_discharge_savings * 100:.1f}% eliminated)"
    )
    print(
        "Instr-cache bitline discharge:  "
        f"{gated.energy.icache_relative_discharge * 100:6.1f}% of conventional "
        f"({gated.energy.icache_discharge_savings * 100:.1f}% eliminated)"
    )
    print(
        "Subarrays kept precharged:      "
        f"data {gated.energy.dcache.precharged_fraction * 100:.1f}%, "
        f"instruction {gated.energy.icache.precharged_fraction * 100:.1f}%"
    )


if __name__ == "__main__":
    main()
