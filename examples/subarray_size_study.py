#!/usr/bin/env python3
"""Subarray-size sensitivity study (Figure 10 in miniature).

Runs gated precharging with 4KB, 1KB, 256B and 64B subarrays on a few
benchmarks and reports the fraction of subarrays kept precharged and the
remaining bitline discharge — showing the paper's finding that smaller
subarrays give finer control with diminishing returns below 256B.

Usage::

    python examples/subarray_size_study.py [benchmark ...]
"""

from __future__ import annotations

import sys

from repro.experiments.figure10 import SUBARRAY_SIZES
from repro.experiments.report import format_table
from repro.sim import PolicySpec, SimEngine, SimulationConfig


def main() -> None:
    benchmarks = sys.argv[1:] or ["gcc", "treeadd"]
    n_instructions = 12_000

    engine = SimEngine()
    for benchmark in benchmarks:
        configs = [
            SimulationConfig(
                benchmark=benchmark,
                dcache=PolicySpec("gated-predecode"),
                icache=PolicySpec("gated"),
                feature_size_nm=70,
                subarray_bytes=size,
                n_instructions=n_instructions,
            )
            for size in SUBARRAY_SIZES
        ]
        results = engine.run_many(configs, workers=min(4, len(configs)))
        rows = []
        for size, result in zip(SUBARRAY_SIZES, results):
            label = f"{size // 1024}KB" if size >= 1024 else f"{size}B"
            rows.append(
                [
                    label,
                    f"{result.energy.dcache.precharged_fraction:.3f}",
                    f"{result.energy.icache.precharged_fraction:.3f}",
                    f"{result.energy.dcache_relative_discharge:.3f}",
                    f"{result.energy.icache_relative_discharge:.3f}",
                ]
            )
        print(
            format_table(
                headers=[
                    "Subarray size",
                    "D precharged frac",
                    "I precharged frac",
                    "D rel. discharge",
                    "I rel. discharge",
                ],
                rows=rows,
                title=f"\n=== {benchmark}: effect of subarray size (70nm) ===",
            )
        )


if __name__ == "__main__":
    main()
