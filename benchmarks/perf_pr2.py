"""PR-2 performance harness: fast-path vs reference wall-clock.

Writes ``BENCH_pr2.json`` at the repository root (or ``--output``):

* ``sweep_benchmarks`` — the paper's 16-benchmark sweep (gated/gated),
  timed end-to-end on the reference loop and on the fast path with a
  cold compiled-trace cache, with a result-equality check;
* ``runs`` — a benchmark × policy grid timed one run at a time (the
  fast path's compiled-trace cache is cleared per benchmark, so the
  first policy pays the compile and the rest show the sweep-style
  amortisation a real cross-product enjoys);
* ``summary`` — geometric-mean / min / max speedups.

Usage::

    PYTHONPATH=src python benchmarks/perf_pr2.py
    PYTHONPATH=src python benchmarks/perf_pr2.py --instructions 8000 --output BENCH_pr2.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, execute_run, execute_run_fast
from repro.sim.fastpath import clear_trace_cache
from repro.sim.metrics import geometric_mean
from repro.workloads.characteristics import benchmark_names

#: Policies timed in the per-run grid (the paper's studied schemes).
GRID_POLICIES = ("static", "on-demand", "oracle", "gated", "gated-predecode")

#: Benchmark subset for the per-run grid (the full sixteen are covered
#: by the sweep entry; the grid shows per-policy behaviour).
GRID_BENCHMARKS = ("gcc", "mcf", "art", "equake")


def _time_sweep(instructions: int) -> dict:
    base = SimulationConfig(
        benchmark="gcc", dcache="gated", icache="gated", n_instructions=instructions
    )
    clear_trace_cache()
    start = time.perf_counter()
    reference = SimEngine().sweep(base)
    reference_s = time.perf_counter() - start

    clear_trace_cache()
    start = time.perf_counter()
    fast = SimEngine(fast=True).sweep(base)
    fast_s = time.perf_counter() - start

    identical = all(
        fast[name].to_dict() == reference[name].to_dict() for name in reference
    )
    return {
        "benchmarks": len(reference),
        "reference_s": round(reference_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(reference_s / fast_s, 3),
        "identical": identical,
    }


def _time_grid(instructions: int) -> list:
    rows = []
    for benchmark in GRID_BENCHMARKS:
        clear_trace_cache()
        for policy in GRID_POLICIES:
            config = SimulationConfig(
                benchmark=benchmark,
                dcache=policy,
                icache=policy,
                n_instructions=instructions,
            )
            start = time.perf_counter()
            reference = execute_run(config)
            reference_s = time.perf_counter() - start
            start = time.perf_counter()
            fast = execute_run_fast(config)
            fast_s = time.perf_counter() - start
            rows.append(
                {
                    "benchmark": benchmark,
                    "policy": policy,
                    "reference_s": round(reference_s, 4),
                    "fast_s": round(fast_s, 4),
                    "speedup": round(reference_s / fast_s, 3),
                    "identical": fast.to_dict() == reference.to_dict(),
                }
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--instructions", type=int, default=30_000,
        help="micro-ops per run (default: 30000, the experiments' default)",
    )
    parser.add_argument(
        "--output", default="BENCH_pr2.json", metavar="PATH",
        help="destination JSON (default: BENCH_pr2.json)",
    )
    args = parser.parse_args(argv)

    print(f"timing sweep_benchmarks ({len(benchmark_names())} benchmarks, "
          f"{args.instructions} ops each)...", flush=True)
    sweep = _time_sweep(args.instructions)
    print(f"  reference {sweep['reference_s']:.2f}s  fast {sweep['fast_s']:.2f}s  "
          f"speedup {sweep['speedup']:.2f}x  identical={sweep['identical']}")

    print("timing benchmark x policy grid...", flush=True)
    runs = _time_grid(args.instructions)
    for row in runs:
        print(f"  {row['benchmark']:8s} {row['policy']:16s} "
              f"{row['reference_s']:7.3f}s -> {row['fast_s']:7.3f}s  "
              f"{row['speedup']:5.2f}x")

    speedups = [row["speedup"] for row in runs]
    payload = {
        "schema": "repro-bench/pr2",
        "instructions": args.instructions,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sweep_benchmarks": sweep,
        "runs": runs,
        "summary": {
            "grid_geomean_speedup": round(geometric_mean(speedups), 3),
            "grid_min_speedup": min(speedups),
            "grid_max_speedup": max(speedups),
            "sweep_speedup": sweep["speedup"],
            "all_identical": sweep["identical"] and all(r["identical"] for r in runs),
        },
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    if not payload["summary"]["all_identical"]:
        print("ERROR: fast path diverged from the reference path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
