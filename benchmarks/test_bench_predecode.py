"""Bench: regenerate the Section 6.3 predecoding-accuracy measurement.

Paper shape target: predecoding identifies the accessed subarray correctly
for the large majority of memory operations at 1KB subarrays (~80% in the
paper) and degrades clearly for cache-line-sized subarrays (~61%).
"""

from repro.experiments.predecode_accuracy import (
    format_predecode_accuracy,
    predecode_accuracy,
)

from _harness import run_once


def test_bench_predecode_accuracy(benchmark, bench_benchmarks, bench_instructions):
    result = run_once(
        benchmark, predecode_accuracy, benchmarks=bench_benchmarks,
        n_instructions=bench_instructions,
    )
    print()
    print(format_predecode_accuracy(result))

    assert result.average_accuracy(1024) > 0.6
    assert result.average_accuracy(64) < result.average_accuracy(1024)

    benchmark.extra_info["avg_accuracy_1KB"] = round(result.average_accuracy(1024), 3)
    benchmark.extra_info["avg_accuracy_64B"] = round(result.average_accuracy(64), 3)
