"""Bench: regenerate Table 1 (circuit parameters)."""

from repro.experiments.table1 import format_table1, table1_rows

from _harness import run_once


def test_bench_table1(benchmark):
    rows = run_once(benchmark, table1_rows)
    print()
    print(format_table1())
    assert [r.feature_size_nm for r in rows] == [180, 130, 100, 70]
    benchmark.extra_info["nodes"] = [r.feature_size_nm for r in rows]
    benchmark.extra_info["supply_voltages"] = [r.supply_voltage for r in rows]
