"""Bench: regenerate Figure 6 (fraction of hot subarrays vs threshold).

Paper shape target: only a small fraction of subarrays is hot — about 22%
on average at a 100-cycle threshold, and at most ~40% at 1000 cycles.
"""

from repro.experiments.figure6 import figure6, format_figure6

from _harness import run_once


def test_bench_figure6(benchmark, bench_benchmarks, bench_instructions):
    result = run_once(
        benchmark, figure6, benchmarks=bench_benchmarks,
        n_instructions=bench_instructions,
    )
    print()
    print(format_figure6(result))

    hot_100 = result.average_hot_fraction("dcache", 100)
    hot_1000 = result.average_hot_fraction("dcache", 1000)
    assert hot_100 < 0.5
    assert hot_100 <= hot_1000 <= 0.8
    assert result.average_hot_fraction("icache", 100) < hot_1000

    benchmark.extra_info["avg_dcache_hot_fraction_100"] = round(hot_100, 3)
    benchmark.extra_info["avg_dcache_hot_fraction_1000"] = round(hot_1000, 3)
    benchmark.extra_info["avg_icache_hot_fraction_100"] = round(
        result.average_hot_fraction("icache", 100), 3
    )
