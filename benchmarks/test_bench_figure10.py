"""Bench: regenerate Figure 10 (effect of subarray size on gated precharging).

Paper shape targets: the precharged-subarray fraction falls as subarrays
shrink from 4KB to 64B (28/10/8/7% for data caches, 18/8/6/5% for
instruction caches), with diminishing returns below 256B.
"""

from repro.experiments.figure10 import SUBARRAY_SIZES, figure10, format_figure10

from _harness import FULL, run_once

SIZES = SUBARRAY_SIZES if FULL else (4096, 1024, 256)


def test_bench_figure10(benchmark, bench_benchmarks, bench_instructions):
    result = run_once(
        benchmark, figure10, benchmarks=bench_benchmarks, subarray_sizes=SIZES,
        n_instructions=min(bench_instructions, 12_000),
    )
    print()
    print(format_figure10(result))

    assert result.monotonic_improvement("dcache")
    assert result.monotonic_improvement("icache")
    assert result.dcache_precharged[4096] > result.dcache_precharged[1024]

    benchmark.extra_info["dcache_precharged_by_size"] = {
        size: round(v, 3) for size, v in result.dcache_precharged.items()
    }
    benchmark.extra_info["icache_precharged_by_size"] = {
        size: round(v, 3) for size, v in result.icache_precharged.items()
    }
