"""Bench: regenerate Table 2 (base system configuration)."""

from repro.experiments.table2 import format_table2, table2_rows

from _harness import run_once


def test_bench_table2(benchmark):
    rows = run_once(benchmark, table2_rows)
    print()
    print(format_table2())
    as_dict = dict(rows)
    assert as_dict["Issue & decode"] == "8 instructions per cycle"
    assert "32K" in as_dict["L1 i-cache"]
    benchmark.extra_info["parameters"] = len(rows)
