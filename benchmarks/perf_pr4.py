"""PR-4 performance harness: thin wrapper over ``python -m repro bench``.

The harness itself lives in :mod:`repro.bench` and is exposed as the
``repro bench`` subcommand; this script only preserves the
``benchmarks/perf_prN.py`` invocation convention of earlier PRs::

    PYTHONPATH=src python benchmarks/perf_pr4.py
    PYTHONPATH=src python benchmarks/perf_pr4.py --instructions 8000 --output BENCH_pr4.ci.json

See ``python -m repro bench --help`` for every option (smoke mode,
baseline regression gating, grid selection).
"""

from __future__ import annotations

import sys

from repro.bench import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
