"""Bench: regenerate Figure 3 (oracle potential bitline-discharge savings).

Paper shape target at 70nm: the oracle removes roughly 89% (data cache)
and 90% (instruction cache) of the bitline discharge on average.
"""

from repro.experiments.figure3 import figure3, format_figure3

from _harness import run_once


def test_bench_figure3(benchmark, bench_benchmarks, bench_instructions):
    result = run_once(
        benchmark, figure3, benchmarks=bench_benchmarks,
        n_instructions=bench_instructions,
    )
    print()
    print(format_figure3(result))

    assert result.average_discharge_savings_dcache > 0.75
    assert result.average_discharge_savings_icache > 0.80

    benchmark.extra_info["avg_dcache_discharge_savings"] = round(
        result.average_discharge_savings_dcache, 3
    )
    benchmark.extra_info["avg_icache_discharge_savings"] = round(
        result.average_discharge_savings_icache, 3
    )
    benchmark.extra_info["avg_dcache_overall_opportunity"] = round(
        result.average_overall_savings_dcache, 3
    )
    benchmark.extra_info["avg_icache_overall_opportunity"] = round(
        result.average_overall_savings_icache, 3
    )
