"""Bench: regenerate Figure 8 (gated precharging results).

Paper shape targets at 70nm with per-benchmark optimum thresholds: about
10% (data) / 6% (instruction) of subarrays stay precharged, removing
roughly 83% / 87% of the bitline discharge (78% / 81% with the constant
100-cycle threshold), all at ~1% performance degradation.
"""

from repro.experiments.figure8 import figure8, format_figure8

from _harness import run_once


def test_bench_figure8(benchmark, bench_benchmarks, bench_instructions):
    result = run_once(
        benchmark, figure8, benchmarks=bench_benchmarks,
        n_instructions=bench_instructions,
    )
    print()
    print(format_figure8(result))

    assert result.average_dcache_discharge_reduction > 0.6
    assert result.average_icache_discharge_reduction > 0.8
    assert result.average_dcache_precharged < 0.3
    assert result.average_icache_precharged < 0.15
    assert result.average_slowdown < 0.02
    # The constant threshold lands in the same range as the per-benchmark
    # optimum (the paper reports 78/81% vs 83/87%); the profiling-based
    # optimum errs on the conservative side for some benchmarks, so allow a
    # modest margin in either direction.
    assert (
        result.average_dcache_discharge_reduction_constant
        <= result.average_dcache_discharge_reduction + 0.25
    )

    benchmark.extra_info["avg_dcache_discharge_reduction"] = round(
        result.average_dcache_discharge_reduction, 3
    )
    benchmark.extra_info["avg_icache_discharge_reduction"] = round(
        result.average_icache_discharge_reduction, 3
    )
    benchmark.extra_info["avg_dcache_precharged_fraction"] = round(
        result.average_dcache_precharged, 3
    )
    benchmark.extra_info["avg_icache_precharged_fraction"] = round(
        result.average_icache_precharged, 3
    )
    benchmark.extra_info["avg_slowdown"] = round(result.average_slowdown, 4)
    benchmark.extra_info["avg_dcache_overall_savings"] = round(
        result.average_dcache_overall_savings, 3
    )
    benchmark.extra_info["avg_icache_overall_savings"] = round(
        result.average_icache_overall_savings, 3
    )
    benchmark.extra_info["constant_threshold_dcache_reduction"] = round(
        result.average_dcache_discharge_reduction_constant, 3
    )
    benchmark.extra_info["constant_threshold_icache_reduction"] = round(
        result.average_icache_discharge_reduction_constant, 3
    )
