"""PR-3 performance harness: fast-path speedup with the L2 stage enabled.

PR 3 made the unified L2 a first-class, policy-controlled cache in both
execution paths (plus dirty-eviction writeback propagation).  This
harness shows the batched fast path keeps its >=4x advantage now that
every run carries a policy-driven L2 — and that results stay
bit-identical.  Writes ``BENCH_pr3.json`` at the repository root (or
``--output``):

* ``sweep_benchmarks`` — the 16-benchmark sweep with gated L1s *and* a
  gated L2, timed end-to-end on the reference loop and on the fast path
  with a cold compiled-trace cache, with a result-equality check;
* ``l2_grid`` — a benchmark x L2-policy grid timed one run at a time
  (L1s fixed at gated; the compiled-trace cache is cleared per
  benchmark, so the first policy pays the compile and the rest show the
  amortisation a real L2 sweep enjoys);
* ``summary`` — geometric-mean / min / max speedups and the identity
  verdict.

Usage::

    PYTHONPATH=src python benchmarks/perf_pr3.py
    PYTHONPATH=src python benchmarks/perf_pr3.py --instructions 8000 --output BENCH_pr3.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.registry import PolicySpec
from repro.experiments.l2sweep import L2_POLICY_MENU, _policy_label as _label
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, execute_run, execute_run_fast
from repro.sim.fastpath import clear_trace_cache
from repro.sim.metrics import geometric_mean
from repro.workloads.characteristics import benchmark_names

#: L2 policies timed in the per-run grid: the l2sweep experiment's axis,
#: imported so the bench and the experiment can never drift apart.
L2_GRID_POLICIES = L2_POLICY_MENU

#: Benchmark subset for the per-run grid (the full sixteen are covered
#: by the sweep entry; the grid shows per-L2-policy behaviour).
GRID_BENCHMARKS = ("gcc", "mcf", "art", "equake")


def _base_config(instructions: int) -> SimulationConfig:
    return SimulationConfig(
        benchmark="gcc",
        dcache="gated",
        icache="gated",
        l2=PolicySpec("gated", {"threshold": 500}),
        n_instructions=instructions,
    )


def _time_sweep(instructions: int) -> dict:
    base = _base_config(instructions)
    clear_trace_cache()
    start = time.perf_counter()
    reference = SimEngine().sweep(base)
    reference_s = time.perf_counter() - start

    clear_trace_cache()
    start = time.perf_counter()
    fast = SimEngine(fast=True).sweep(base)
    fast_s = time.perf_counter() - start

    identical = all(
        fast[name].to_dict() == reference[name].to_dict() for name in reference
    )
    return {
        "benchmarks": len(reference),
        "l2_policy": _label(base.l2),
        "reference_s": round(reference_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(reference_s / fast_s, 3),
        "identical": identical,
    }


def _time_l2_grid(instructions: int) -> list:
    rows = []
    for benchmark in GRID_BENCHMARKS:
        clear_trace_cache()
        for l2_spec in L2_GRID_POLICIES:
            config = SimulationConfig(
                benchmark=benchmark,
                dcache="gated",
                icache="gated",
                l2=l2_spec,
                n_instructions=instructions,
            )
            start = time.perf_counter()
            reference = execute_run(config)
            reference_s = time.perf_counter() - start
            start = time.perf_counter()
            fast = execute_run_fast(config)
            fast_s = time.perf_counter() - start
            rows.append(
                {
                    "benchmark": benchmark,
                    "l2_policy": _label(l2_spec),
                    "reference_s": round(reference_s, 4),
                    "fast_s": round(fast_s, 4),
                    "speedup": round(reference_s / fast_s, 3),
                    "identical": fast.to_dict() == reference.to_dict(),
                }
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--instructions", type=int, default=30_000,
        help="micro-ops per run (default: 30000, the experiments' default)",
    )
    parser.add_argument(
        "--output", default="BENCH_pr3.json", metavar="PATH",
        help="destination JSON (default: BENCH_pr3.json)",
    )
    args = parser.parse_args(argv)

    print(f"timing sweep_benchmarks with gated L2 ({len(benchmark_names())} "
          f"benchmarks, {args.instructions} ops each)...", flush=True)
    sweep = _time_sweep(args.instructions)
    print(f"  reference {sweep['reference_s']:.2f}s  fast {sweep['fast_s']:.2f}s  "
          f"speedup {sweep['speedup']:.2f}x  identical={sweep['identical']}")

    print("timing benchmark x L2-policy grid...", flush=True)
    rows = _time_l2_grid(args.instructions)
    for row in rows:
        print(f"  {row['benchmark']:8s} L2={row['l2_policy']:16s} "
              f"{row['reference_s']:7.3f}s -> {row['fast_s']:7.3f}s  "
              f"{row['speedup']:5.2f}x")

    speedups = [row["speedup"] for row in rows]
    payload = {
        "schema": "repro-bench/pr3",
        "instructions": args.instructions,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sweep_benchmarks": sweep,
        "l2_grid": rows,
        "summary": {
            "grid_geomean_speedup": round(geometric_mean(speedups), 3),
            "grid_min_speedup": min(speedups),
            "grid_max_speedup": max(speedups),
            "sweep_speedup": sweep["speedup"],
            "all_identical": sweep["identical"] and all(r["identical"] for r in rows),
        },
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    if not payload["summary"]["all_identical"]:
        print("ERROR: fast path diverged from the reference path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
