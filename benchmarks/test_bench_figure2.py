"""Bench: regenerate Figure 2 (post-isolation bitline power transient).

Paper shape targets: isolation overhead peaks near 195% of the static
pull-up power at 180nm and takes hundreds of nanoseconds to settle, while
at 70nm the switching spike is insignificant and dies out quickly.
"""

from repro.experiments.figure2 import figure2, format_figure2

from _harness import run_once


def test_bench_figure2(benchmark):
    result = run_once(benchmark, figure2)
    print()
    print(format_figure2(result))

    assert 180 <= result.peak_overhead_percent(180) <= 210
    assert result.peak_overhead_percent(70) < 105
    assert result.settling_time_ns(70) < result.settling_time_ns(180)

    benchmark.extra_info["peak_percent_by_node"] = {
        nm: round(result.peak_overhead_percent(nm), 1) for nm in result.transients
    }
    benchmark.extra_info["settling_ns_by_node"] = {
        nm: round(result.settling_time_ns(nm), 1) for nm in result.transients
    }
