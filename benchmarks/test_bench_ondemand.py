"""Bench: regenerate the Section 5 on-demand precharging slowdowns.

Paper shape target: delaying every access by the pull-up cycle costs a
noticeable slowdown (the paper reports ~9% for data caches and ~7% for
instruction caches on its 16-stage Wattch baseline) — far more than the
~1% budget gated precharging respects.
"""

from repro.experiments.ondemand import format_ondemand, ondemand_slowdown

from _harness import run_once


def test_bench_ondemand_slowdown(benchmark, bench_benchmarks, bench_instructions):
    result = run_once(
        benchmark, ondemand_slowdown, benchmarks=bench_benchmarks,
        n_instructions=bench_instructions,
    )
    print()
    print(format_ondemand(result))

    assert result.average_dcache_slowdown > 0.005
    assert result.average_icache_slowdown > 0.005

    benchmark.extra_info["avg_dcache_slowdown"] = round(
        result.average_dcache_slowdown, 4
    )
    benchmark.extra_info["avg_icache_slowdown"] = round(
        result.average_icache_slowdown, 4
    )
