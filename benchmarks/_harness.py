"""Shared helpers for the benchmark harness.

Importable as a regular module (``from _harness import run_once``) so the
``test_bench_*`` files work under pytest's importlib import mode, where
``conftest.py`` itself is not an importable module name.  The benchmarks
directory is put on ``sys.path`` by ``conftest.py``.

By default the architectural experiments run a representative subset of
the sixteen benchmarks with shortened instruction counts so the whole
harness finishes in a few minutes; set ``REPRO_BENCH_FULL=1`` to sweep all
sixteen benchmarks at the full default run length (as used for the numbers
recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import os

from repro.workloads.characteristics import benchmark_names

#: Representative subset covering the paper's behaviour classes: two of the
#: three high-miss-rate outliers (art, health), a large-code integer program
#: (gcc), a regular FP program (mesa, wupwise) and a pointer-chasing Olden
#: kernel (treeadd).
FAST_BENCHMARKS = ["art", "gcc", "health", "mesa", "treeadd", "wupwise"]

FULL = os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false")

#: Benchmarks each experiment sweeps.
BENCHMARKS = benchmark_names() if FULL else FAST_BENCHMARKS

#: Micro-ops simulated per run.
N_INSTRUCTIONS = 20_000 if FULL else 10_000


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
