"""Bench: regenerate Table 3 (decode stage delays vs worst-case pull-up).

Paper shape target: the worst-case bitline pull-up exceeds the final
decode stage delay for every subarray size and technology node, so
on-demand precharging always costs an extra cycle.
"""

from repro.experiments.table3 import format_table3, table3_rows

from _harness import run_once


def test_bench_table3(benchmark):
    rows = run_once(benchmark, table3_rows)
    print()
    print(format_table3(rows))

    assert len(rows) == 8
    assert all(row.pull_up_exceeds_final_decode for row in rows)
    by_key = {(r.subarray_bytes, r.feature_size_nm): r for r in rows}
    # Spot-check the anchor values against the paper (180nm / 1KB row).
    anchor = by_key[(1024, 180)]
    assert 0.35 <= anchor.worst_case_pull_up_ns <= 0.45
    assert 0.18 <= anchor.final_decode_ns <= 0.22

    benchmark.extra_info["pull_up_ns"] = {
        f"{size}B@{nm}nm": round(row.worst_case_pull_up_ns, 3)
        for (size, nm), row in by_key.items()
    }
