"""Bench: regenerate Figure 5 (cumulative accesses vs subarray access frequency).

Paper shape target: for most benchmarks the large majority of cache
accesses land on subarrays accessed within the last ~100 cycles; the
high-miss-rate outliers (ammp, art, health) sit noticeably lower.
"""

from repro.experiments.figure5 import figure5, format_figure5
from repro.sim.metrics import arithmetic_mean

from _harness import run_once


def test_bench_figure5(benchmark, bench_benchmarks, bench_instructions):
    result = run_once(
        benchmark, figure5, benchmarks=bench_benchmarks,
        n_instructions=bench_instructions,
    )
    print()
    print(format_figure5(result))

    hot100 = [series[100] for series in result.dcache.values()]
    assert arithmetic_mean(hot100) > 0.5
    # The thrashing outliers show lower subarray access frequency.
    regular = [
        series[100] for name, series in result.dcache.items()
        if name not in ("ammp", "art", "health")
    ]
    if regular:
        assert arithmetic_mean(regular) >= arithmetic_mean(hot100)

    benchmark.extra_info["dcache_fraction_within_100_cycles"] = {
        name: round(series[100], 3) for name, series in result.dcache.items()
    }
    benchmark.extra_info["icache_fraction_within_100_cycles"] = {
        name: round(series[100], 3) for name, series in result.icache.items()
    }
