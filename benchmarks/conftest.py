"""Pytest wiring for the benchmark harness.

Each ``test_bench_*.py`` module regenerates one table or figure of the
paper and reports the headline numbers through pytest-benchmark's
``extra_info`` as well as stdout (run with ``-s`` to see the full tables).

The shared constants and helpers live in :mod:`_harness`; this file makes
that module importable under any pytest import mode and exposes the
session fixtures.
"""

from __future__ import annotations

import os
import sys

import pytest

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from _harness import BENCHMARKS, N_INSTRUCTIONS  # noqa: E402


@pytest.fixture(scope="session")
def bench_benchmarks():
    """The benchmark names swept by the harness."""
    return list(BENCHMARKS)


@pytest.fixture(scope="session")
def bench_instructions():
    """The per-run instruction budget used by the harness."""
    return N_INSTRUCTIONS
