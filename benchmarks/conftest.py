"""Shared configuration for the benchmark harness.

Each ``test_bench_*.py`` module regenerates one table or figure of the
paper and reports the headline numbers through pytest-benchmark's
``extra_info`` as well as stdout (run with ``-s`` to see the full tables).

By default the architectural experiments run a representative subset of
the sixteen benchmarks with shortened instruction counts so the whole
harness finishes in a few minutes; set ``REPRO_BENCH_FULL=1`` to sweep all
sixteen benchmarks at the full default run length (as used for the numbers
recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.workloads.characteristics import benchmark_names

#: Representative subset covering the paper's behaviour classes: two of the
#: three high-miss-rate outliers (art, health), a large-code integer program
#: (gcc), a regular FP program (mesa, wupwise) and a pointer-chasing Olden
#: kernel (treeadd).
FAST_BENCHMARKS = ["art", "gcc", "health", "mesa", "treeadd", "wupwise"]

FULL = os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false")

#: Benchmarks each experiment sweeps.
BENCHMARKS = benchmark_names() if FULL else FAST_BENCHMARKS

#: Micro-ops simulated per run.
N_INSTRUCTIONS = 20_000 if FULL else 10_000


@pytest.fixture(scope="session")
def bench_benchmarks():
    """The benchmark names swept by the harness."""
    return list(BENCHMARKS)


@pytest.fixture(scope="session")
def bench_instructions():
    """The per-run instruction budget used by the harness."""
    return N_INSTRUCTIONS


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
