"""Bench: regenerate Figure 9 (gated precharging vs resizable caches).

Paper shape targets: resizable caches deliver a roughly flat, modest
discharge reduction across technology nodes, while gated precharging
improves sharply towards 70nm and ends clearly ahead.
"""

from repro.experiments.figure9 import figure9, format_figure9

from _harness import FULL, run_once

#: The two end-point nodes capture the scaling trend; the full sweep adds
#: the intermediate generations.
NODES = [180, 130, 100, 70] if FULL else [180, 70]


def test_bench_figure9(benchmark, bench_benchmarks, bench_instructions):
    result = run_once(
        benchmark, figure9, benchmarks=bench_benchmarks, nodes=NODES,
        n_instructions=min(bench_instructions, 12_000),
    )
    print()
    print(format_figure9(result))

    assert result.gated_beats_resizable_at(70)
    assert result.gated_dcache[70] < result.gated_dcache[180]
    # Resizable caches change little across nodes (coarse-grained savings).
    resizable_spread = abs(result.resizable_dcache[70] - result.resizable_dcache[180])
    gated_spread = abs(result.gated_dcache[70] - result.gated_dcache[180])
    assert resizable_spread < gated_spread + 0.2

    benchmark.extra_info["gated_dcache_by_node"] = {
        nm: round(v, 3) for nm, v in result.gated_dcache.items()
    }
    benchmark.extra_info["resizable_dcache_by_node"] = {
        nm: round(v, 3) for nm, v in result.resizable_dcache.items()
    }
    benchmark.extra_info["gated_icache_by_node"] = {
        nm: round(v, 3) for nm, v in result.gated_icache.items()
    }
    benchmark.extra_info["resizable_icache_by_node"] = {
        nm: round(v, 3) for nm, v in result.resizable_icache.items()
    }
