"""Chaos campaigns: recovery invariants under sampled fault schedules.

``repro fuzz`` pins the *kernels'* correctness; this module pins the
*service's* recovery contract.  Each trial computes a fault-free
baseline locally, then drives a real server (in-process over HTTP for
fault trials, a ``repro serve`` subprocess for kill -9 trials) through
a seeded workload while a :class:`~repro.faults.FaultPlan` sampled from
the trial seed injects worker crashes, torn writes, journal failures,
dropped connections and scheduler faults.  After recovery the trial
asserts the invariants the stack promises:

* every submitted job reaches a **terminal** state;
* **no unit is double-executed** — coalescing and the unit table hold
  under retries (``units_executed`` never exceeds the unique units);
* surviving results are **byte-identical** to the fault-free baseline
  (``RunResult.to_dict()`` equality over the wire);
* a job may finish other-than-``done`` only when the plan injected
  scheduler faults (everything else must self-heal);
* **journal replay is exact**: after a clean drain with every job
  terminal the journal replays empty, and after kill -9 the restarted
  server resumes exactly the unfinished jobs (checked unless the plan
  tore the journal itself, whose at-least-once replay is by design).

Drive it from the shell (CI runs exactly this)::

    python -m repro chaos --budget 25 --seed-base 0 --report chaos.json

Exit status is 1 on any invariant violation, 0 on a clean campaign.
Every trial is deterministic in its seed: workload, fault plan and
injection schedule all derive from string-seeded RNGs.
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from . import faults
from .sim.config import SimulationConfig
from .sim.engine import SimEngine, execute_run_fast
from .sim.store import ResultStore

__all__ = [
    "DEFAULT_CHAOS_INSTRUCTIONS",
    "ChaosTrial",
    "chaos_config",
    "run_campaign",
    "sample_plan",
]

#: Instructions per chaos unit.  Recovery is binary, not asymptotic;
#: this crosses enough simulation to make results non-trivial while a
#: 25-trial campaign stays in CI-friendly time.
DEFAULT_CHAOS_INSTRUCTIONS = 1500

#: Workloads trials sample from: plain benchmarks, scenarios, fuzz names
#: — every workload family the store digests handle.
_WORKLOADS = [
    "gcc",
    "art",
    "mcf",
    "equake",
    "vpr",
    "bzip2",
    "mix:gcc+art@300",
    "phases:gcc+mcf@400",
    "fuzz:3/2",
]

#: Per-site action/parameter palettes for :func:`sample_plan`.  Every
#: probabilistic rule is capped (``max``) so a sampled plan can slow a
#: trial down but never wedge it.
_PLAN_PALETTE: Dict[str, List[str]] = {
    "engine.chunk": ["crash", "raise", "hang"],
    "store.put": ["torn", "corrupt", "error", "slow"],
    "store.get": ["error", "slow"],
    "journal.append": ["torn", "error"],
    "scheduler.unit": ["raise", "timeout"],
    "server.response": ["error", "drop"],
    "client.request": ["drop", "stall"],
}


def chaos_config(
    benchmark: str,
    n_instructions: int = DEFAULT_CHAOS_INSTRUCTIONS,
    seed: int = 1,
) -> SimulationConfig:
    """One chaos unit: precharge-gated D-cache, deterministic seed."""
    return SimulationConfig(
        benchmark=benchmark,
        dcache="gated",
        n_instructions=n_instructions,
        seed=seed,
    )


def sample_plan(seed: int) -> faults.FaultPlan:
    """A deterministic fault plan for one trial seed.

    One to three sites, each with an action and bounded schedule drawn
    from the palette.  The same seed always yields the same plan (and,
    through the plan's own seed, the same injection schedule).
    """
    rng = random.Random(f"chaos-plan:{seed}")
    sites = rng.sample(sorted(_PLAN_PALETTE), rng.randint(1, 3))
    rules = []
    for site in sites:
        action = rng.choice(_PLAN_PALETTE[site])
        kwargs: Dict[str, object] = {}
        if action in ("hang", "slow", "stall"):
            kwargs["delay"] = rng.choice([0.02, 0.05, 0.1])
        if site in ("server.response", "client.request"):
            # Request-path faults repeat per request; keep the rate low
            # and capped so retry budgets always clear them.
            kwargs["p"] = rng.choice([0.2, 0.4])
            kwargs["max_fires"] = rng.randint(1, 3)
        elif action in ("crash", "raise", "error", "torn", "corrupt", "timeout"):
            kwargs["p"] = rng.choice([0.25, 0.5, 1.0])
            kwargs["max_fires"] = rng.randint(1, 3)
        else:  # hang / slow: harmless, may fire every time
            kwargs["p"] = rng.choice([0.25, 0.5])
            kwargs["max_fires"] = rng.randint(2, 5)
        rules.append(faults.FaultRule(site=site, action=action, **kwargs))
    return faults.FaultPlan(seed=seed, rules=tuple(rules))


@dataclass
class ChaosTrial:
    """Outcome of one chaos trial."""

    seed: int
    kind: str  # "faults" | "kill9"
    plan: Optional[str]
    workloads: List[str]
    statuses: Dict[str, str] = field(default_factory=dict)
    verified_results: int = 0
    violations: List[str] = field(default_factory=list)
    duration_s: float = 0.0
    #: Job id -> trace id for the jobs of a violating trial, so the
    #: violated invariant can be chased through span timelines and
    #: structured logs of a rerun.
    trace_ids: Dict[str, str] = field(default_factory=dict)
    #: Condensed span timeline of the killed-and-restarted window
    #: (kill9 trials): the restarted server's ring, name/trace/ts/dur.
    span_timeline: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "kind": self.kind,
            "plan": self.plan,
            "workloads": list(self.workloads),
            "statuses": dict(self.statuses),
            "verified_results": self.verified_results,
            "violations": list(self.violations),
            "duration_s": round(self.duration_s, 3),
            "trace_ids": dict(self.trace_ids),
            "span_timeline": list(self.span_timeline),
        }


#: Spans kept in a kill9 trial's condensed timeline.
_TIMELINE_CAP = 200


def _condense_timeline(
    payload: Dict[str, object], cap: int = _TIMELINE_CAP
) -> List[Dict[str, object]]:
    """A ``/v1/trace`` payload reduced to report-sized span rows."""
    timeline: List[Dict[str, object]] = []
    for event in payload.get("traceEvents", [])[:cap]:
        span_args = event.get("args") or {}
        timeline.append(
            {
                "name": event.get("name"),
                "trace_id": span_args.get("trace_id"),
                "ts_s": round(event.get("ts", 0) / 1e6, 6),
                "dur_s": round(event.get("dur", 0) / 1e6, 6),
            }
        )
    return timeline


def _baseline(configs: List[SimulationConfig]) -> Dict[str, dict]:
    """Fault-free expected results, keyed like the service keys units."""
    payloads: Dict[str, dict] = {}
    for config in configs:
        key = ResultStore.key_for(config)
        if key not in payloads:
            payloads[key] = execute_run_fast(config).to_dict()
    return payloads


# ----------------------------------------------------------------------
# Fault trials: an in-process server over real HTTP, plan installed.


def _fault_trial(seed: int, n_instructions: int, timeout_s: float) -> ChaosTrial:
    from .service.client import ServiceClient, ServiceError, ServiceUnavailable
    from .service.journal import JobJournal
    from .service.server import ServiceServer

    rng = random.Random(f"chaos:{seed}")
    workloads = rng.sample(_WORKLOADS, rng.randint(1, 3))
    configs = [chaos_config(name, n_instructions) for name in workloads]
    plan = sample_plan(seed)
    trial = ChaosTrial(
        seed=seed, kind="faults", plan=plan.to_spec(), workloads=workloads
    )
    started = time.monotonic()
    baseline = _baseline(configs)

    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    journal_path = tmp / "jobs.wal"
    server = None
    try:
        engine = SimEngine(workers=2, fast=True, store=tmp / "store")
        server = ServiceServer(engine=engine, journal=journal_path)
        server.start()
        client = ServiceClient(
            server.url,
            timeout=15.0,
            retries=8,
            backoff=0.05,
            retry_budget_s=timeout_s,
        )
        faults.install(plan)
        receipts = []
        jobs = []
        try:
            # Two submissions of the same batch: the duplicate both
            # stresses coalescing under faults and arms the
            # double-execution check below.
            for _ in range(2):
                try:
                    receipts.append(client.submit_batch(configs))
                except (ServiceError, ServiceUnavailable) as error:
                    trial.violations.append(f"submit failed: {error}")
                    return trial
            for receipt in receipts:
                try:
                    jobs.append(
                        client.wait(
                            receipt["id"],
                            poll_s=0.05,
                            timeout=timeout_s,
                            raise_on_failure=False,
                        )
                    )
                except TimeoutError:
                    trial.violations.append(
                        f"job {receipt['id']} not terminal after {timeout_s}s"
                    )
                    jobs.append(None)
                except (ServiceError, ServiceUnavailable) as error:
                    trial.violations.append(
                        f"polling job {receipt['id']} failed: {error}"
                    )
                    jobs.append(None)
        finally:
            faults.clear()

        # Anything but "done" is legitimate only when the plan injected
        # scheduler faults (quarantine → poisoned, timeout → cancelled);
        # every other fault class must self-heal.
        scheduler_faulted = plan.rule_for("scheduler.unit") is not None
        for receipt, job in zip(receipts, jobs):
            if job is None:
                continue
            trial.statuses[job["id"]] = job["status"]
            if job["status"] == "done":
                try:
                    payloads = client.collect(receipt, job)
                except (ServiceError, ServiceUnavailable) as error:
                    trial.violations.append(
                        f"job {job['id']} done but results missing: {error}"
                    )
                    continue
                for key, payload in zip(receipt["units"], payloads):
                    if payload != baseline[key]:
                        trial.violations.append(
                            f"job {job['id']}: result {key} diverges from baseline"
                        )
                    else:
                        trial.verified_results += 1
            elif job["status"] in ("poisoned", "cancelled") and scheduler_faulted:
                # Surviving results must still be byte-identical.
                for key in receipt["units"]:
                    try:
                        payload = client.result(key)
                    except ServiceError as error:
                        if error.status == 404:
                            continue
                        trial.violations.append(
                            f"job {job['id']}: result {key} unreadable: {error}"
                        )
                        continue
                    except ServiceUnavailable as error:
                        trial.violations.append(
                            f"job {job['id']}: result {key} unreachable: {error}"
                        )
                        continue
                    if payload != baseline[key]:
                        trial.violations.append(
                            f"job {job['id']}: surviving result {key} diverges"
                        )
                    else:
                        trial.verified_results += 1
            else:
                trial.violations.append(
                    f"job {job['id']} finished {job['status']} "
                    f"({job.get('error')}) under plan {plan.to_spec()!r}"
                )

        # No unit double-executed: successful executions never exceed
        # the unique units (coalescing holds even with a duplicate job
        # and injected retries).
        try:
            executed = client.metrics()["counters"]["units_executed"]
        except (ServiceError, ServiceUnavailable, KeyError):
            executed = None
        if executed is not None and executed > len(baseline):
            trial.violations.append(
                f"double execution: {executed} unit executions "
                f"for {len(baseline)} unique units"
            )

        if trial.violations:
            # Cite the trial's trace ids so the violating jobs' spans
            # and structured log lines of a seeded rerun can be pulled
            # by id.
            for receipt in receipts:
                trace_id = client.trace_id_for(receipt["id"])
                if trace_id:
                    trial.trace_ids[receipt["id"]] = trace_id

        server.stop()
        server = None
        # After a clean drain with every job terminal, replay must be
        # empty — unless the plan tore the journal itself, in which case
        # a lost terminal event legitimately resurrects a finished job
        # (replay is at-least-once; re-admission is idempotent).
        journal_faulted = plan.rule_for("journal.append") is not None
        if not journal_faulted and all(
            job is not None for job in jobs
        ):
            journal = JobJournal(journal_path)
            leftover = journal.replay()
            journal.close()
            if leftover:
                trial.violations.append(
                    f"journal replays {len(leftover)} job(s) after a clean "
                    "drain with all jobs terminal"
                )
    finally:
        faults.clear()
        if server is not None:
            server.stop()
        shutil.rmtree(tmp, ignore_errors=True)
    trial.duration_s = time.monotonic() - started
    return trial


# ----------------------------------------------------------------------
# kill -9 trials: a real `repro serve` subprocess, killed mid-unit.


def _spawn_server(tmp: Path, ready_file: Path) -> subprocess.Popen:
    src_dir = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
    log_handle = open(tmp / "serve.log", "a")
    # Each server gets its own session so cleanup can killpg() the whole
    # tree: SIGKILLing only the server pid orphans its forked pool
    # workers, which otherwise idle forever (that is the scenario under
    # test — the trial must pass *before* the orphans are reaped).
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--fast",
            "--workers", "2",
            "--store", str(tmp / "store"),
            "--journal", str(tmp / "jobs.wal"),
            "--ready-file", str(ready_file),
        ],
        stdout=log_handle,
        stderr=log_handle,
        env=env,
        start_new_session=True,
    )


def _await_ready(proc: subprocess.Popen, ready_file: Path, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ready_file.exists():
            url = ready_file.read_text(encoding="utf-8").strip()
            if url:
                return url
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited before becoming ready (code {proc.returncode})"
            )
        time.sleep(0.05)
    raise RuntimeError(f"server not ready within {timeout}s")


def _kill9_trial(seed: int, n_instructions: int, timeout_s: float) -> ChaosTrial:
    from .service.client import ServiceClient, ServiceError, ServiceUnavailable
    from .service.journal import JobJournal

    rng = random.Random(f"chaos-kill:{seed}")
    # Plain benchmarks only (subprocess startup already dominates), with
    # a bigger budget so the kill has an execution window to land in.
    workloads = rng.sample(_WORKLOADS[:6], 2)
    configs = [chaos_config(name, n_instructions * 4) for name in workloads]
    trial = ChaosTrial(seed=seed, kind="kill9", plan=None, workloads=workloads)
    started = time.monotonic()
    baseline = _baseline(configs)

    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    proc: Optional[subprocess.Popen] = None
    pgids: list = []
    job_id: Optional[str] = None
    submit_trace: Optional[str] = None
    try:
        proc = _spawn_server(tmp, tmp / "ready-1")
        pgids.append(proc.pid)
        url = _await_ready(proc, tmp / "ready-1")
        client = ServiceClient(url, timeout=10.0, retries=6, backoff=0.1)
        receipt = client.submit_batch(configs)
        job_id = receipt["id"]
        submit_trace = client.trace_id_for(job_id)

        # Give execution a moment to start, then kill -9 mid-unit.
        poll_deadline = time.monotonic() + 10.0
        while time.monotonic() < poll_deadline:
            job = client.job(job_id)
            if job["status"] != "queued" or job["pending_units"] < len(
                set(receipt["units"])
            ):
                break
            time.sleep(0.02)
        time.sleep(rng.uniform(0.05, 0.3))
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10.0)

        # Restart over the same store + journal: the job must resume
        # under its original id (or, if it finished before the kill,
        # its results must be served from the store).
        proc = _spawn_server(tmp, tmp / "ready-2")
        pgids.append(proc.pid)
        url = _await_ready(proc, tmp / "ready-2")
        client = ServiceClient(url, timeout=10.0, retries=6, backoff=0.1)
        resumed = True
        try:
            client.job(job_id)
        except ServiceError as error:
            if error.status != 404:
                raise
            # Finished pre-kill: terminal jobs are not replayed. The
            # store must still serve every result (checked below).
            resumed = False
        if resumed:
            try:
                job = client.wait(
                    job_id, poll_s=0.05, timeout=timeout_s, raise_on_failure=False
                )
                trial.statuses[job_id] = job["status"]
                if job["status"] != "done":
                    trial.violations.append(
                        f"resumed job {job_id} finished {job['status']} "
                        f"({job.get('error')})"
                    )
            except TimeoutError:
                trial.violations.append(
                    f"resumed job {job_id} not terminal after {timeout_s}s"
                )
        else:
            trial.statuses[job_id] = "pruned (finished before kill)"

        # Recovered results byte-identical to the fault-free baseline.
        for key, expected in baseline.items():
            try:
                payload = client.result(key)
            except (ServiceError, ServiceUnavailable) as error:
                trial.violations.append(f"result {key} lost across kill -9: {error}")
                continue
            if payload != expected:
                trial.violations.append(
                    f"result {key} diverges from baseline across kill -9"
                )
            else:
                trial.verified_results += 1

        # The killed-and-restarted window's span timeline: what the
        # restarted server did between journal replay and drain
        # (re-admission, queue wait, unit execution, chunks).
        try:
            trial.span_timeline = _condense_timeline(client.trace())
        except (ServiceError, ServiceUnavailable):
            pass

        # Graceful drain, then the journal must replay exactly nothing.
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30.0)
        proc = None
        journal = JobJournal(tmp / "jobs.wal")
        leftover = journal.replay()
        journal.close()
        if leftover and not trial.violations:
            trial.violations.append(
                f"journal replays {len(leftover)} job(s) after the restarted "
                "server drained cleanly"
            )
    except (RuntimeError, ServiceError, ServiceUnavailable, subprocess.TimeoutExpired) as error:
        trial.violations.append(f"kill9 harness failure: {error}")
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        # Reap the pool workers orphaned by the SIGKILL (and any
        # stragglers of the restarted server): every spawn led its own
        # process group, so one killpg per server covers the whole tree.
        for pgid in pgids:
            try:
                os.killpg(pgid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        shutil.rmtree(tmp, ignore_errors=True)
    if trial.violations and job_id and submit_trace:
        trial.trace_ids[job_id] = submit_trace
    trial.duration_s = time.monotonic() - started
    return trial


# ----------------------------------------------------------------------
# Campaign


def run_campaign(
    budget: int,
    seed_base: int = 0,
    n_instructions: int = DEFAULT_CHAOS_INSTRUCTIONS,
    kill9_every: int = 5,
    timeout_s: float = 120.0,
    progress: Optional[Callable[[ChaosTrial], None]] = None,
) -> Dict[str, object]:
    """Run ``budget`` seeded chaos trials; returns a JSON-ready report.

    Seeds are ``seed_base .. seed_base + budget - 1``.  Every
    ``kill9_every``-th trial (0 disables) runs the kill -9 matrix
    against a ``repro serve`` subprocess; the rest sample a fault plan
    against an in-process server.  A fixed ``seed_base`` makes the
    campaign a regression gate; a rotating one makes it an explorer.
    """
    if budget < 1:
        raise ValueError("chaos budget must be positive")
    trials: List[ChaosTrial] = []
    for index in range(budget):
        seed = seed_base + index
        if kill9_every and (index + 1) % kill9_every == 0:
            trial = _kill9_trial(seed, n_instructions, timeout_s)
        else:
            trial = _fault_trial(seed, n_instructions, timeout_s)
        trials.append(trial)
        if progress is not None:
            progress(trial)
    violations = sum(len(trial.violations) for trial in trials)
    return {
        "budget": budget,
        "seed_base": seed_base,
        "n_instructions": n_instructions,
        "kill9_every": kill9_every,
        "violations": violations,
        "verified_results": sum(trial.verified_results for trial in trials),
        "trials": [trial.to_dict() for trial in trials],
    }
