"""repro: a reproduction of "Near-Optimal Precharging in High-Performance
Nanoscale CMOS Caches" (Yang & Falsafi, MICRO-36, 2003).

The package is organised bottom-up:

* :mod:`repro.circuits` — technology scaling, SRAM/bitline/decoder circuit
  models (the CACTI + SPICE substitute);
* :mod:`repro.cache` — behavioural caches with subarray-granularity
  precharge control and energy accounting;
* :mod:`repro.core` — the precharge-control policies: static pull-up,
  oracle, on-demand, **gated precharging** (the paper's contribution,
  with predecoding) and the resizable-cache baseline;
* :mod:`repro.cpu` — the 8-wide out-of-order processor model with
  load-hit speculation and selective replay;
* :mod:`repro.workloads` — synthetic SPEC2000/Olden-like workloads;
* :mod:`repro.energy` — Wattch-style processor energy accounting;
* :mod:`repro.sim` — the run configuration/driver layer;
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quick start::

    from repro.sim import SimulationConfig, run_simulation

    config = SimulationConfig(benchmark="gcc",
                              dcache_policy="gated-predecode",
                              icache_policy="gated",
                              feature_size_nm=70)
    result = run_simulation(config)
    print(result.summary())
"""

from .sim import SimulationConfig, run_simulation

__version__ = "1.0.0"

__all__ = ["SimulationConfig", "run_simulation", "__version__"]
