"""repro: a reproduction of "Near-Optimal Precharging in High-Performance
Nanoscale CMOS Caches" (Yang & Falsafi, MICRO-36, 2003).

The package is organised bottom-up:

* :mod:`repro.circuits` — technology scaling, SRAM/bitline/decoder circuit
  models (the CACTI + SPICE substitute);
* :mod:`repro.cache` — behavioural caches with subarray-granularity
  precharge control and energy accounting, on every level of the
  hierarchy (L1I, L1D and the unified L2);
* :mod:`repro.core` — the precharge-control policies (static pull-up,
  oracle, on-demand, **gated precharging** — the paper's contribution,
  with predecoding — and the resizable-cache baseline) plus the
  pluggable policy registry;
* :mod:`repro.cpu` — the 8-wide out-of-order processor model with
  load-hit speculation and selective replay;
* :mod:`repro.workloads` — synthetic SPEC2000/Olden-like workloads;
* :mod:`repro.energy` — Wattch-style processor energy accounting;
* :mod:`repro.sim` — the driver layer: :class:`~repro.sim.SimEngine`
  (bounded caching, on-disk persistence, parallel sweeps),
  :class:`~repro.sim.SimulationConfig` and serialisable
  :class:`~repro.sim.RunResult` objects;
* :mod:`repro.experiments` — one module per table/figure of the paper,
  registered behind a common ``run(engine, options)`` protocol;
* :mod:`repro.cli` — the ``python -m repro`` command line.

Quick start::

    from repro.sim import PolicySpec, SimEngine, SimulationConfig

    engine = SimEngine()
    config = SimulationConfig(
        benchmark="gcc",
        dcache=PolicySpec("gated-predecode", {"threshold": 100}),
        icache=PolicySpec("gated", {"threshold": 100}),
        l2=PolicySpec("gated", {"threshold": 500}),
        feature_size_nm=70,
    )
    result = engine.run(config)
    print(result.summary())

    # Fan a sweep out over worker processes, persisting results on disk:
    engine = SimEngine(workers=4, store="results/")
    runs = engine.sweep(config)          # all sixteen benchmarks

New precharge policies plug in through the registry — no driver changes::

    from repro.core import register_policy

    @register_policy("drowsy")
    def make_drowsy(wake_cycles: int = 2):
        return DrowsyPolicy(wake_cycles=wake_cycles)

    engine.run(config.with_policies("drowsy", "drowsy"))

Or from a shell::

    python -m repro run --benchmark gcc --dcache gated-predecode:threshold=150
    python -m repro experiment figure8 --json
"""

from .sim import (
    PolicySpec,
    RunResult,
    SimEngine,
    SimulationConfig,
    default_engine,
    run_simulation,
)

__version__ = "2.0.0"

__all__ = [
    "PolicySpec",
    "RunResult",
    "SimEngine",
    "SimulationConfig",
    "default_engine",
    "run_simulation",
    "__version__",
]
