"""Simulation driver: configuration, engine, metrics, sweeps and storage.

The driver layer is organised around four pieces:

* :class:`~repro.sim.config.SimulationConfig` — one run's description,
  carrying declarative :class:`~repro.core.registry.PolicySpec` objects;
* :class:`~repro.sim.engine.SimEngine` — bounded result caching, an
  optional on-disk :class:`~repro.sim.store.ResultStore`, and parallel
  ``run_many``/``sweep`` fan-out;
* :class:`~repro.sim.metrics.RunResult` — fully JSON-serialisable run
  outcome;
* :mod:`~repro.sim.sweep` — benchmark sweeps and the Section 6.4
  profiling-based threshold selection.

:func:`run_simulation` remains as a shim over the process-wide default
engine for quick interactive use.
"""

from repro.core.registry import PolicySpec

from .config import DEFAULT_INSTRUCTIONS, POLICY_NAMES, SimulationConfig, make_policy
from .engine import RunCancelled, SimEngine, default_engine, execute_run, execute_run_fast
from .fastpath import CompiledTrace, clear_trace_cache, compile_workload
from .metrics import RunResult, arithmetic_mean, geometric_mean, slowdown
from .runner import clear_run_cache, run_simulation
from .store import ResultStore
from .sweep import (
    BenchmarkThresholds,
    DCACHE_REPLAY_FACTOR,
    select_benchmark_thresholds,
    sweep_benchmarks,
)

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "POLICY_NAMES",
    "PolicySpec",
    "SimulationConfig",
    "make_policy",
    "RunCancelled",
    "SimEngine",
    "default_engine",
    "execute_run",
    "execute_run_fast",
    "CompiledTrace",
    "compile_workload",
    "clear_trace_cache",
    "RunResult",
    "arithmetic_mean",
    "geometric_mean",
    "slowdown",
    "clear_run_cache",
    "run_simulation",
    "ResultStore",
    "BenchmarkThresholds",
    "DCACHE_REPLAY_FACTOR",
    "select_benchmark_thresholds",
    "sweep_benchmarks",
]
