"""Simulation driver: configuration, runner, metrics and sweeps."""

from .config import DEFAULT_INSTRUCTIONS, POLICY_NAMES, SimulationConfig, make_policy
from .metrics import RunResult, arithmetic_mean, geometric_mean, slowdown
from .runner import clear_run_cache, run_simulation
from .sweep import (
    BenchmarkThresholds,
    DCACHE_REPLAY_FACTOR,
    select_benchmark_thresholds,
    sweep_benchmarks,
)

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "POLICY_NAMES",
    "SimulationConfig",
    "make_policy",
    "RunResult",
    "arithmetic_mean",
    "geometric_mean",
    "slowdown",
    "clear_run_cache",
    "run_simulation",
    "BenchmarkThresholds",
    "DCACHE_REPLAY_FACTOR",
    "select_benchmark_thresholds",
    "sweep_benchmarks",
]
