"""Parameter sweeps and profiling-based threshold selection.

Helpers shared by the experiment modules:

* run a set of benchmarks under a policy pair and aggregate results
  (these are thin wrappers over :meth:`repro.sim.engine.SimEngine.sweep`,
  which handles caching, persistence and parallel fan-out);
* find the per-benchmark optimum gated-precharging threshold (Section 6.4)
  by profiling a baseline run's subarray gap distribution and picking the
  most aggressive threshold whose estimated slowdown stays within the 1%
  budget, then optionally validating with a full timing run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Sequence

from repro.core.registry import PolicySpec
from repro.core.threshold import (
    CANDIDATE_THRESHOLDS,
    PERFORMANCE_BUDGET,
    ThresholdProfile,
    select_threshold,
)

from .config import SimulationConfig
from .engine import SimEngine, default_engine
from .metrics import RunResult

__all__ = [
    "sweep_benchmarks",
    "select_benchmark_thresholds",
    "BenchmarkThresholds",
    "DCACHE_REPLAY_FACTOR",
]

#: Effective cost multiplier per delayed data-cache access used by the
#: profiling-based threshold selection.  A delayed load costs the pull-up
#: cycle plus possibly a replay of its dependents, but the out-of-order
#: window hides much of a single-cycle delay, so the two effects roughly
#: cancel in this substrate (measured gated slowdowns stay well under the
#: profile estimate with a factor of 1).
DCACHE_REPLAY_FACTOR = 1.0

#: Instruction caches only slow the fetch-queue fill, so a delayed fetch
#: costs roughly the pull-up cycle.
ICACHE_REPLAY_FACTOR = 1.0


@dataclass(frozen=True)
class BenchmarkThresholds:
    """Per-benchmark optimum thresholds for the two L1 caches."""

    benchmark: str
    dcache_threshold: int
    icache_threshold: int


def sweep_benchmarks(
    base_config: SimulationConfig,
    benchmarks: Optional[Sequence[str]] = None,
    engine: Optional[SimEngine] = None,
    workers: Optional[int] = None,
    fast: Optional[bool] = None,
) -> Dict[str, RunResult]:
    """Run ``base_config`` for every benchmark in ``benchmarks``.

    Args:
        base_config: Template configuration; only the benchmark name is
            substituted.
        benchmarks: Benchmark names; defaults to all sixteen.
        engine: Engine to run on; defaults to the process-wide engine.
        workers: Worker processes; defaults to the engine's setting.
        fast: Execution-path override (batched fast kernel vs reference
            loop); defaults to the engine's setting.

    Returns:
        Mapping from benchmark name to its :class:`RunResult`.
    """
    engine = default_engine() if engine is None else engine
    return engine.sweep(base_config, benchmarks=benchmarks, workers=workers, fast=fast)


def select_benchmark_thresholds(
    benchmark: str,
    base_config: SimulationConfig,
    budget: float = PERFORMANCE_BUDGET,
    candidates: Iterable[int] = CANDIDATE_THRESHOLDS,
    predecode_coverage: float = 0.7,
    engine: Optional[SimEngine] = None,
) -> BenchmarkThresholds:
    """Find the per-benchmark optimum thresholds from a profiling run.

    Mirrors the paper's statically-found per-benchmark optimum: the most
    aggressive threshold whose estimated performance degradation stays
    within ``budget``, estimated from the baseline run's subarray
    inter-access gap distribution.

    Args:
        benchmark: Benchmark to profile.
        base_config: Template configuration (its policies are ignored; the
            profile always comes from a static pull-up run).
        budget: Allowed slowdown (the paper uses 1%).
        candidates: Candidate thresholds.
        predecode_coverage: Fraction of delayed data-cache accesses hidden
            by predecoding (Section 6.3 measures ~80% accuracy on 1KB
            subarrays; a portion of that is in time to help).
        engine: Engine to run on; defaults to the process-wide engine.
    """
    engine = default_engine() if engine is None else engine
    profile_config = replace(
        base_config,
        benchmark=benchmark,
        dcache=PolicySpec("static"),
        icache=PolicySpec("static"),
    )
    baseline = engine.run(profile_config)

    dcache_profile = ThresholdProfile(
        gaps=baseline.dcache_gaps,
        total_cycles=baseline.cycles,
        penalty_cycles=1,
        replay_factor=DCACHE_REPLAY_FACTOR,
        predecode_coverage=predecode_coverage,
    )
    icache_profile = ThresholdProfile(
        gaps=baseline.icache_gaps,
        total_cycles=baseline.cycles,
        penalty_cycles=1,
        replay_factor=ICACHE_REPLAY_FACTOR,
        predecode_coverage=0.0,
    )
    return BenchmarkThresholds(
        benchmark=benchmark,
        dcache_threshold=select_threshold(dcache_profile, budget, candidates),
        icache_threshold=select_threshold(icache_profile, budget, candidates),
    )
