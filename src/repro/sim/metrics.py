"""Run results and derived metrics.

:class:`RunResult` is fully serialisable: :meth:`RunResult.to_dict` /
:meth:`RunResult.from_dict` round-trip exactly through JSON, which backs
the on-disk :class:`~repro.sim.store.ResultStore`, the ``--json`` output
of the ``repro`` CLI, and cross-process transport in parallel sweeps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.cache.energy_accounting import EnergyBreakdown
from repro.cpu.stats import PipelineStats
from repro.energy.cache_energy import CacheEnergyReport

__all__ = ["RunResult", "slowdown", "geometric_mean", "arithmetic_mean"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated run.

    Attributes:
        benchmark: Benchmark name.
        dcache_policy: Data-cache precharge policy name.
        icache_policy: Instruction-cache precharge policy name.
        feature_size_nm: Technology node.
        subarray_bytes: Precharge-control granularity.
        cycles: Execution time in cycles.
        pipeline: Full pipeline statistics.
        energy: Cache (and processor) energy report.
        dcache_miss_ratio: L1D misses per access.
        icache_miss_ratio: L1I misses per access.
        dcache_gaps: Subarray inter-access gaps observed in the L1D (for
            locality analyses and threshold selection).
        icache_gaps: Subarray inter-access gaps observed in the L1I.
        dcache_accesses: Number of L1D accesses.
        icache_accesses: Number of L1I accesses.
        dcache_delayed_accesses: L1D accesses that paid a precharge penalty.
        icache_delayed_accesses: L1I accesses that paid a precharge penalty.
        l2_policy: Unified-L2 precharge policy name (``"static"`` — the
            conventional cache — on results recorded before the L2
            became policy-controlled).
        l2_miss_ratio: L2 misses per access.
        l2_accesses: Number of L2 accesses (L1 fills plus writebacks).
        l2_writebacks: Dirty L2 lines evicted (written back to memory).
        l2_delayed_accesses: L2 accesses that paid a precharge penalty.
        l2_gaps: Subarray inter-access gaps observed in the L2.
    """

    benchmark: str
    dcache_policy: str
    icache_policy: str
    feature_size_nm: int
    subarray_bytes: int
    cycles: int
    pipeline: PipelineStats
    energy: CacheEnergyReport
    dcache_miss_ratio: float
    icache_miss_ratio: float
    dcache_gaps: List[int]
    icache_gaps: List[int]
    dcache_accesses: int
    icache_accesses: int
    dcache_delayed_accesses: int
    icache_delayed_accesses: int
    l2_policy: str = "static"
    l2_miss_ratio: float = 0.0
    l2_accesses: int = 0
    l2_writebacks: int = 0
    l2_delayed_accesses: int = 0
    l2_gaps: List[int] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.pipeline.ipc

    @property
    def dcache_breakdown(self) -> EnergyBreakdown:
        """L1D energy breakdown."""
        return self.energy.dcache

    @property
    def icache_breakdown(self) -> EnergyBreakdown:
        """L1I energy breakdown."""
        return self.energy.icache

    @property
    def l2_breakdown(self) -> Optional[EnergyBreakdown]:
        """L2 energy breakdown (``None`` on pre-L2 results)."""
        return self.energy.l2

    def summary(self) -> str:
        """One-line human-readable summary.

        The L2 column only appears when the run used a non-static L2
        policy, keeping the paper-configuration output unchanged.
        """
        text = (
            f"{self.benchmark:9s} D={self.dcache_policy:15s} I={self.icache_policy:15s} "
            f"cycles={self.cycles:8d} IPC={self.ipc:4.2f} "
            f"relD(D)={self.energy.dcache_relative_discharge:5.3f} "
            f"relD(I)={self.energy.icache_relative_discharge:5.3f}"
        )
        if self.l2_policy != "static":
            text += (
                f" L2={self.l2_policy:15s} "
                f"relD(L2)={self.energy.l2_relative_discharge:5.3f}"
            )
        return text

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return {
            "benchmark": self.benchmark,
            "dcache_policy": self.dcache_policy,
            "icache_policy": self.icache_policy,
            "feature_size_nm": self.feature_size_nm,
            "subarray_bytes": self.subarray_bytes,
            "cycles": self.cycles,
            "pipeline": self.pipeline.to_dict(),
            "energy": self.energy.to_dict(),
            "dcache_miss_ratio": self.dcache_miss_ratio,
            "icache_miss_ratio": self.icache_miss_ratio,
            "dcache_gaps": list(self.dcache_gaps),
            "icache_gaps": list(self.icache_gaps),
            "dcache_accesses": self.dcache_accesses,
            "icache_accesses": self.icache_accesses,
            "dcache_delayed_accesses": self.dcache_delayed_accesses,
            "icache_delayed_accesses": self.icache_delayed_accesses,
            "l2_policy": self.l2_policy,
            "l2_miss_ratio": self.l2_miss_ratio,
            "l2_accesses": self.l2_accesses,
            "l2_writebacks": self.l2_writebacks,
            "l2_delayed_accesses": self.l2_delayed_accesses,
            "l2_gaps": list(self.l2_gaps),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output.

        Payloads written before the L2 gained per-level reporting (no
        ``l2_*`` keys) load with the dataclass defaults, so old result
        stores and archived ``--json`` output stay readable.
        """
        fields = dict(data)
        fields["pipeline"] = PipelineStats.from_dict(fields["pipeline"])
        fields["energy"] = CacheEnergyReport.from_dict(fields["energy"])
        fields["dcache_gaps"] = list(fields["dcache_gaps"])
        fields["icache_gaps"] = list(fields["icache_gaps"])
        if "l2_gaps" in fields:
            fields["l2_gaps"] = list(fields["l2_gaps"])
        return cls(**fields)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def slowdown(result: RunResult, baseline: RunResult) -> float:
    """Execution-time increase of ``result`` relative to ``baseline``.

    Raises:
        ValueError: when the runs are not comparable (different benchmark
            or instruction counts).
    """
    if result.benchmark != baseline.benchmark:
        raise ValueError("slowdown requires runs of the same benchmark")
    if baseline.cycles <= 0:
        raise ValueError("baseline run has no cycles")
    return result.cycles / baseline.cycles - 1.0


def arithmetic_mean(values) -> float:
    """Plain average (the paper's figures report arithmetic means)."""
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def geometric_mean(values) -> float:
    """Geometric mean (used for speedup-style aggregates)."""
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
