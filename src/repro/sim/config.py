"""Simulation configuration (Tables 1 and 2).

:class:`SimulationConfig` collects everything one run needs: the
technology node (Table 1), the processor and memory-hierarchy sizing
(Table 2), the benchmark, the precharge policies of the two L1 caches
and the unified L2, and the run length.  The precharge policies are
carried as declarative :class:`~repro.core.registry.PolicySpec` objects
resolved through the policy registry, so adding a policy never touches
this module.

Legacy string-based construction
(``SimulationConfig(dcache_policy="gated", dcache_threshold=150)``) and
the matching read-only attributes are kept as deprecation shims; new code
should pass specs::

    SimulationConfig(dcache=PolicySpec("gated", {"threshold": 150}))
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.cache.hierarchy import HierarchyConfig
from repro.core.gated import DEFAULT_THRESHOLD
from repro.core.policies import BasePrechargePolicy
from repro.core.registry import PolicySpec, get_policy_info, policy_names
from repro.cpu.pipeline import PipelineConfig
from repro.workloads.scenarios import workload_identity

__all__ = [
    "SimulationConfig",
    "make_policy",
    "POLICY_NAMES",
    "DEFAULT_INSTRUCTIONS",
]

#: Policy names registered by the core package at import time.  Kept for
#: backwards compatibility; prefer :func:`repro.core.registry.policy_names`,
#: which also reflects policies registered afterwards.
POLICY_NAMES = policy_names()

#: Default simulated instruction count for experiments.  The paper uses
#: SimPoint regions of hundreds of millions of instructions; the synthetic
#: workloads here reach steady-state behaviour within tens of thousands.
DEFAULT_INSTRUCTIONS = 30_000


def make_policy(
    name: str,
    threshold: int = DEFAULT_THRESHOLD,
    resizable_interval: int = 50_000,
) -> BasePrechargePolicy:
    """Build a precharge policy from its short name (deprecation shim).

    Prefer ``PolicySpec(name, params).build()``, which passes arbitrary
    parameters through to the registered factory.

    Args:
        name: A registered policy name or alias.
        threshold: Decay threshold, applied when the policy accepts one.
        resizable_interval: Accesses per resizing interval, applied when
            the policy accepts one.

    Raises:
        ValueError: for an unknown policy name.
    """
    return _legacy_spec(name, threshold, resizable_interval).build()


def _legacy_spec(
    name: str,
    threshold: Optional[int] = None,
    resizable_interval: Optional[int] = None,
    warn_dropped: bool = False,
) -> PolicySpec:
    """Translate legacy ``(name, threshold)`` arguments into a spec.

    Only parameters the registered factory actually accepts are attached,
    which mirrors the old factory's behaviour of ignoring the threshold
    for threshold-less policies.  Unlike the old config, the spec carries
    no independent threshold field, so an explicit threshold given with a
    threshold-less policy no longer survives a later policy switch;
    ``warn_dropped`` surfaces that case.
    """
    info = get_policy_info(name)
    params: Dict[str, Any] = {}
    if threshold is not None:
        if "threshold" in info.defaults:
            params["threshold"] = threshold
        elif warn_dropped:
            warnings.warn(
                f"policy {info.name!r} takes no threshold; the explicit "
                f"threshold {threshold} is discarded (pass a PolicySpec to "
                "the policy that should receive it instead)",
                FutureWarning,
                stacklevel=3,
            )
    if resizable_interval is not None and "interval_accesses" in info.defaults:
        params["interval_accesses"] = resizable_interval
    return PolicySpec(info.name, params)


def _coerce_spec(value: Union[PolicySpec, str, Mapping[str, Any]]) -> PolicySpec:
    """Accept a spec, a bare policy name, or a ``to_dict`` mapping."""
    if isinstance(value, PolicySpec):
        return value
    if isinstance(value, str):
        return PolicySpec(value)
    if isinstance(value, Mapping):
        return PolicySpec.from_dict(value)
    raise TypeError(f"cannot interpret {value!r} as a PolicySpec")


def _default_static_spec() -> PolicySpec:
    return PolicySpec("static")


def _is_default_static(spec: PolicySpec) -> bool:
    """Whether ``spec`` canonicalises to the plain static-pull-up default.

    Used to keep memoisation and result-store keys byte-identical to the
    keys written before the L2 carried a policy: an L2 spec equivalent to
    the old implicit static pull-up contributes nothing to a key.
    """
    try:
        return spec.cache_key() == PolicySpec("static").cache_key()
    except ValueError:
        return False


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulated run needs.

    Attributes:
        benchmark: Benchmark, scenario (``mix:``/``phases:``) or
            ``trace:`` workload name.
        dcache: Precharge policy spec for the L1 data cache.
        icache: Precharge policy spec for the L1 instruction cache.
        feature_size_nm: Technology node (Table 1).
        subarray_bytes: L1 precharge-control granularity (1KB base).
        n_instructions: Micro-ops to simulate.
        seed: Workload seed.
        pipeline: Microarchitecture parameters (Table 2 defaults).
        l2: Precharge policy spec for the unified L2 cache (defaults to
            the conventional static pull-up the paper assumes).
        l2_subarray_bytes: L2 precharge-control granularity; ``None``
            scales the L1 granularity (at least 4KB) — see
            :meth:`~repro.cache.hierarchy.HierarchyConfig.l2_organization`.
    """

    benchmark: str = "gcc"
    dcache: PolicySpec = field(default_factory=_default_static_spec)
    icache: PolicySpec = field(default_factory=_default_static_spec)
    feature_size_nm: int = 70
    subarray_bytes: int = 1024
    n_instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = 1
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    l2: PolicySpec = field(default_factory=_default_static_spec)
    l2_subarray_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dcache", _coerce_spec(self.dcache))
        object.__setattr__(self, "icache", _coerce_spec(self.icache))
        object.__setattr__(self, "l2", _coerce_spec(self.l2))

    # ------------------------------------------------------------------
    # Deprecated string accessors (kept for the pre-registry API)
    # ------------------------------------------------------------------
    @property
    def dcache_policy(self) -> str:
        """Deprecated: the data-cache policy name (use ``dcache.name``)."""
        return self.dcache.name

    @property
    def icache_policy(self) -> str:
        """Deprecated: the instruction-cache policy name (use ``icache.name``)."""
        return self.icache.name

    @property
    def dcache_threshold(self) -> int:
        """Deprecated: the data-cache decay threshold (use ``dcache.get``)."""
        return self.dcache.get("threshold", DEFAULT_THRESHOLD)

    @property
    def icache_threshold(self) -> int:
        """Deprecated: the instruction-cache decay threshold (use ``icache.get``)."""
        return self.icache.get("threshold", DEFAULT_THRESHOLD)

    @property
    def l2_policy(self) -> str:
        """The L2 policy name (symmetric with the deprecated L1 accessors)."""
        return self.l2.name

    # ------------------------------------------------------------------
    def hierarchy_config(self) -> HierarchyConfig:
        """The memory-hierarchy sizing for this run."""
        return HierarchyConfig(
            feature_size_nm=self.feature_size_nm,
            subarray_bytes=self.subarray_bytes,
            l2_subarray_bytes=self.l2_subarray_bytes,
        )

    def dcache_controller(self) -> BasePrechargePolicy:
        """Instantiate the data-cache precharge policy."""
        return self.dcache.build()

    def icache_controller(self) -> BasePrechargePolicy:
        """Instantiate the instruction-cache precharge policy."""
        return self.icache.build()

    def l2_controller(self) -> BasePrechargePolicy:
        """Instantiate the unified L2 cache's precharge policy."""
        return self.l2.build()

    def pipeline_config(self) -> PipelineConfig:
        """Pipeline configuration, with policy-declared latency folded in.

        A policy that delays *every* data-cache access by a known number
        of cycles (on-demand precharging declares
        ``scheduler_extra_latency=1`` in the registry) has that latency
        folded into the scheduler's expectations, so the deterministic
        delay does not masquerade as misspeculation.
        """
        extra = self.dcache.info().scheduler_extra_latency
        if extra and self.pipeline.speculative_extra_latency == 0:
            return replace(self.pipeline, speculative_extra_latency=extra)
        return self.pipeline

    def with_policies(
        self,
        dcache: Union[PolicySpec, str],
        icache: Union[PolicySpec, str],
        l2: Union[PolicySpec, str, None] = None,
    ) -> "SimulationConfig":
        """A copy of this configuration with different precharge policies.

        Bare names keep the current thresholds when the new policy accepts
        one (matching the old string-field behaviour); specs are taken
        verbatim.  ``l2`` is optional: ``None`` keeps the current L2 spec.
        """
        if isinstance(dcache, str):
            dcache = _legacy_spec(dcache, self.dcache.get("threshold"))
        if isinstance(icache, str):
            icache = _legacy_spec(icache, self.icache.get("threshold"))
        if l2 is None:
            l2 = self.l2
        elif isinstance(l2, str):
            l2 = _legacy_spec(l2, self.l2.get("threshold"))
        return replace(self, dcache=dcache, icache=icache, l2=l2)

    # ------------------------------------------------------------------
    def _l2_is_default(self) -> bool:
        """Whether the L2 settings match the pre-policy-capable default."""
        return self.l2_subarray_bytes is None and _is_default_static(self.l2)

    def cache_key(self) -> Tuple:
        """Hashable memoisation key identifying this run exactly.

        Derived from the canonical policy specs, so two configs that
        build identical policies (e.g. with and without an explicit
        default threshold) share a key, and newly registered policies
        participate with no driver changes.  ``trace:`` benchmarks fold
        the trace file's identity (path, mtime, size) in, so a
        re-recorded file is never served a stale memoised result;
        scenario and ``fuzz:`` benchmarks fold their canonical
        expression in, so equivalent spellings share one memo entry.

        A default L2 (static pull-up, derived subarray size) contributes
        nothing, keeping keys identical to the ones produced before the
        L2 carried a policy; a non-default L2 appends its canonical spec
        and granularity.
        """
        identity = workload_identity(self.benchmark)
        if identity is not None and identity[0] == "scenario":
            # Key on the canonical expression instead of the literal
            # spelling, so `MIX: GCC + McF` and `mix:gcc+mcf@2000`
            # share one memo entry.
            benchmark = identity[1]
        else:
            benchmark = self.benchmark
        key = (
            benchmark,
            self.dcache.cache_key(),
            self.icache.cache_key(),
            self.feature_size_nm,
            self.subarray_bytes,
            self.n_instructions,
            self.seed,
            self.pipeline,
            identity,
        )
        if not self._l2_is_default():
            key += (self.l2.cache_key(), self.l2_subarray_bytes)
        return key

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (round-trips via :meth:`from_dict`).

        The ``l2`` / ``l2_subarray_bytes`` keys are only emitted when
        they differ from the default (static pull-up, derived subarray
        size): the round-trip stays exact, while serialised forms — and
        the result-store digests derived from them — stay byte-identical
        to the ones written before the L2 carried a policy.
        """
        data = {
            "benchmark": self.benchmark,
            "dcache": self.dcache.to_dict(),
            "icache": self.icache.to_dict(),
            "feature_size_nm": self.feature_size_nm,
            "subarray_bytes": self.subarray_bytes,
            "n_instructions": self.n_instructions,
            "seed": self.seed,
            "pipeline": self.pipeline.to_dict(),
        }
        if not self._l2_is_default():
            data["l2"] = self.l2.to_dict()
            data["l2_subarray_bytes"] = self.l2_subarray_bytes
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Payloads written before the L2 carried a policy (no ``"l2"``
        key) load with the default static L2.
        """
        l2 = data.get("l2")
        return cls(
            benchmark=data["benchmark"],
            dcache=PolicySpec.from_dict(data["dcache"]),
            icache=PolicySpec.from_dict(data["icache"]),
            feature_size_nm=data["feature_size_nm"],
            subarray_bytes=data["subarray_bytes"],
            n_instructions=data["n_instructions"],
            seed=data["seed"],
            pipeline=PipelineConfig.from_dict(data["pipeline"]),
            l2=_default_static_spec() if l2 is None else PolicySpec.from_dict(l2),
            l2_subarray_bytes=data.get("l2_subarray_bytes"),
        )


# ----------------------------------------------------------------------
# Deprecated keyword shim: SimulationConfig(dcache_policy="gated",
# dcache_threshold=150, ...) keeps working by translating the legacy
# string/threshold keywords into PolicySpec fields before the generated
# dataclass __init__ runs.
# ----------------------------------------------------------------------
_GENERATED_INIT = SimulationConfig.__init__


def _compat_init(
    self,
    *args,
    dcache_policy: Optional[str] = None,
    icache_policy: Optional[str] = None,
    dcache_threshold: Optional[int] = None,
    icache_threshold: Optional[int] = None,
    l2_policy: Optional[str] = None,
    l2_threshold: Optional[int] = None,
    **kwargs,
) -> None:
    if len(args) > 1:
        # The field order changed when the loose threshold fields became
        # specs; silently reinterpreting old positional calls would run
        # the wrong simulation, so require keywords beyond the benchmark.
        raise TypeError(
            "SimulationConfig takes at most one positional argument "
            "(benchmark); pass the remaining fields by keyword"
        )
    if dcache_policy is not None or dcache_threshold is not None:
        if "dcache" in kwargs:
            raise TypeError(
                "pass either dcache=PolicySpec(...) or the deprecated "
                "dcache_policy/dcache_threshold keywords, not both"
            )
        kwargs["dcache"] = _legacy_spec(
            dcache_policy or "static", dcache_threshold, warn_dropped=True
        )
    if icache_policy is not None or icache_threshold is not None:
        if "icache" in kwargs:
            raise TypeError(
                "pass either icache=PolicySpec(...) or the deprecated "
                "icache_policy/icache_threshold keywords, not both"
            )
        kwargs["icache"] = _legacy_spec(
            icache_policy or "static", icache_threshold, warn_dropped=True
        )
    if l2_policy is not None or l2_threshold is not None:
        if "l2" in kwargs:
            raise TypeError(
                "pass either l2=PolicySpec(...) or the l2_policy/"
                "l2_threshold string keywords, not both"
            )
        kwargs["l2"] = _legacy_spec(
            l2_policy or "static", l2_threshold, warn_dropped=True
        )
    _GENERATED_INIT(self, *args, **kwargs)


_compat_init.__wrapped__ = _GENERATED_INIT
SimulationConfig.__init__ = _compat_init
