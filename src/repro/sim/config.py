"""Simulation configuration (Tables 1 and 2) and the policy factory.

:class:`SimulationConfig` collects everything one run needs: the
technology node (Table 1), the processor and memory-hierarchy sizing
(Table 2), the benchmark, the precharge policies of the two L1 caches and
the run length.  The policy factory builds the policy objects the paper
evaluates from short names, so experiments and examples can say
``policy="gated"`` instead of wiring classes by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cache.hierarchy import HierarchyConfig
from repro.core import (
    GatedPrechargePolicy,
    OnDemandPrechargePolicy,
    OraclePrechargePolicy,
    ResizableCachePolicy,
    StaticPullUpPolicy,
)
from repro.core.policies import BasePrechargePolicy
from repro.cpu.pipeline import PipelineConfig

__all__ = ["SimulationConfig", "make_policy", "POLICY_NAMES", "DEFAULT_INSTRUCTIONS"]

#: Short names accepted by :func:`make_policy`.
POLICY_NAMES = (
    "static",
    "oracle",
    "on-demand",
    "gated",
    "gated-predecode",
    "resizable",
)

#: Default simulated instruction count for experiments.  The paper uses
#: SimPoint regions of hundreds of millions of instructions; the synthetic
#: workloads here reach steady-state behaviour within tens of thousands.
DEFAULT_INSTRUCTIONS = 30_000


def make_policy(
    name: str,
    threshold: int = 100,
    resizable_interval: int = 50_000,
) -> BasePrechargePolicy:
    """Build a precharge policy from its short name.

    Args:
        name: One of :data:`POLICY_NAMES`.
        threshold: Decay threshold for the gated policies.
        resizable_interval: Accesses per resizing interval for the
            resizable-cache baseline.

    Raises:
        ValueError: for an unknown policy name.
    """
    lowered = name.lower()
    if lowered == "static":
        return StaticPullUpPolicy()
    if lowered == "oracle":
        return OraclePrechargePolicy()
    if lowered in ("on-demand", "ondemand", "on_demand"):
        return OnDemandPrechargePolicy()
    if lowered == "gated":
        return GatedPrechargePolicy(threshold=threshold)
    if lowered in ("gated-predecode", "gated_predecode"):
        return GatedPrechargePolicy(threshold=threshold, use_predecode=True)
    if lowered == "resizable":
        return ResizableCachePolicy(interval_accesses=resizable_interval)
    raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one simulated run needs.

    Attributes:
        benchmark: Name of one of the sixteen synthetic benchmarks.
        dcache_policy: Precharge policy name for the L1 data cache.
        icache_policy: Precharge policy name for the L1 instruction cache.
        feature_size_nm: Technology node (Table 1).
        subarray_bytes: Precharge-control granularity (1KB base).
        dcache_threshold: Gated-precharging threshold for the data cache.
        icache_threshold: Gated-precharging threshold for the instruction
            cache.
        n_instructions: Micro-ops to simulate.
        seed: Workload seed.
        pipeline: Microarchitecture parameters (Table 2 defaults).
    """

    benchmark: str = "gcc"
    dcache_policy: str = "static"
    icache_policy: str = "static"
    feature_size_nm: int = 70
    subarray_bytes: int = 1024
    dcache_threshold: int = 100
    icache_threshold: int = 100
    n_instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = 1
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    def hierarchy_config(self) -> HierarchyConfig:
        """The memory-hierarchy sizing for this run."""
        return HierarchyConfig(
            feature_size_nm=self.feature_size_nm,
            subarray_bytes=self.subarray_bytes,
        )

    def dcache_controller(self) -> BasePrechargePolicy:
        """Instantiate the data-cache precharge policy."""
        return make_policy(self.dcache_policy, threshold=self.dcache_threshold)

    def icache_controller(self) -> BasePrechargePolicy:
        """Instantiate the instruction-cache precharge policy."""
        return make_policy(self.icache_policy, threshold=self.icache_threshold)

    def pipeline_config(self) -> PipelineConfig:
        """Pipeline configuration, with on-demand's known +1 cycle folded in.

        On-demand precharging delays *every* data-cache access by the
        pull-up cycle, so the scheduler would be tuned for the longer
        latency rather than treating each access as a misspeculation.
        """
        extra = 1 if self.dcache_policy.startswith("on") else 0
        if extra and self.pipeline.speculative_extra_latency == 0:
            return replace(self.pipeline, speculative_extra_latency=extra)
        return self.pipeline

    def with_policies(self, dcache: str, icache: str) -> "SimulationConfig":
        """A copy of this configuration with different precharge policies."""
        return replace(self, dcache_policy=dcache, icache_policy=icache)
