"""On-disk result store: sweeps resume across processes.

A :class:`ResultStore` is a directory of JSON files, one per simulated
configuration, keyed by a digest of the configuration's canonical
serialised form.  :class:`~repro.sim.engine.SimEngine` consults the store
before computing a run and writes every fresh result back, so a killed or
re-invoked sweep only simulates the configurations it has not seen —
the cross-product evaluations of the paper (16 benchmarks x 6 policies x
nodes x subarray sizes) become restartable.

The files are plain :meth:`~repro.sim.metrics.RunResult.to_dict` JSON, so
they double as a machine-readable archive of every run.
"""

from __future__ import annotations

import json
import os
import tempfile
from hashlib import sha256
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.workloads.scenarios import workload_identity

from .config import SimulationConfig
from .metrics import RunResult

__all__ = ["ResultStore"]


class ResultStore:
    """Persist :class:`RunResult` objects keyed by configuration."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(config: SimulationConfig) -> str:
        """Stable digest identifying one configuration.

        ``trace:`` benchmarks fold the trace file's identity in (plain
        benchmark digests are unchanged), so re-recording a file never
        resumes from a stale stored result.  A default L2 (static
        pull-up) is omitted by :meth:`SimulationConfig.to_dict`, so
        digests of pre-L2 configurations are unchanged and old stores
        resume; a non-default L2 folds its canonical spec in.
        """
        canonical = dict(config.to_dict())
        canonical["dcache"] = config.dcache.canonical().to_dict()
        canonical["icache"] = config.icache.canonical().to_dict()
        if "l2" in canonical:
            canonical["l2"] = config.l2.canonical().to_dict()
        identity = workload_identity(config.benchmark)
        if identity is not None:
            canonical["workload_identity"] = list(identity)
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return sha256(payload.encode("utf-8")).hexdigest()[:32]

    def _path(self, config: SimulationConfig) -> Path:
        return self.directory / f"{self.key_for(config)}.json"

    # ------------------------------------------------------------------
    def get(self, config: SimulationConfig) -> Optional[RunResult]:
        """The stored result for ``config``, or ``None``."""
        path = self._path(config)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            payload = json.loads(text)
            return RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            # A truncated write (e.g. a killed process) must not poison
            # the sweep; recompute and overwrite.
            return None

    def put(self, config: SimulationConfig, result: RunResult) -> None:
        """Persist ``result`` for ``config`` (atomic within the store dir)."""
        payload = {"config": config.to_dict(), "result": result.to_dict()}
        path = self._path(config)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, config: SimulationConfig) -> bool:
        return self._path(config).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def iter_results(self) -> Iterator[RunResult]:
        """Every stored result (order unspecified)."""
        for path in sorted(self.directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                yield RunResult.from_dict(payload["result"])
            except (KeyError, TypeError, ValueError, OSError):
                continue

    def clear(self) -> None:
        """Delete every stored result."""
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass
