"""On-disk result store: sweeps resume across processes.

A :class:`ResultStore` is a directory of JSON files, one per simulated
configuration, keyed by a digest of the configuration's canonical
serialised form.  :class:`~repro.sim.engine.SimEngine` consults the store
before computing a run and writes every fresh result back, so a killed or
re-invoked sweep only simulates the configurations it has not seen —
the cross-product evaluations of the paper (16 benchmarks x 6 policies x
nodes x subarray sizes) become restartable.

The files are plain :meth:`~repro.sim.metrics.RunResult.to_dict` JSON, so
they double as a machine-readable archive of every run.

Concurrent-writer safety: the store is **per-key files with atomic
publication** — each result is written to a unique temporary file in the
store directory (``mkstemp``), flushed and fsynced, then ``os.replace``'d
into place.  Readers therefore only ever see a missing file or a
complete JSON document, never an interleaving of two writers, even when
several engine or service processes hammer the same directory; when two
processes race on one key the results are bit-identical by construction
(runs are deterministic), so last-writer-wins is harmless.

Read-side integrity: every entry written by :meth:`ResultStore.put`
carries a SHA-256 digest of its canonical payload.  Reads verify it
(entries from older stores without a digest are accepted unverified);
an unparseable or digest-mismatched entry is **quarantined** — renamed
to ``<key>.json.corrupt`` so it stops matching the ``*.json`` globs —
counted in ``stats["corrupt_entries"]``, and reported as a miss.  A
corrupt file therefore never raises out of a lookup and never satisfies
one either: the entry is simply recomputed and rewritten.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
import time
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro import faults
from repro.workloads.scenarios import workload_identity

from .config import SimulationConfig
from .metrics import RunResult

__all__ = ["ResultStore"]

log = logging.getLogger("repro.store")


def _payload_digest(payload: dict) -> str:
    """SHA-256 over the canonical JSON of the non-digest fields."""
    body = {key: value for key, value in payload.items() if key != "sha256"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """Persist :class:`RunResult` objects keyed by configuration."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._stats_lock = threading.Lock()
        #: Integrity counters; ``corrupt_entries`` feeds ``/v1/metrics``.
        self.stats: Dict[str, int] = {"corrupt_entries": 0}

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(config: SimulationConfig) -> str:
        """Stable digest identifying one configuration.

        ``trace:`` benchmarks fold the trace file's identity in (plain
        benchmark digests are unchanged), so re-recording a file never
        resumes from a stale stored result; scenario and ``fuzz:``
        benchmarks fold their canonical expression in, so equivalent
        spellings resume from one stored entry.  A default L2 (static
        pull-up) is omitted by :meth:`SimulationConfig.to_dict`, so
        digests of pre-L2 configurations are unchanged and old stores
        resume; a non-default L2 folds its canonical spec in.
        """
        canonical = dict(config.to_dict())
        canonical["dcache"] = config.dcache.canonical().to_dict()
        canonical["icache"] = config.icache.canonical().to_dict()
        if "l2" in canonical:
            canonical["l2"] = config.l2.canonical().to_dict()
        identity = workload_identity(config.benchmark)
        if identity is not None:
            canonical["workload_identity"] = list(identity)
            if identity[0] == "scenario":
                # Digest the canonical expression, not the literal
                # spelling, so equivalent spellings share one entry.
                canonical["benchmark"] = identity[1]
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return sha256(payload.encode("utf-8")).hexdigest()[:32]

    def _path(self, config: SimulationConfig) -> Path:
        return self.directory / f"{self.key_for(config)}.json"

    def _key_path(self, key: str) -> Path:
        # Keys are hex digests; reject anything that could traverse out
        # of the store directory (the service exposes key lookups over
        # HTTP, so this is an input-validation boundary, not paranoia).
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed result key: {key!r}")
        return self.directory / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Sideline a corrupt entry as ``<name>.corrupt`` and count it.

        The sidecar suffix takes the file out of every ``*.json`` glob
        (``keys``, ``iter_results``, ``__len__``), so a corrupt entry
        disappears from the store's view while staying on disk for a
        post-mortem.  Rename failures are swallowed — quarantine is
        best-effort; the read already returned a miss.
        """
        with self._stats_lock:
            self.stats["corrupt_entries"] += 1
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass
        log.warning("quarantined corrupt store entry %s (%s)", path.name, reason)

    # ------------------------------------------------------------------
    def get(self, config: SimulationConfig) -> Optional[RunResult]:
        """The stored result for ``config``, or ``None``."""
        payload = self.get_payload(self.key_for(config))
        if payload is None:
            return None
        try:
            return RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def get_payload(self, key: str) -> Optional[dict]:
        """The raw stored ``{"config":..., "result":...}`` payload for a key.

        Returns ``None`` for an absent key, an unreadable file, or a
        corrupt entry.  Corruption — truncated JSON from a torn write,
        a non-object document, or a payload whose ``sha256`` digest no
        longer matches its content — quarantines the file (see
        :meth:`_quarantine`) and reads as a miss, so a damaged entry is
        recomputed and overwritten instead of poisoning the caller.
        """
        hit = faults.check("store.get")
        if hit is not None:
            if hit.action == "slow":
                time.sleep(hit.delay)
            elif hit.action == "error":
                return None  # an unreadable file is a miss, not an error
        path = self._key_path(key)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "not a JSON object")
            return None
        stored_digest = payload.get("sha256")
        if stored_digest is not None and stored_digest != _payload_digest(payload):
            self._quarantine(path, "digest mismatch")
            return None
        return payload

    def get_by_key(self, key: str) -> Optional[RunResult]:
        """The stored result under ``key`` (a :meth:`key_for` digest)."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        try:
            return RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def keys(self) -> list:
        """Every stored key (sorted; unreadable entries included)."""
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def put(self, config: SimulationConfig, result: RunResult) -> None:
        """Persist ``result`` for ``config``.

        Atomic against concurrent readers *and* writers: the payload is
        staged in a unique temp file, flushed and fsynced, then renamed
        over the key's path in one step — two processes writing the same
        key can interleave freely without a reader ever seeing partial
        JSON.  The payload carries its own SHA-256 digest for read-side
        verification.
        """
        payload = {"config": config.to_dict(), "result": result.to_dict()}
        payload["sha256"] = _payload_digest(payload)
        path = self._path(config)
        hit = faults.check("store.put")
        if hit is not None:
            if hit.action == "slow":
                time.sleep(hit.delay)
            elif hit.action == "error":
                raise OSError(f"injected fault: store.put of {path.name}")
            elif hit.action == "torn":
                # A crash mid-write with no atomic rename: the final
                # path holds half a document.  Reads must quarantine it.
                text = json.dumps(payload)
                path.write_text(text[: max(1, len(text) // 2)])
                return
            elif hit.action == "corrupt":
                # Bit-rot: valid JSON whose digest no longer matches.
                payload["sha256"] = "0" * 64
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, config: SimulationConfig) -> bool:
        return self._path(config).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def iter_results(self) -> Iterator[RunResult]:
        """Every stored result (order unspecified; corrupt entries skipped)."""
        for path in sorted(self.directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                yield RunResult.from_dict(payload["result"])
            except (KeyError, TypeError, ValueError, OSError):
                continue

    def clear(self) -> None:
        """Delete every stored result."""
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass
