"""The simulation engine: bounded caching, persistence and parallel fan-out.

:class:`SimEngine` owns everything the old module-global driver did, as
an object:

* a bounded, thread-safe, LRU result cache (the old process-global
  ``_RUN_CACHE`` grew without limit and could not be scoped per test or
  per experiment);
* an optional on-disk :class:`~repro.sim.store.ResultStore`, consulted
  before computing and updated after, so sweeps resume across processes;
* :meth:`run_many` / :meth:`sweep` fan-out over a **persistent,
  reusable process pool**: worker processes are forked once and reused
  across calls, pending work is grouped into trace-affine chunks whose
  estimated cost drives a longest-first submission order (idle workers
  steal the next chunk, so one slow benchmark cannot serialise a
  sweep), and compiled traces reach workers through the on-disk trace
  cache (bytes, not generators — see :mod:`repro.sim.fastpath`).  The
  runs are independent and seeded, so parallel results are bit-identical
  to serial ones.

The module-level :func:`repro.sim.runner.run_simulation` is a thin shim
over :func:`default_engine`, so existing call sites keep the memoisation
behaviour they had.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.cache.hierarchy import MemoryHierarchy
from repro.circuits.technology import get_technology
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.energy.cache_energy import combine_run_energy
from repro.workloads.characteristics import benchmark_names, get_benchmark
from repro.workloads.synthetic import make_workload

from .config import SimulationConfig
from .fastpath import _trace_cache_key, execute_run_fast
from .metrics import RunResult
from .store import ResultStore

__all__ = [
    "RunCancelled",
    "SimEngine",
    "default_engine",
    "execute_run",
    "execute_run_fast",
]


class RunCancelled(Exception):
    """A :meth:`SimEngine.run_many` call was cancelled via its event.

    Raised out of the engine when the caller-supplied ``cancel`` event is
    set while work is still outstanding.  Completed configurations keep
    their cache/store entries (cancellation is checked between
    configurations serially and between chunks in parallel), so a
    cancelled batch resumes cheaply when resubmitted.
    """


def execute_run(config: SimulationConfig) -> RunResult:
    """Simulate one configuration, uncached.

    This is the pure "architectural simulation" step: wire the synthetic
    workload, the memory hierarchy with its precharge policies and the
    out-of-order pipeline together, run the configured number of
    micro-ops, and collect timing, cache and energy results.  It is a
    module-level function so worker processes can execute it directly.
    """
    workload = make_workload(config.benchmark, seed=config.seed)
    hierarchy = MemoryHierarchy(
        config=config.hierarchy_config(),
        icache_controller=config.icache_controller(),
        dcache_controller=config.dcache_controller(),
        l2_controller=config.l2_controller(),
    )
    pipeline = OutOfOrderPipeline(
        hierarchy=hierarchy,
        instruction_stream=workload.instructions(),
        config=config.pipeline_config(),
    )
    stats = pipeline.run(config.n_instructions)
    breakdowns = hierarchy.finalize(pipeline.cycle)
    energy = combine_run_energy(
        breakdowns,
        tech=get_technology(config.feature_size_nm),
        pipeline_stats=stats,
    )
    return RunResult(
        benchmark=config.benchmark,
        # Canonical registry names, not the spec's spelling: a run
        # requested under an alias must be labeled identically to the
        # same run requested under the canonical name (they share a key).
        dcache_policy=config.dcache.info().name,
        icache_policy=config.icache.info().name,
        feature_size_nm=config.feature_size_nm,
        subarray_bytes=config.subarray_bytes,
        cycles=pipeline.cycle,
        pipeline=stats,
        energy=energy,
        dcache_miss_ratio=hierarchy.l1d.miss_ratio,
        icache_miss_ratio=hierarchy.l1i.miss_ratio,
        dcache_gaps=hierarchy.l1d.tracker.access_gaps(),
        icache_gaps=hierarchy.l1i.tracker.access_gaps(),
        dcache_accesses=hierarchy.l1d.accesses,
        icache_accesses=hierarchy.l1i.accesses,
        dcache_delayed_accesses=hierarchy.l1d.precharge_penalties,
        icache_delayed_accesses=hierarchy.l1i.precharge_penalties,
        l2_policy=config.l2.info().name,
        l2_miss_ratio=hierarchy.l2.miss_ratio,
        l2_accesses=hierarchy.l2.accesses,
        l2_writebacks=hierarchy.l2.writebacks,
        l2_delayed_accesses=hierarchy.l2.precharge_penalties,
        l2_gaps=hierarchy.l2.tracker.access_gaps(),
    )


def _worker_context():
    """The multiprocessing context used for parallel fan-out.

    Prefer ``fork`` where available: worker processes then inherit the
    parent's policy registry, so policies registered at runtime (tests,
    plugins) work in parallel sweeps.  On spawn-only platforms workers
    re-import :mod:`repro`, which registers the built-ins; runtime
    registrations must live in an importable module to participate
    (the standard multiprocessing caveat).  Because the engine's pool is
    persistent, registrations made *after* the pool first spins up reach
    workers only after :meth:`SimEngine.close` recycles it.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def _execute_chunk(
    payload: Tuple[bool, List[SimulationConfig]]
) -> Tuple[List[RunResult], Dict[str, Any]]:
    """Worker-side entry: run one trace-affine chunk of configurations.

    Chunks group configurations that share a compiled trace, so a worker
    pays the trace load (from the on-disk cache, usually) once per chunk
    rather than once per configuration.  The ``engine.chunk`` failpoint
    fires here, inside the worker: ``crash`` kills the worker process
    (breaking the pool exactly like the OOM killer would), ``raise``
    fails the task, ``hang`` stalls it.

    Returns ``(results, meta)``: the results plus a small span record —
    wall-clock start, duration, worker pid, and the kernel phase
    profile when ``repro.obs.profile`` is armed in the worker (``None``
    otherwise).  The parent turns ``meta`` into an ``engine.chunk``
    span; fork workers cannot reach the parent's span ring directly, so
    the measurement rides back alongside the results.
    """
    fast, chunk = payload
    faults.trip("engine.chunk")
    runner = execute_run_fast if fast else execute_run
    start_wall = time.time()
    start = time.perf_counter()
    results = [runner(config) for config in chunk]
    meta = {
        "start_s": start_wall,
        "dur_s": time.perf_counter() - start,
        "pid": os.getpid(),
        "configs": len(chunk),
        "profile": obs_profile.snapshot(reset=True),
    }
    return results, meta


def _record_chunk_span(meta: Optional[Dict[str, Any]]) -> None:
    """Record one ``engine.chunk`` span from a worker's meta record.

    Parents the span to the scheduler's thread-local unit-execution
    context when one is bound (the service path); standalone sweeps
    get free-floating chunk spans under a fresh trace id.  A no-op
    while no span recorder is installed.
    """
    if meta is None or obs_trace.recorder() is None:
        return
    ctx = obs_trace.get_current()
    trace_id = parent_id = None
    if ctx is not None:
        trace_id, parent_id = ctx
    attrs: Dict[str, Any] = {
        "configs": meta.get("configs", 0),
        "worker_pid": meta.get("pid", 0),
    }
    profile = meta.get("profile")
    if profile:
        attrs["kernel_runs"] = profile.get("runs", 0)
        for name, entry in profile.get("phases", {}).items():
            attrs[f"phase_{name}_s"] = round(entry.get("seconds", 0.0), 6)
    obs_trace.record_span(
        "engine.chunk",
        meta.get("start_s", time.time()),
        meta.get("dur_s", 0.0),
        trace_id=trace_id,
        parent_id=parent_id,
        attrs=attrs,
    )


def _estimated_cost(config: SimulationConfig) -> float:
    """Relative wall-clock estimate for one run (for longest-first order).

    Memory-bound benchmarks with large footprints simulate several times
    slower than cache-friendly ones; weighting by memory-operation
    fraction and data footprint orders chunks well enough that the
    longest work starts first and the pool drains evenly.  Scenario and
    trace workloads fall back to a mid-heavy constant.
    """
    try:
        traits = get_benchmark(config.benchmark)
    except KeyError:
        weight = 2.0
    else:
        weight = 1.0 + 2.0 * (traits.load_fraction + traits.store_fraction)
        weight += min(2.0, traits.data_footprint_bytes / (512 * 1024))
    return config.n_instructions * weight


def _shutdown_executor(pool: ProcessPoolExecutor) -> None:
    pool.shutdown(wait=False)


class SimEngine:
    """Run simulations with caching, persistence and parallelism.

    Args:
        max_cached_runs: Capacity of the in-memory LRU result cache.
        workers: Default process count for :meth:`run_many` /
            :meth:`sweep`; ``1`` means serial in-process execution.
        store: Optional on-disk result store (or a directory path for
            one), consulted before computing and updated after.
        fast: Execute runs on the batched fast-path kernel
            (:func:`repro.sim.fastpath.execute_run_fast`) instead of the
            reference cycle loop.  Results are bit-identical (the
            differential suite enforces this), so fast and reference
            runs share cache entries and store records.
        chunk_retries: How many times a failed parallel chunk is
            resubmitted to a (rebuilt, if broken) pool before it
            degrades to serial in-process execution.  ``0`` keeps the
            old behaviour: any worker failure falls straight to serial.
    """

    def __init__(
        self,
        max_cached_runs: int = 1024,
        workers: int = 1,
        store: Optional[Union[ResultStore, str, Path]] = None,
        fast: bool = False,
        chunk_retries: int = 2,
    ) -> None:
        if max_cached_runs < 1:
            raise ValueError("max_cached_runs must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_retries < 0:
            raise ValueError("chunk_retries must be non-negative")
        self.max_cached_runs = max_cached_runs
        self.workers = workers
        self.fast = fast
        self.chunk_retries = chunk_retries
        self.store = ResultStore(store) if isinstance(store, (str, Path)) else store
        self._cache: "OrderedDict[Tuple, RunResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._pool_lock = threading.Lock()
        self._pool_finalizer: Optional[weakref.finalize] = None
        self.stats: Dict[str, int] = {
            "memory_hits": 0,
            "store_hits": 0,
            "computed": 0,
            "pool_rebuilds": 0,
            "chunk_retries": 0,
            "store_put_errors": 0,
        }

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------
    def _executor(self, workers: int) -> ProcessPoolExecutor:
        """The persistent worker pool, (re)created on first use.

        Workers are forked once and reused across :meth:`run_many` /
        :meth:`sweep` calls — repeated sweeps stop paying process
        start-up, and forked workers inherit already-compiled traces.
        Asking for a different worker count recycles the pool.
        """
        with self._pool_lock:
            if self._pool is not None and self._pool_workers != workers:
                self._close_pool_locked(wait=False)
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=_worker_context()
                )
                self._pool_workers = workers
                self._pool_finalizer = weakref.finalize(
                    self, _shutdown_executor, self._pool
                )
            return self._pool

    def _close_pool_locked(self, wait: bool) -> None:
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None
            self._pool_workers = 0

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent).

        Safe to call from several threads at once (the service layer's
        drain path and a context-manager exit may race): the pool lock
        serialises the shutdown and later callers see the already-closed
        state.  The engine stays usable — the next parallel call simply
        forks a fresh pool (picking up e.g. newly registered policies).
        """
        with self._pool_lock:
            self._close_pool_locked(wait=True)

    def terminate(self) -> None:
        """Hard-stop the worker pool: cancel queued chunks, kill workers.

        Unlike :meth:`close`, which waits for in-flight chunks, this
        SIGKILLs the fork workers so a long chunk cannot delay process
        exit — the interrupt path (SIGINT/SIGTERM during a pooled
        sweep) and the service's drain timeout use it to guarantee no
        orphaned workers outlive the parent.  SIGKILL rather than
        SIGTERM because forked workers inherit the parent's signal
        handlers: a parent whose SIGTERM handler raises (the usual
        graceful-shutdown idiom) would have that exception *swallowed*
        inside the worker's task loop, leaving the worker alive.
        Idempotent and safe under concurrent callers, like :meth:`close`.
        """
        with self._pool_lock:
            pool = self._pool
            if pool is None:
                return
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            # Kill the workers *before* asking the executor to shut
            # down: the manager thread then observes a broken pool and
            # exits by itself.  The reverse order can leave the manager
            # blocked waiting for results that will never arrive, which
            # would hang interpreter exit (it joins manager threads).
            processes = list((getattr(pool, "_processes", None) or {}).values())
            for process in processes:
                if process.is_alive():
                    process.kill()
            pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "SimEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def __bool__(self) -> bool:
        # An engine with an empty cache is still an engine: never let
        # truthiness defaulting (``engine or default_engine()``) swap in
        # the wrong instance.
        return True

    def clear(self) -> None:
        """Drop every memoised run (tests use this for isolation)."""
        with self._lock:
            self._cache.clear()

    def cached_results(self) -> List[RunResult]:
        """The in-memory cached results, least recently used first."""
        with self._lock:
            return list(self._cache.values())

    def _cache_get(self, key: Tuple) -> Optional[RunResult]:
        with self._lock:
            result = self._cache.get(key)
            if result is not None:
                self._cache.move_to_end(key)
                self.stats["memory_hits"] += 1
            return result

    def _bump(self, stat: str) -> None:
        with self._lock:
            self.stats[stat] += 1

    def _cache_put(self, key: Tuple, result: RunResult) -> None:
        with self._lock:
            self._cache[key] = result
            self._cache.move_to_end(key)
            while len(self._cache) > self.max_cached_runs:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        config: SimulationConfig,
        use_cache: bool = True,
        fast: Optional[bool] = None,
    ) -> RunResult:
        """Simulate one configuration, reusing cached results when allowed."""
        return self.run_many([config], workers=1, use_cache=use_cache, fast=fast)[0]

    def run_many(
        self,
        configs: Sequence[SimulationConfig],
        workers: Optional[int] = None,
        use_cache: bool = True,
        fast: Optional[bool] = None,
        cancel: Optional[threading.Event] = None,
    ) -> List[RunResult]:
        """Simulate many configurations, in parallel when ``workers > 1``.

        Results come back in input order and are identical to running
        each configuration serially (runs are independent and fully
        seeded).  Configurations already in the cache or store are not
        re-simulated, and duplicates are simulated once.  ``fast``
        overrides the engine's default execution path for this call.

        ``cancel`` is the service layer's cancellation hook: when the
        event is set mid-batch the call raises :class:`RunCancelled` at
        the next configuration boundary (serial) or chunk boundary
        (parallel).  Results computed before the cancellation are
        already in the cache/store — fresh results are written back as
        they complete, not at the end of the batch — so a resubmitted
        batch resumes instead of restarting.
        """
        workers = self.workers if workers is None else workers
        if workers < 1:
            raise ValueError("workers must be at least 1")
        runner = execute_run_fast if (self.fast if fast is None else fast) else execute_run
        configs = list(configs)
        results: List[Optional[RunResult]] = [None] * len(configs)

        pending: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        pending_configs: Dict[Tuple, SimulationConfig] = {}
        for index, config in enumerate(configs):
            key = config.cache_key()
            hit: Optional[RunResult] = None
            if use_cache:
                hit = self._cache_get(key)
                if hit is None and self.store is not None:
                    hit = self.store.get(config)
                    if hit is not None:
                        self._bump("store_hits")
                        self._cache_put(key, hit)
            if hit is not None:
                results[index] = hit
            else:
                pending.setdefault(key, []).append(index)
                pending_configs.setdefault(key, config)

        todo = list(pending_configs.items())
        if todo:

            def record(position: int, result: RunResult) -> None:
                key, config = todo[position]
                self._bump("computed")
                if use_cache:
                    self._cache_put(key, result)
                    if self.store is not None:
                        try:
                            self.store.put(config, result)
                        except OSError:
                            # A full or failing disk must not lose the
                            # computed result: it is already in the LRU
                            # and in the caller's list.  Count it so
                            # operators can see persistence degrading.
                            self._bump("store_put_errors")
                for index in pending[key]:
                    results[index] = result

            if workers > 1 and len(todo) > 1:
                self._run_parallel(
                    [config for _, config in todo],
                    workers,
                    fast=runner is execute_run_fast,
                    record=record,
                    cancel=cancel,
                )
            else:
                for position, (_, config) in enumerate(todo):
                    if cancel is not None and cancel.is_set():
                        raise RunCancelled(
                            f"cancelled with {len(todo) - position} of "
                            f"{len(todo)} configurations outstanding"
                        )
                    if obs_trace.recorder() is None:
                        record(position, runner(config))
                        continue
                    start_wall = time.time()
                    start = time.perf_counter()
                    result = runner(config)
                    _record_chunk_span({
                        "start_s": start_wall,
                        "dur_s": time.perf_counter() - start,
                        "pid": os.getpid(),
                        "configs": 1,
                        "profile": obs_profile.snapshot(reset=True),
                    })
                    record(position, result)
        return results  # type: ignore[return-value]

    def _run_parallel(
        self,
        configs: List[SimulationConfig],
        workers: int,
        fast: bool,
        record,
        cancel: Optional[threading.Event] = None,
    ) -> None:
        """Execute ``configs`` on the persistent pool, recording as it goes.

        The work is grouped into *trace-affine* chunks (configurations
        sharing a compiled trace land in the same chunk, so each chunk
        pays at most one trace load), the chunks are submitted
        longest-estimated-first, and idle workers pick up the next
        pending chunk — work stealing at chunk granularity.  Each chunk
        carries its configs' original input indices, so ``record`` is
        called with every config's original position even when the input
        interleaves benchmarks (a policy-major grid).  A broken pool
        (e.g. a worker killed by the OOM killer) degrades to serial
        in-process execution instead of failing the sweep.

        Chunk results are recorded as their futures complete, so a
        cancellation (or a failure in a later chunk) keeps everything
        finished so far.  When ``cancel`` is set, pending chunks are
        cancelled and :class:`RunCancelled` is raised; chunks already
        running on workers finish in the background but their results
        are simply discarded.

        Worker failures degrade gracefully, per chunk: a chunk whose
        task raised — or that was in flight when the pool broke (a
        worker SIGKILLed, OOM-killed, or crashed mid-chunk) — is
        resubmitted to a fresh pool up to ``chunk_retries`` times
        (``stats["chunk_retries"]`` / ``stats["pool_rebuilds"]`` count
        the recoveries), and only a chunk that keeps failing runs
        serially in-process as the last resort.  One bad chunk
        therefore no longer demotes a whole sweep to serial, and a
        persistently crashing worker cannot fail a batch.
        """
        recorded: set = set()

        def record_chunk(indices, payload) -> None:
            chunk_results, meta = payload
            fresh = False
            for index, result in zip(indices, chunk_results):
                if index not in recorded:
                    recorded.add(index)
                    record(index, result)
                    fresh = True
            if fresh:
                # Only the attempt that actually contributed results
                # gets a span — a salvage of an already-recorded chunk
                # (retry races) would otherwise double-count it in the
                # chunk-latency histogram.
                _record_chunk_span(meta)

        # (indices, chunk, attempt): attempt counts pool submissions.
        max_attempts = self.chunk_retries + 1
        queue = [
            (indices, chunk, 1) for indices, chunk in self._make_chunks(configs, workers)
        ]
        serial: List[Tuple[List[int], List[SimulationConfig]]] = []

        def requeue(indices, chunk, attempt) -> None:
            if attempt < max_attempts:
                queue.append((indices, chunk, attempt + 1))
            else:
                serial.append((indices, chunk))

        while queue:
            executor = self._executor(workers)
            futures = [
                (indices, chunk, attempt, executor.submit(_execute_chunk, (fast, chunk)))
                for indices, chunk, attempt in queue
            ]
            queue = []
            pool_broken = False
            try:
                for indices, chunk, attempt, future in futures:
                    if pool_broken:
                        # The break cancelled or poisoned the remaining
                        # futures; salvage any that completed first and
                        # requeue the rest against the next pool.
                        chunk_results = None
                        if future.done() and not future.cancelled():
                            try:
                                chunk_results = future.result()
                            except BaseException:
                                chunk_results = None
                        if chunk_results is not None:
                            record_chunk(indices, chunk_results)
                        else:
                            future.cancel()
                            requeue(indices, chunk, attempt)
                        continue
                    chunk_results = None
                    while True:
                        if cancel is not None and cancel.is_set():
                            raise RunCancelled("cancelled between chunks")
                        try:
                            chunk_results = future.result(
                                timeout=0.05 if cancel is not None else None
                            )
                            break
                        except FuturesTimeout:
                            continue
                        except BrokenProcessPool:
                            # A dead worker poisons every in-flight
                            # future at once; recycle the pool once and
                            # drain the rest in salvage mode.
                            pool_broken = True
                            self.close()
                            self._bump("pool_rebuilds")
                            requeue(indices, chunk, attempt)
                            break
                        except (KeyboardInterrupt, SystemExit):
                            raise
                        except Exception:
                            # The task itself failed (a worker-side
                            # exception with the pool still healthy).
                            self._bump("chunk_retries")
                            requeue(indices, chunk, attempt)
                            break
                    if chunk_results is not None:
                        record_chunk(indices, chunk_results)
            except BaseException as error:
                # Cancellation or a kill signal must not leave the other
                # submitted chunks running unattended on the persistent
                # pool, where they would steal CPU from — and queue
                # ahead of — the caller's next run_many.
                for _, _, _, future in futures:
                    future.cancel()
                if isinstance(error, (KeyboardInterrupt, SystemExit)):
                    # An interrupt means the process is on its way out;
                    # a graceful close would block on the long chunks
                    # the interrupt is trying to abandon, and an
                    # abandoned fork pool would orphan its workers.
                    self.terminate()
                else:
                    # Futures complete out of submission order but are
                    # consumed in it, so chunks that finished on other
                    # workers may not have been recorded yet.  Write
                    # them back before propagating — the documented
                    # contract (results land in the cache/store as they
                    # complete) is what lets a cancelled batch resume.
                    for indices, _, _, future in futures:
                        if future.done() and not future.cancelled():
                            try:
                                record_chunk(indices, future.result())
                            except BaseException:
                                pass
                raise

        # Last resort: chunks that exhausted their pool attempts run
        # serially in the caller's process.  The direct runner call
        # bypasses the worker-side failpoint, mirroring production —
        # whatever kills workers (OOM, a bad cgroup) does not apply to
        # the parent — so a chaos plan with p=1 still makes progress.
        runner = execute_run_fast if fast else execute_run
        for indices, chunk in serial:
            for index, config in zip(indices, chunk):
                if index in recorded:
                    continue
                if cancel is not None and cancel.is_set():
                    raise RunCancelled("cancelled during serial fallback")
                recorded.add(index)
                if obs_trace.recorder() is None:
                    record(index, runner(config))
                    continue
                start_wall = time.time()
                start = time.perf_counter()
                result = runner(config)
                _record_chunk_span({
                    "start_s": start_wall,
                    "dur_s": time.perf_counter() - start,
                    "pid": os.getpid(),
                    "configs": 1,
                    "profile": obs_profile.snapshot(reset=True),
                })
                record(index, result)

    @staticmethod
    def _make_chunks(
        configs: List[SimulationConfig], workers: int
    ) -> List[Tuple[List[int], List[SimulationConfig]]]:
        """Split work into cost-sorted, trace-affine chunks.

        Returns ``(input_indices, chunk)`` pairs — parallel lists, so
        every chunk result can be written back to its config's original
        position; the returned list is ordered longest-estimated-first
        for submission.
        """
        # Group by compiled-trace identity, preserving input order.
        groups: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for index, config in enumerate(configs):
            groups.setdefault(
                _trace_cache_key(config.benchmark, config.seed), []
            ).append(index)
        # Aim for a few chunks per worker so stealing can level the load
        # without shattering trace affinity.
        target_chunks = max(workers * 3, 1)
        chunk_size = max(1, math.ceil(len(configs) / target_chunks))
        chunks: List[Tuple[List[int], List[SimulationConfig]]] = []
        for group in groups.values():
            for start in range(0, len(group), chunk_size):
                indices = group[start:start + chunk_size]
                chunks.append((indices, [configs[i] for i in indices]))
        chunks.sort(
            key=lambda entry: sum(_estimated_cost(c) for c in entry[1]),
            reverse=True,
        )
        return chunks

    def sweep(
        self,
        base_config: SimulationConfig,
        benchmarks: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> Dict[str, RunResult]:
        """Run ``base_config`` for every benchmark in ``benchmarks``.

        Args:
            base_config: Template configuration; only the benchmark name
                is substituted (via :func:`dataclasses.replace`, so every
                other field — including ones added later — carries over).
            benchmarks: Benchmark names; defaults to all sixteen.
            workers: Process count; defaults to the engine's.
            fast: Execution-path override for this call.

        Returns:
            Mapping from benchmark name to its :class:`RunResult`.
        """
        names = list(benchmarks) if benchmarks is not None else benchmark_names()
        configs = [replace(base_config, benchmark=name) for name in names]
        results = self.run_many(configs, workers=workers, fast=fast)
        return dict(zip(names, results))

    def select_thresholds(self, benchmark: str, base_config: SimulationConfig, **kwargs):
        """Profile-based per-benchmark threshold selection (Section 6.4).

        Delegates to :func:`repro.sim.sweep.select_benchmark_thresholds`
        with this engine supplying the profiling run.
        """
        from .sweep import select_benchmark_thresholds

        return select_benchmark_thresholds(benchmark, base_config, engine=self, **kwargs)


_DEFAULT_ENGINE: Optional[SimEngine] = None
_DEFAULT_ENGINE_LOCK = threading.Lock()


def default_engine() -> SimEngine:
    """The process-wide engine behind the module-level convenience API."""
    global _DEFAULT_ENGINE
    with _DEFAULT_ENGINE_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = SimEngine()
        return _DEFAULT_ENGINE
