"""Batched fast-path simulation kernel over columnar traces.

:func:`execute_run_fast` produces **bit-identical**
:class:`~repro.sim.metrics.RunResult` objects to the reference
:func:`repro.sim.engine.execute_run`, several times faster.  The speed
comes from restructuring, not from approximating:

* the workload's micro-op stream is **compiled once** into flat parallel
  columns (:class:`CompiledTrace`) — integer arrays for op class, PC,
  registers, addresses and branch outcomes — cached in-process per
  ``(benchmark, seed)`` *and* persisted to an on-disk ``.npz`` trace
  cache (:func:`trace_cache_dir`), so sweeps and worker processes load
  precompiled bytes instead of re-running the workload generators;
* branch-predictor outcomes are **precomputed at compile time**: the
  combination predictor's state depends only on the branch sequence,
  never on timing, so each op's mispredict flag is a pure column
  (``mispred``) shared by every configuration that replays the trace;
* the out-of-order core is driven by a single monolithic kernel
  (:func:`_simulate`) that keeps all in-flight state in parallel integer
  lists instead of per-op objects.  The scheduler is *incremental*: each
  waiting op carries a pending-producer count and a running ready-cycle
  that are updated when a producer issues, so the per-cycle wakeup scan
  degenerates to integer compares — and whole **quiet regions** (cycle
  windows between cache events where provably nothing can commit, issue,
  dispatch or fetch) are skipped in one arithmetic step instead of being
  walked cycle by cycle;
* the cache levels — both L1s *and* the unified L2 — are flat
  tag/LRU/MSHR arrays (:class:`_FastCache`) that delegate *policy
  decisions* to the very same
  :class:`~repro.core.policies.BasePrechargePolicy` objects and
  :class:`~repro.cache.energy_accounting.EnergyLedger` arithmetic the
  reference model uses, in the same call order — which is what makes the
  energy numbers (floating point, order-sensitive) match to the bit.
  Policy hooks that the base class defines as identity/no-op
  (``remap_set``, ``note_outcome``) are detected at wiring time and
  elided from the per-access path.

Every behavioural quirk of the reference model is reproduced on purpose
(monotonic cycle clamping, the i-cache line not being re-probed after a
fetch stall, store-to-load forwarding still probing the cache, MSHR
retry accounting, per-blocked-cycle dispatch stall counting inside
skipped quiet regions, ...); the differential test suite pins the
equality on a policy x benchmark x subarray-size grid.

The columns are plain Python lists in the interpreter's hot loop (list
indexing beats numpy scalar extraction there); numpy, when available,
backs the **typed-array persistence**: :meth:`CompiledTrace.column_arrays`
exports ``int64`` columns, :meth:`CompiledTrace.from_columns` rebuilds a
trace from arrays or lists, and the ``.npz`` disk cache round-trips them.
Without numpy everything still works — the disk cache is simply
disabled and compilation falls back to the pure-Python generators.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from bisect import insort
from collections import deque
from hashlib import sha256
from itertools import islice
from pathlib import Path
from time import perf_counter as _perf
from typing import Callable, Dict, Iterator, List, Optional, Tuple

try:  # numpy is optional: it backs typed-array export and the disk cache
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

from repro.cache.energy_accounting import EnergyBreakdown, EnergyLedger
from repro.cache.hierarchy import MainMemory
from repro.cache.mshr import MSHRFile
from repro.circuits.cacti import CacheOrganization
from repro.circuits.technology import get_technology
from repro.core.policies import BasePrechargePolicy
from repro.cpu.branch_predictor import DEFAULT_HISTORY_BITS, DEFAULT_TABLE_BITS
from repro.cpu.stats import PipelineStats
from repro.energy.cache_energy import combine_run_energy
from repro.obs import profile as _obs_profile
from repro.workloads.trace import (
    EXECUTION_LATENCY,
    MicroOp,
    OP_ALU,
    OP_BRANCH,
    OP_FPU,
    OP_LOAD,
    OP_STORE,
)
from repro.workloads.scenarios import workload_identity
from repro.workloads.synthetic import make_workload

from .config import SimulationConfig
from .metrics import RunResult

__all__ = [
    "CompiledTrace",
    "compile_workload",
    "compiled_trace_for",
    "clear_trace_cache",
    "execute_run_fast",
    "set_trace_cache_dir",
    "trace_cache_dir",
]

# Integer op-class codes used by the columnar trace (list indices into
# _EXEC_LATENCY; the string constants are the public trace vocabulary).
K_ALU, K_FPU, K_LOAD, K_STORE, K_BRANCH = range(5)

_KIND_OF = {OP_ALU: K_ALU, OP_FPU: K_FPU, OP_LOAD: K_LOAD,
            OP_STORE: K_STORE, OP_BRANCH: K_BRANCH}
_OP_OF = (OP_ALU, OP_FPU, OP_LOAD, OP_STORE, OP_BRANCH)

#: Functional-unit latency per op class, derived from the reference
#: table so the two can never drift apart.
_EXEC_LATENCY = tuple(EXECUTION_LATENCY[op] for op in _OP_OF)

#: Column growth quantum when the kernel fetches past the compiled end.
_COMPILE_CHUNK = 8192

#: Columns of a compiled trace, in persistence order.  ``mispred`` is the
#: precomputed branch-predictor outcome (timing-independent, see module
#: docstring); the rest mirror :class:`~repro.workloads.trace.MicroOp`.
COLUMN_NAMES = ("kind", "pc", "dest", "src1", "src2", "addr", "base",
                "taken", "target", "mispred")

#: Infinity sentinel for wake-cycle arithmetic.
_NEVER = 1 << 60

_TABLE_MASK = (1 << DEFAULT_TABLE_BITS) - 1
_HISTORY_MASK = (1 << DEFAULT_HISTORY_BITS) - 1


def _predictor_step(
    bimodal: List[int], gshare: List[int], chooser: List[int],
    history: int, pc: int, taken: int,
) -> Tuple[int, int]:
    """Advance the compile-time combination predictor by one branch.

    The reference automaton
    (:class:`repro.cpu.branch_predictor.CombinationPredictor`) with its
    state held in flat lists, mutated in place; returns
    ``(mispredicted, new_history)``.  Both the live compile
    (:meth:`CompiledTrace._extend`) and the cold replay
    (:meth:`CompiledTrace._replay_predictor`) step through this single
    implementation, so the two can never drift apart.
    """
    pc_bits = pc >> 2
    bimodal_index = pc_bits & _TABLE_MASK
    gshare_index = (pc_bits ^ (history & _HISTORY_MASK)) & _TABLE_MASK
    bimodal_value = bimodal[bimodal_index]
    gshare_value = gshare[gshare_index]
    bimodal_pred = bimodal_value >= 2
    gshare_pred = gshare_value >= 2
    if chooser[bimodal_index] >= 2:
        prediction = gshare_pred
    else:
        prediction = bimodal_pred
    if taken:
        if bimodal_value < 3:
            bimodal[bimodal_index] = bimodal_value + 1
        if gshare_value < 3:
            gshare[gshare_index] = gshare_value + 1
    else:
        if bimodal_value > 0:
            bimodal[bimodal_index] = bimodal_value - 1
        if gshare_value > 0:
            gshare[gshare_index] = gshare_value - 1
    if bimodal_pred != gshare_pred:
        chooser_value = chooser[bimodal_index]
        if gshare_pred == bool(taken):
            if chooser_value < 3:
                chooser[bimodal_index] = chooser_value + 1
        elif chooser_value > 0:
            chooser[bimodal_index] = chooser_value - 1
    history = ((history << 1) | taken) & 0xFFFFFFFF
    return (1 if prediction != bool(taken) else 0), history


class CompiledTrace:
    """A micro-op stream compiled to flat parallel columns.

    Columns are plain lists of small integers (``-1`` encodes ``None``
    for registers/addresses, branch outcomes and predictor outcomes are
    0/1).  The underlying stream is consumed lazily in
    :data:`_COMPILE_CHUNK`-sized batches, so an infinite synthetic
    stream can back a compiled trace: the kernel asks :meth:`ensure` for
    the indices it is about to fetch.

    A trace is created either from a live stream (``source`` /
    ``source_factory``) or from previously exported columns
    (:meth:`from_columns`, e.g. loaded from the on-disk ``.npz`` cache).
    A column-built trace that is not exhausted needs a
    ``source_factory`` to extend past its prefix: the factory's stream
    is fast-forwarded to the first unmaterialised row and the
    compile-time branch predictor resumes from its persisted state, so
    the continuation is byte-identical to an uninterrupted compile.
    """

    __slots__ = COLUMN_NAMES + (
        "rows", "exhausted", "_source", "_source_factory", "_lock",
        "_bimodal", "_gshare", "_chooser", "_history",
        "disk_key", "persisted_rows",
        # Derived fetch-batching structures (see _FetchPlan): the fetch
        # queue encoding per op, branch/misprediction prefix sums, the
        # positions of fetch-terminating branches, and per-line-size
        # fetch plans.  All are pure functions of the columns above and
        # are rebuilt (vectorised under numpy) when a trace is loaded.
        "br_pref", "mp_pref", "terms", "_fetch_plans",
        "_branch_count", "_mispred_count",
    )

    def __init__(
        self,
        source: Optional[Iterator[MicroOp]] = None,
        *,
        source_factory: Optional[Callable[[], Iterator[MicroOp]]] = None,
    ) -> None:
        self._source = iter(source) if source is not None else None
        self._source_factory = source_factory
        self._lock = threading.Lock()
        self.kind: List[int] = []
        self.pc: List[int] = []
        self.dest: List[int] = []
        self.src1: List[int] = []
        self.src2: List[int] = []
        self.addr: List[int] = []
        self.base: List[int] = []
        self.taken: List[int] = []
        self.target: List[int] = []
        self.mispred: List[int] = []
        #: Fully-populated row count.  Published only after *all* columns
        #: of a record are appended, so concurrent readers gated on it
        #: never observe a half-written record (``len(self.kind)`` can
        #: run ahead of the other columns mid-append).
        self.rows = 0
        #: True once the source iterator raised StopIteration.
        self.exhausted = False
        # Compile-time combination predictor (the reference model's
        # default sizes); advanced in lock-step with the columns.
        table_size = 1 << DEFAULT_TABLE_BITS
        self._bimodal = [1] * table_size
        self._gshare = [1] * table_size
        self._chooser = [1] * table_size
        self._history = 0
        #: Trace-cache key when this trace participates in the on-disk
        #: cache (set by :func:`compiled_trace_for`); ``None`` otherwise.
        self.disk_key: Optional[Tuple] = None
        #: Rows already persisted to disk for ``disk_key``.
        self.persisted_rows = 0
        #: Prefix sums over the branch / mispredict indicators:
        #: ``br_pref[i]`` counts branches among ops ``[0, i)``, so a
        #: fetched window ``[a, b)`` contributes ``br_pref[b] - br_pref[a]``.
        self.br_pref: List[int] = [0]
        self.mp_pref: List[int] = [0]
        #: Indices of fetch-terminating branches (taken or mispredicted),
        #: ascending — a fetch window never crosses one.
        self.terms: List[int] = []
        self._branch_count = 0
        self._mispred_count = 0
        self._fetch_plans: Dict[int, "_FetchPlan"] = {}

    def __len__(self) -> int:
        return self.rows

    def ensure(self, index: int) -> bool:
        """Grow the columns until ``index`` exists; False if the stream ended."""
        while index >= self.rows and not self.exhausted:
            with self._lock:
                if index < self.rows or self.exhausted:
                    continue
                self._extend(_COMPILE_CHUNK)
        return index < self.rows

    def _continuation_source(self) -> Iterator[MicroOp]:
        factory = self._source_factory
        if factory is None:
            raise RuntimeError(
                "compiled trace has no continuation source: it was built "
                "from a finite column prefix without a source_factory"
            )
        stream = iter(factory())
        if self.rows:
            # Fast-forward a fresh stream past the materialised prefix.
            stream = islice(stream, self.rows, None)
        return stream

    def _extend(self, count: int) -> None:
        source = self._source
        if source is None:
            source = self._source = self._continuation_source()
        kind = self.kind
        pc = self.pc
        dest = self.dest
        src1 = self.src1
        src2 = self.src2
        addr = self.addr
        base = self.base
        taken = self.taken
        target = self.target
        mispred = self.mispred
        br_pref = self.br_pref
        mp_pref = self.mp_pref
        terms = self.terms
        branch_count = self._branch_count
        mispred_count = self._mispred_count
        kind_of = _KIND_OF
        branch_kind = K_BRANCH
        # Predictor state, hoisted; written back after the batch.
        bimodal = self._bimodal
        gshare = self._gshare
        chooser = self._chooser
        history = self._history
        for _ in range(count):
            try:
                uop = next(source)
            except StopIteration:
                self.exhausted = True
                break
            op_kind = kind_of[uop.op_type]
            uop_pc = uop.pc
            uop_taken = 1 if uop.taken else 0
            kind.append(op_kind)
            pc.append(uop_pc)
            dest.append(-1 if uop.dest is None else uop.dest)
            src1.append(-1 if uop.src1 is None else uop.src1)
            src2.append(-1 if uop.src2 is None else uop.src2)
            addr.append(-1 if uop.address is None else uop.address)
            base.append(-1 if uop.base_address is None else uop.base_address)
            taken.append(uop_taken)
            target.append(-1 if uop.target is None else uop.target)
            if op_kind == branch_kind:
                # The predictor's state advances only with the branch
                # sequence, so the outcome is a property of the trace,
                # not of the run.
                flag, history = _predictor_step(
                    bimodal, gshare, chooser, history, uop_pc, uop_taken
                )
            else:
                flag = 0
            mispred.append(flag)
            index = self.rows
            if op_kind == branch_kind:
                branch_count += 1
                mispred_count += flag
                if flag or uop_taken:
                    terms.append(index)
            br_pref.append(branch_count)
            mp_pref.append(mispred_count)
            self.rows = index + 1
        self._history = history
        self._branch_count = branch_count
        self._mispred_count = mispred_count

    # ------------------------------------------------------------------
    def micro_op(self, index: int) -> MicroOp:
        """Reconstruct the :class:`MicroOp` at ``index`` (for round-trips)."""
        if not self.ensure(index):
            raise IndexError(index)

        def opt(column: List[int]) -> Optional[int]:
            value = column[index]
            return None if value < 0 else value

        return MicroOp(
            op_type=_OP_OF[self.kind[index]],
            pc=self.pc[index],
            dest=opt(self.dest),
            src1=opt(self.src1),
            src2=opt(self.src2),
            address=opt(self.addr),
            base_address=opt(self.base),
            taken=bool(self.taken[index]),
            target=opt(self.target),
        )

    # ------------------------------------------------------------------
    # Typed-array export / import (persistence layer)
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[Dict[str, List[int]], Dict[str, object], bool]:
        """A consistent copy of ``(columns, predictor_state, exhausted)``.

        Taken under the compile lock so the predictor state always
        corresponds exactly to the copied rows.
        """
        with self._lock:
            rows = self.rows
            columns = {name: list(getattr(self, name)[:rows]) for name in COLUMN_NAMES}
            predictor = {
                "bimodal": list(self._bimodal),
                "gshare": list(self._gshare),
                "chooser": list(self._chooser),
                "history": self._history,
            }
            return columns, predictor, self.exhausted

    def column_arrays(self) -> Dict[str, "object"]:
        """The columns as numpy ``int64`` arrays (requires numpy)."""
        if _np is None:
            raise RuntimeError("numpy is not available: typed-array export disabled")
        columns, _, _ = self.snapshot()
        return {name: _np.asarray(column, dtype=_np.int64)
                for name, column in columns.items()}

    @classmethod
    def from_columns(
        cls,
        columns: Dict[str, object],
        *,
        exhausted: bool,
        predictor: Optional[Dict[str, object]] = None,
        source_factory: Optional[Callable[[], Iterator[MicroOp]]] = None,
    ) -> "CompiledTrace":
        """Rebuild a trace from exported columns (lists or numpy arrays).

        ``predictor`` restores the compile-time predictor tables; when
        omitted they are rebuilt by replaying the stored branch sequence,
        which yields the identical state (the predictor is a pure
        function of the branch columns).
        """
        missing = [name for name in COLUMN_NAMES if name not in columns]
        if missing:
            raise ValueError(f"compiled-trace columns missing: {missing}")
        trace = cls(source_factory=source_factory) if source_factory else cls(source=iter(()))
        converted = {}
        rows = None
        for name in COLUMN_NAMES:
            column = columns[name]
            data = column.tolist() if hasattr(column, "tolist") else list(column)
            if rows is None:
                rows = len(data)
            elif len(data) != rows:
                raise ValueError("compiled-trace columns have mismatched lengths")
            converted[name] = data
        for name, data in converted.items():
            setattr(trace, name, data)
        trace.rows = rows or 0
        trace.exhausted = exhausted
        if source_factory is None and not exhausted:
            # ensure() past the prefix will raise through
            # _continuation_source; from_columns stays usable for
            # finite replays and tests.
            trace._source = None
            trace._source_factory = None
        if predictor is not None:
            trace._restore_predictor(predictor)
        else:
            trace._replay_predictor()
        trace._rebuild_derived()
        return trace

    def _restore_predictor(self, predictor: Dict[str, object]) -> None:
        table_size = 1 << DEFAULT_TABLE_BITS
        for field in ("bimodal", "gshare", "chooser"):
            table = predictor[field]
            data = table.tolist() if hasattr(table, "tolist") else list(table)
            if len(data) != table_size:
                raise ValueError(f"predictor table {field!r} has wrong size")
            setattr(self, f"_{field}", data)
        self._history = int(predictor["history"])  # type: ignore[arg-type]

    def _replay_predictor(self) -> None:
        """Recompute predictor state from the stored branch columns."""
        bimodal = self._bimodal
        gshare = self._gshare
        chooser = self._chooser
        history = 0
        kind = self.kind
        pc = self.pc
        taken = self.taken
        branch_kind = K_BRANCH
        for index in range(self.rows):
            if kind[index] != branch_kind:
                continue
            _, history = _predictor_step(
                bimodal, gshare, chooser, history, pc[index], taken[index]
            )
        self._history = history

    def _rebuild_derived(self) -> None:
        """Recompute the fetch-batching structures from the base columns.

        Used after :meth:`from_columns`; vectorised under numpy (this is
        where the typed arrays earn their keep on a disk-cache load).
        """
        rows = self.rows
        if _np is not None and rows > 512:
            kind_arr = _np.asarray(self.kind, dtype=_np.int64)
            taken_arr = _np.asarray(self.taken, dtype=_np.int64)
            mispred_arr = _np.asarray(self.mispred, dtype=_np.int64)
            is_branch = kind_arr == K_BRANCH
            br = _np.zeros(rows + 1, dtype=_np.int64)
            mp = _np.zeros(rows + 1, dtype=_np.int64)
            _np.cumsum(is_branch, out=br[1:])
            _np.cumsum(mispred_arr, out=mp[1:])
            self.br_pref = br.tolist()
            self.mp_pref = mp.tolist()
            self.terms = _np.nonzero(
                is_branch & ((taken_arr != 0) | (mispred_arr != 0))
            )[0].tolist()
            self._branch_count = int(br[-1])
            self._mispred_count = int(mp[-1])
        else:
            kind = self.kind
            taken = self.taken
            mispred = self.mispred
            br_pref = [0] * (rows + 1)
            mp_pref = [0] * (rows + 1)
            terms: List[int] = []
            branch_count = 0
            mispred_count = 0
            branch_kind = K_BRANCH
            for index in range(rows):
                flag = mispred[index]
                if kind[index] == branch_kind:
                    branch_count += 1
                    mispred_count += flag
                    if flag or taken[index]:
                        terms.append(index)
                br_pref[index + 1] = branch_count
                mp_pref[index + 1] = mispred_count
            self.br_pref = br_pref
            self.mp_pref = mp_pref
            self.terms = terms
            self._branch_count = branch_count
            self._mispred_count = mispred_count
        self._fetch_plans = {}

    # ------------------------------------------------------------------
    # Fetch plans (per i-cache line size)
    # ------------------------------------------------------------------
    def fetch_plan(self, offset_bits: int) -> "_FetchPlan":
        """The (cached) fetch-window geometry for one line size."""
        plan = self._fetch_plans.get(offset_bits)
        if plan is None:
            with self._lock:
                plan = self._fetch_plans.get(offset_bits)
                if plan is None:
                    plan = _FetchPlan(offset_bits)
                    self._fetch_plans[offset_bits] = plan
        self.extend_fetch_plan(plan)
        return plan

    def extend_fetch_plan(self, plan: "_FetchPlan") -> None:
        """Grow ``plan`` to cover every materialised row."""
        if plan.upto >= self.rows:
            return
        with self._lock:
            plan.extend_to(self.pc, self.rows)


class _FetchPlan:
    """Per-line-size fetch geometry of a compiled trace.

    ``lines[i]`` is op *i*'s instruction-cache line; ``run_end[i]`` is
    the first index after *i* on a different line, conservatively capped
    at the materialised end when computed (harmless: a fetch window that
    stops early continues in the next iteration without re-probing,
    because the line has not changed).
    """

    __slots__ = ("offset_bits", "lines", "run_end", "upto")

    def __init__(self, offset_bits: int) -> None:
        self.offset_bits = offset_bits
        self.lines: List[int] = []
        self.run_end: List[int] = []
        self.upto = 0

    def extend_to(self, pc: List[int], rows: int) -> None:
        start = self.upto
        if rows <= start:
            return
        bits = self.offset_bits
        if _np is not None and rows - start > 512:
            fresh = (_np.asarray(pc[start:rows], dtype=_np.int64) >> bits).tolist()
        else:
            fresh = [value >> bits for value in pc[start:rows]]
        lines = self.lines
        lines.extend(fresh)
        run_end = self.run_end
        run_end.extend([0] * (rows - start))
        run_end[rows - 1] = rows
        for index in range(rows - 2, start - 1, -1):
            run_end[index] = (
                index + 1 if lines[index + 1] != lines[index] else run_end[index + 1]
            )
        self.upto = rows


def _workload_source_factory(benchmark: str, seed: int) -> Callable[[], Iterator[MicroOp]]:
    return lambda: make_workload(benchmark, seed=seed).instructions()


def compile_workload(benchmark: str, seed: int = 1) -> CompiledTrace:
    """Compile a named workload's stream into a fresh columnar trace."""
    return CompiledTrace(source_factory=_workload_source_factory(benchmark, seed))


# ----------------------------------------------------------------------
# Trace caches.
#
# Two levels, keyed identically (benchmark name + seed, with ``trace:``
# names additionally keyed on file identity):
#
# * an in-process LRU of live CompiledTrace objects, so one sweep
#   compiles each (benchmark, seed) stream once and drives every
#   policy/technology configuration from the same columns;
# * an on-disk ``.npz`` store of the exported columns + predictor state,
#   so *other processes* (parallel sweep workers, later invocations)
#   load precompiled bytes instead of re-running the generators.
# ----------------------------------------------------------------------
_TRACE_CACHE: "Dict[Tuple, CompiledTrace]" = {}
_TRACE_CACHE_LOCK = threading.Lock()
#: Covers the full sixteen-benchmark suite plus scenario composites, so
#: a complete policy x benchmark cross-product compiles each trace once.
_TRACE_CACHE_MAX = 24

#: Bump when the stream semantics, column layout or predictor encoding
#: change: the version participates in the disk filename, so entries
#: written by other layouts are simply never found (and are removed by
#: :func:`clear_trace_cache`).
_DISK_FORMAT_VERSION = 1

#: Environment override for the disk cache directory.  An empty value,
#: ``0``, ``off`` or ``none`` disables on-disk trace caching.
_DISK_CACHE_ENV = "REPRO_TRACE_CACHE_DIR"

_UNSET = object()
_DISK_DIR_OVERRIDE: object = _UNSET


def trace_cache_dir() -> Optional[Path]:
    """The on-disk trace cache directory, or ``None`` when disabled.

    Resolution order: :func:`set_trace_cache_dir` override, the
    ``REPRO_TRACE_CACHE_DIR`` environment variable, then the user cache
    directory (``$XDG_CACHE_HOME``/``~/.cache`` ``/repro/traces``).  The
    cache is also disabled when numpy is unavailable (the format is
    ``.npz``).
    """
    if _np is None:
        return None
    if _DISK_DIR_OVERRIDE is not _UNSET:
        return _DISK_DIR_OVERRIDE  # type: ignore[return-value]
    env = os.environ.get(_DISK_CACHE_ENV)
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none"):
            return None
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "traces"


def set_trace_cache_dir(path: Optional[os.PathLike]) -> None:
    """Point the on-disk trace cache at ``path`` (``None`` disables it)."""
    global _DISK_DIR_OVERRIDE
    _DISK_DIR_OVERRIDE = None if path is None else Path(path)


def _trace_cache_key(benchmark: str, seed: int) -> Tuple:
    """Cache key for one seeded workload name.

    ``trace:`` names additionally key on the file's identity (resolved
    path, mtime, size), so re-recording a trace file is picked up
    instead of silently replaying stale compiled columns — in memory
    *and* on disk, since the disk filename hashes this same key.  (A
    missing file keys by name; compilation then raises the proper
    "trace file not found" error.)

    Scenario and ``fuzz:`` names key on their *canonical* expression
    (``("scenario", unparse(ast))``), so different spellings of one
    composition — reordered modifiers, implicit quanta, a ``fuzz:``
    seed versus its expansion — share compiled columns.  (A malformed
    expression keys by name; compilation then raises the parse error.)
    """
    identity = workload_identity(benchmark)
    if identity is not None:
        return identity + (seed,)
    return (benchmark, seed)


def _disk_path(key: Tuple) -> Optional[Path]:
    directory = trace_cache_dir()
    if directory is None:
        return None
    digest = sha256(f"v{_DISK_FORMAT_VERSION}|{key!r}".encode("utf-8")).hexdigest()
    return directory / f"trace-{digest[:40]}.npz"


def _load_trace_from_disk(
    key: Tuple, source_factory: Callable[[], Iterator[MicroOp]]
) -> Optional[CompiledTrace]:
    """Load a persisted trace; evict and return ``None`` on any defect."""
    path = _disk_path(key)
    if path is None:
        return None
    try:
        if not path.is_file():
            return None
        with _np.load(path, allow_pickle=False) as payload:
            meta = json.loads(str(payload["meta"][()]))
            if meta.get("format") != _DISK_FORMAT_VERSION:
                raise ValueError("format version mismatch")
            if meta.get("key") != repr(key):
                # A (vanishingly unlikely) hash collision, or a file
                # copied between cache dirs: never serve it.
                raise ValueError("key mismatch")
            rows = int(meta["rows"])
            columns = {}
            for name in COLUMN_NAMES:
                column = payload[name]
                if column.ndim != 1 or len(column) != rows:
                    raise ValueError(f"column {name!r} has wrong shape")
                columns[name] = column
            predictor = {
                "bimodal": payload["predictor_bimodal"],
                "gshare": payload["predictor_gshare"],
                "chooser": payload["predictor_chooser"],
                "history": int(meta["history"]),
            }
            trace = CompiledTrace.from_columns(
                columns,
                exhausted=bool(meta["exhausted"]),
                predictor=predictor,
                source_factory=source_factory,
            )
    except Exception:
        # Corrupted, truncated, stale or unreadable: the cache must
        # never take a run down — evict the entry and recompile.
        try:
            path.unlink()
        except OSError:
            pass
        return None
    trace.disk_key = key
    trace.persisted_rows = trace.rows
    return trace


def _persist_trace(trace: CompiledTrace) -> None:
    """Best-effort save of a trace's materialised prefix to the disk cache."""
    key = trace.disk_key
    if key is None or _np is None:
        return
    if trace.rows <= trace.persisted_rows:
        return
    path = _disk_path(key)
    if path is None:
        return
    columns, predictor, exhausted = trace.snapshot()
    rows = len(columns["kind"])
    meta = {
        "format": _DISK_FORMAT_VERSION,
        "key": repr(key),
        "rows": rows,
        "exhausted": exhausted,
        "history": predictor["history"],
    }
    arrays = {name: _np.asarray(column, dtype=_np.int64)
              for name, column in columns.items()}
    arrays["predictor_bimodal"] = _np.asarray(predictor["bimodal"], dtype=_np.int64)
    arrays["predictor_gshare"] = _np.asarray(predictor["gshare"], dtype=_np.int64)
    arrays["predictor_chooser"] = _np.asarray(predictor["chooser"], dtype=_np.int64)
    arrays["meta"] = _np.array(json.dumps(meta))
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            prefix=path.stem + ".", suffix=".tmp.npz", dir=str(path.parent)
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                _np.savez(stream, **arrays)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
    except OSError:
        return  # the disk cache is an accelerator, never a failure source
    trace.persisted_rows = rows


def compiled_trace_for(benchmark: str, seed: int = 1) -> CompiledTrace:
    """The (cached) compiled trace of one seeded workload.

    Consults the in-process LRU first, then the on-disk ``.npz`` cache,
    and only then compiles from the workload generator.
    """
    key = _trace_cache_key(benchmark, seed)
    with _TRACE_CACHE_LOCK:
        trace = _TRACE_CACHE.get(key)
        if trace is not None:
            return trace
    # Disk I/O happens outside the global lock so concurrent threads
    # loading different traces do not serialise on each other's reads.
    factory = _workload_source_factory(benchmark, seed)
    trace = _load_trace_from_disk(key, factory)
    if trace is None:
        trace = CompiledTrace(source_factory=factory)
        trace.disk_key = key
    with _TRACE_CACHE_LOCK:
        existing = _TRACE_CACHE.get(key)
        if existing is not None:
            # Another thread won the race; its trace is the canonical
            # one (ours is discarded before compiling anything).
            return existing
        while len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = trace
        return trace


def clear_trace_cache(disk: bool = True) -> None:
    """Drop every cached compiled trace, in memory and (by default) on disk.

    Tests use this for isolation; re-recorded ``trace:`` files never
    need it (their cache keys include the file identity).
    """
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE.clear()
    if not disk:
        return
    directory = trace_cache_dir()
    if directory is None or not directory.is_dir():
        return
    for path in directory.glob("trace-*.npz"):
        try:
            path.unlink()
        except OSError:
            pass


class _FastCache:
    """Flat-array cache level, behaviourally identical to the reference model.

    Tag match, LRU victim selection and statistics are inlined over flat
    per-way lists (one contiguous list per attribute, indexed by
    ``set * assoc + way``); the precharge policy and the energy ledger
    are the same objects the reference path uses, called in the same
    order with the same arguments.  Policy hooks the base class defines
    as identity/no-op (``remap_set``, ``note_outcome``) are elided at
    wiring time.  One class serves every level: the L1s are wired to the
    shared flat L2, the L2 to the
    :class:`~repro.cache.hierarchy.MainMemory` model (misses below a
    fast next level consume its returned latency directly; a non-fast
    next level is consulted through the reference ``AccessResult``
    protocol).
    """

    __slots__ = (
        "organization", "name", "base_latency", "controller", "next_level",
        "mshrs", "ledger", "_tags", "_lines", "_dirty", "_last_used",
        "_sub_last", "gaps", "accesses", "hits", "misses", "writebacks",
        "precharge_penalties", "penalty_cycles", "_last_cycle",
        "_offset_bits", "_n_sets", "_assoc", "_sets_per_subarray",
        "_next_is_fast", "_remap", "_note_outcome", "_policy_access",
        "_policy_on_access", "_policy_stats", "_policy_last",
        "_accesses_flushed", "_prof",
    )

    def __init__(
        self,
        organization: CacheOrganization,
        name: str,
        controller,
        next_level,
        mshr_entries: int,
        base_latency: int,
    ) -> None:
        self.organization = organization
        self.name = name
        self.base_latency = base_latency
        self.controller = controller
        self.next_level = next_level
        self._next_is_fast = isinstance(next_level, _FastCache)
        self.mshrs = MSHRFile(mshr_entries)
        n_sets = organization.n_sets
        assoc = organization.associativity
        self._n_sets = n_sets
        self._assoc = assoc
        self._offset_bits = organization.offset_bits
        self._sets_per_subarray = organization.sets_per_subarray
        # -1 tags mark invalid ways (real tags are non-negative).
        self._tags = [-1] * (n_sets * assoc)
        #: Original (pre-remap) line address per way, for writebacks.
        self._lines = [-1] * (n_sets * assoc)
        self._dirty = [False] * (n_sets * assoc)
        self._last_used = [0] * (n_sets * assoc)
        self._sub_last = [-1] * organization.n_subarrays
        #: Inter-access subarray gaps in observation order (the reference
        #: tracker's ``access_gaps()``).
        self.gaps: List[int] = []
        self.ledger = EnergyLedger(organization.subarray, organization.n_subarrays)
        self.controller.attach(organization, self.ledger)
        # Per-access dynamic dispatch, resolved once: policies that keep
        # the base class's identity remap / no-op outcome hook skip the
        # calls entirely (every built-in but the resizable baseline).
        controller_type = type(controller)
        self._remap = (
            None
            if controller_type.remap_set is BasePrechargePolicy.remap_set
            else controller.remap_set
        )
        self._note_outcome = (
            None
            if controller_type.note_outcome is BasePrechargePolicy.note_outcome
            else controller.note_outcome
        )
        self._policy_access = controller.access
        # When the policy keeps the base class's access() bookkeeping
        # (every built-in does), perform it inline and call the
        # subclass hook directly — one interpreter frame less on the
        # hottest call of the simulation.  A policy that overrides
        # access() gets the full dynamic call instead.
        if controller_type.access is BasePrechargePolicy.access:
            self._policy_on_access = controller._on_access
            self._policy_stats = controller.stats
            self._policy_last = controller._last_access
        else:
            self._policy_on_access = None
            self._policy_stats = None
            self._policy_last = None
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.precharge_penalties = 0
        self.penalty_cycles = 0
        self._last_cycle = 0
        self._accesses_flushed = False
        # Armed kernel profiler, or None.  Bound once at construction:
        # the chunk that builds the hierarchy is the chunk that runs it.
        self._prof = _obs_profile.active()

    # ------------------------------------------------------------------
    def access(
        self, address: int, cycle: int, write: bool, base_address: Optional[int]
    ) -> Tuple[bool, int, int]:
        """One access; returns ``(hit, latency, precharge_penalty)``."""
        prof = self._prof
        if prof is not None:
            # Depth-counted: nested next-level accesses (miss service,
            # writebacks) bill only the outermost frame, so cache time
            # is wall time spent inside the hierarchy, not a multiple.
            prof.cache_depth += 1
            _cache_t0 = _perf()
        if cycle < self._last_cycle:
            cycle = self._last_cycle
        else:
            self._last_cycle = cycle
        self.accesses += 1

        line = address >> self._offset_bits
        n_sets = self._n_sets
        raw_set = line % n_sets
        tag = line // n_sets
        remap = self._remap
        set_index = raw_set if remap is None else remap(raw_set, n_sets)
        subarray = set_index // self._sets_per_subarray

        sub_last = self._sub_last
        previous = sub_last[subarray]
        if previous >= 0:
            self.gaps.append(cycle - previous if cycle > previous else 0)
        sub_last[subarray] = cycle
        # The ledger's dynamic-access tally is batched into finalize()
        # (it is an order-independent integer count).

        on_access = self._policy_on_access
        if on_access is not None:
            # Inlined BasePrechargePolicy.access bookkeeping (identical
            # statements in identical order).
            policy_stats = self._policy_stats
            policy_stats.accesses += 1
            policy_last = self._policy_last
            previous_access = policy_last[subarray]
            if previous_access is None:
                gap = cycle
            else:
                gap = cycle - previous_access
                if gap < 0:
                    gap = 0
            penalty = on_access(subarray, cycle, gap, base_address, address)
            policy_last[subarray] = cycle
            if penalty > 0:
                policy_stats.delayed_accesses += 1
                policy_stats.penalty_cycles += penalty
        else:
            penalty = self._policy_access(subarray, cycle, base_address, address)
        if penalty > 0:
            self.precharge_penalties += 1
            self.penalty_cycles += penalty

        assoc = self._assoc
        way_base = set_index * assoc
        way_end = way_base + assoc
        tags = self._tags
        hit_way = -1
        for way in range(way_base, way_end):
            if tags[way] == tag:
                hit_way = way
                break

        latency = self.base_latency + penalty
        if hit_way >= 0:
            self._last_used[hit_way] = cycle
            if write:
                self._dirty[hit_way] = True
            self.hits += 1
            hit = True
        else:
            self.misses += 1
            hit = False
            latency += self._service_miss(address, cycle)
            victim = -1
            for way in range(way_base, way_end):
                if tags[way] < 0:
                    victim = way
                    break
            if victim < 0:
                last_used = self._last_used
                victim = way_base
                oldest = last_used[way_base]
                for way in range(way_base + 1, way_end):
                    if last_used[way] < oldest:
                        oldest = last_used[way]
                        victim = way
            dirty = self._dirty
            if tags[victim] >= 0 and dirty[victim]:
                self.writebacks += 1
                # Drain the dirty victim to the next level (same point in
                # the access sequence as the reference model: after the
                # fill request, before the overwrite).  The recorded
                # pre-remap line address is used, like the reference.
                wb_address = self._lines[victim] << self._offset_bits
                if self._next_is_fast:
                    self.next_level.access(wb_address, cycle, True, None)
                else:
                    self.next_level.access(wb_address, cycle, write=True)
            tags[victim] = tag
            self._lines[victim] = line
            dirty[victim] = write
            self._last_used[victim] = cycle

        note_outcome = self._note_outcome
        if note_outcome is not None:
            note_outcome(hit, cycle)
        if prof is not None:
            prof.cache_accesses += 1
            prof.cache_depth -= 1
            if prof.cache_depth == 0:
                prof.cache_s += _perf() - _cache_t0
        return hit, latency, penalty

    def _service_miss(self, address: int, cycle: int) -> int:
        line_addr = address >> self._offset_bits
        mshrs = self.mshrs
        existing = mshrs.outstanding(line_addr)
        if existing is not None:
            return max(1, existing.ready_cycle - cycle)

        if self._next_is_fast:
            service = self.next_level.access(address, cycle, False, None)[1]
        else:
            service = self.next_level.access(address, cycle).latency

        mshrs.retire_completed(cycle)
        entry = mshrs.allocate(line_addr, ready_cycle=cycle + service)
        if entry is None:
            earliest = mshrs.earliest_ready_cycle()
            stall = max(1, (earliest - cycle)) if earliest is not None else 1
            service += stall
            mshrs.retire_completed(cycle + stall)
            mshrs.allocate(line_addr, ready_cycle=cycle + service)
        return service

    # ------------------------------------------------------------------
    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def finalize(self, end_cycle: int) -> EnergyBreakdown:
        if not self._accesses_flushed:
            self._accesses_flushed = True
            self.ledger.note_access_batch(self.accesses)
        self.controller.finalize(end_cycle)
        return self.ledger.breakdown(max(1, end_cycle))


def _simulate(
    trace: CompiledTrace,
    l1i: _FastCache,
    l1d: _FastCache,
    pipeline_config,
    stats: PipelineStats,
    n_instructions: int,
) -> int:
    """Run the flat-array out-of-order kernel; returns the final cycle.

    The loop advances one cycle at a time through commit, issue,
    dispatch and fetch — except across *quiet regions*: after each
    cycle's work it computes the earliest future cycle at which any
    stage could possibly act (head-of-ROB completion, incremental
    scheduler wake, fetch stall expiry) and jumps there in one step,
    charging the per-blocked-cycle dispatch-stall counter for the
    skipped window exactly as the reference model would have.
    """
    if n_instructions < 1:
        raise ValueError("must simulate at least one instruction")

    # Armed kernel profiler, or None; hoisted so each stage guard is a
    # single local test (the same two-instruction no-op discipline as
    # repro.faults when disarmed).
    prof = _obs_profile.active()

    # Trace columns (the lists grow in place, so aliases stay valid).
    t_kind = trace.kind
    t_pc = trace.pc
    t_dest = trace.dest
    t_src1 = trace.src1
    t_src2 = trace.src2
    t_addr = trace.addr
    t_base = trace.base
    t_mispred = trace.mispred
    t_len = trace.rows
    # Fetch-batching structures: the fetch-queue encoding, the branch /
    # mispredict prefix sums, the terminating-branch positions and the
    # per-line window geometry (see _FetchPlan).
    b_pref = trace.br_pref
    m_pref = trace.mp_pref
    t_terms = trace.terms
    n_terms = len(t_terms)
    term_ptr = 0

    # Machine parameters.
    width = pipeline_config.width
    rob_cap = pipeline_config.rob_entries
    iq_cap = pipeline_config.issue_queue_entries
    lsq_cap = pipeline_config.lsq_entries
    memory_ports = pipeline_config.memory_ports
    fetch_queue_size = pipeline_config.fetch_queue_size
    dispatch_latency = pipeline_config.dispatch_latency
    redirect_penalty = pipeline_config.redirect_penalty
    n_regs = pipeline_config.max_registers
    spec_latency = l1d.base_latency + pipeline_config.speculative_extra_latency
    limit = n_instructions * pipeline_config.max_cycles_per_instruction
    d_offset_bits = l1d._offset_bits
    d_base_latency = l1d.base_latency
    i_offset_bits = l1i._offset_bits
    i_base_latency = l1i.base_latency
    l1d_access = l1d.access
    l1i_access = l1i.access
    fetch_plan = trace.fetch_plan(i_offset_bits)
    p_lines = fetch_plan.lines
    p_run_end = fetch_plan.run_end

    # Per-in-flight-op parallel arrays, indexed by sequence number.
    # Preallocated: at most n_instructions commit, plus at most a full
    # ROB of un-committed dispatches when the loop exits, so next_seq
    # never reaches the bound.  The prefill doubles as the initial state
    # (-1 = not issued, True = in scheduler, None = no dependents), so
    # dispatch only writes the fields that vary.
    op_capacity = n_instructions + rob_cap + 2 * width + 8
    o_kind = [0] * op_capacity
    o_trace = [0] * op_capacity    # trace index of the op
    o_complete = [-1] * op_capacity  # -1 while not issued
    o_ready = [0] * op_capacity    # running max of earliest / producer completes
    o_pending = [0] * op_capacity  # producers not yet issued
    o_in_iq = [True] * op_capacity
    o_mispred = [0] * op_capacity
    #: Dependents registered while incomplete; None until the first one
    #: arrives (most ops never acquire any, so the lists are lazy).
    o_deps: List[Optional[List[int]]] = [None] * op_capacity

    rename = [-1] * n_regs
    # The reorder buffer is a contiguous range of sequence numbers
    # [rob_begin, next_seq): dispatch allocates ascending sequences and
    # commit retires them in order, so the whole structure is a cursor.
    rob_begin = 0
    lsq: "deque[Tuple[int, bool, int]]" = deque()  # (sequence, is_store, line)
    #: Store sequence numbers currently in the LSQ, per line address, in
    #: program order — the store-to-load forwarding probe reads the
    #: per-line head instead of scanning the whole LSQ (a load forwards
    #: iff *any* older store to its line is present, i.e. iff the oldest
    #: store on the line is older).
    store_seqs_by_line: Dict[int, "deque[int]"] = {}
    # The issue queue, split by wakeup state.  ``iq_waiting`` holds ops
    # with no pending producers, sorted by sequence number — which is
    # exactly the reference scheduler's (insertion-order) scan order.
    # Ops still waiting on a producer are invisible to the scan (the
    # reference skips them in O(1) anyway) and are counted only for the
    # capacity check; a producer's wake moves them into the sorted list.
    iq_waiting: List[int] = []
    iq_blocked = 0
    iq_len = 0
    #: Earliest cycle any currently-waiting op could issue; the wakeup
    #: scan is skipped while cycle < iq_min_wake (batched scheduling).
    iq_min_wake = _NEVER

    # Fetch state.  The fetch queue is a contiguous range of trace
    # indices [fq_begin, fq_end): fetch appends strictly ascending
    # indices and dispatch consumes them in order, so two cursors over
    # the trace columns replace the queue (the mispredict flag rides in
    # the ``mispred`` column).
    fq_begin = 0
    fq_end = 0
    fetch_index = 0
    pushback = -1
    stall_until = 0
    waiting_redirect = False
    last_line = -1
    exhausted = False

    # Counters.
    cycle = 0
    next_seq = 0
    committed = 0
    fetched_instructions = 0
    branches = 0
    branch_mispredictions = 0
    icache_stall_cycles = 0
    dcache_accesses = 0
    replayed_uops = 0
    delayed_loads = 0
    delayed_fetches = 0
    dispatch_stall_cycles = 0

    while committed < n_instructions:
        if exhausted and rob_begin == next_seq and fq_begin == fq_end:
            break

        # ---------------------------- commit ----------------------------
        retired = 0
        while retired < width and rob_begin < next_seq:
            complete = o_complete[rob_begin]
            if complete < 0 or complete > cycle:
                break
            rob_begin += 1
            retired += 1
        committed += retired
        # When the ROB is empty rob_begin == next_seq, which is exactly
        # the reference's "retire everything older than the next op".
        bound = rob_begin
        while lsq and lsq[0][0] < bound:
            retired_seq, retired_is_store, retired_line = lsq.popleft()
            if retired_is_store:
                line_queue = store_seqs_by_line[retired_line]
                line_queue.popleft()
                if not line_queue:
                    del store_seqs_by_line[retired_line]

        # ---------------------------- issue -----------------------------
        if iq_waiting and cycle >= iq_min_wake:
            if prof is not None:
                _issue_t0 = _perf()
            selected: List[int] = []
            keep: List[int] = []
            next_wake = _NEVER
            memory_used = 0
            n_selected = 0
            waiting_count = len(iq_waiting)
            cut = waiting_count
            for position in range(waiting_count):
                seq = iq_waiting[position]
                if n_selected >= width:
                    cut = position
                    break
                ready = o_ready[seq]
                if ready > cycle:
                    keep.append(seq)
                    if ready < next_wake:
                        next_wake = ready
                    continue
                kind = o_kind[seq]
                if kind == K_LOAD or kind == K_STORE:
                    if memory_used >= memory_ports:
                        keep.append(seq)
                        next_wake = cycle + 1
                        continue
                    memory_used += 1
                selected.append(seq)
                n_selected += 1
            if cut < waiting_count:
                keep.extend(iq_waiting[cut:])
            if n_selected >= width and (keep or iq_blocked):
                # Width-limited: anything left may be issuable next cycle.
                next_wake = cycle + 1
            iq_waiting = keep
            iq_len -= n_selected
            iq_min_wake = next_wake
            # Marking an op out-of-scheduler fuses into the execution
            # loop: a selected op can never appear in another selected
            # op's dependent list (dependents still have a pending
            # producer at scan time), so the replay count below never
            # observes the difference.
            for seq in selected:
                o_in_iq[seq] = False
                kind = o_kind[seq]
                trace_index = o_trace[seq]
                if kind == K_LOAD:
                    dcache_accesses += 1
                    address = t_addr[trace_index]
                    hit, latency, pre_penalty = l1d_access(
                        address, cycle, False, t_base[trace_index]
                    )
                    if pre_penalty > 0:
                        delayed_loads += 1
                    line = address >> d_offset_bits
                    line_stores = store_seqs_by_line.get(line)
                    if line_stores is not None and line_stores[0] < seq:
                        if d_base_latency < latency:
                            latency = d_base_latency
                    complete = cycle + latency
                    if latency > spec_latency:
                        # Load-hit misspeculation: selectively replay the
                        # dependents still waiting in the scheduler.
                        dependents = o_deps[seq]
                        if dependents:
                            counted_twice = 0
                            matched = 0
                            previous_dep = -1
                            for dep in dependents:
                                if o_in_iq[dep]:
                                    matched += 1
                                    if dep == previous_dep:
                                        counted_twice += 1
                                previous_dep = dep
                            replayed_uops += matched - counted_twice
                    o_complete[seq] = complete
                elif kind == K_STORE:
                    dcache_accesses += 1
                    l1d_access(
                        t_addr[trace_index], cycle, True, t_base[trace_index]
                    )
                    # Stores complete once sent to the LSQ; the write
                    # drains in the background.
                    complete = cycle + _EXEC_LATENCY[K_STORE]
                    o_complete[seq] = complete
                else:
                    complete = cycle + _EXEC_LATENCY[kind]
                    o_complete[seq] = complete
                    if kind == K_BRANCH and o_mispred[seq]:
                        # Resolved misprediction: restart the front end.
                        waiting_redirect = False
                        resume = complete + redirect_penalty
                        if resume > stall_until:
                            stall_until = resume
                        last_line = -1
                # Wake the registered dependents with the real latency.
                dependents = o_deps[seq]
                if dependents:
                    for dep in dependents:
                        o_pending[dep] -= 1
                        if complete > o_ready[dep]:
                            o_ready[dep] = complete
                        if not o_pending[dep]:
                            # Last producer issued: the op becomes
                            # visible to the scan, in sequence order.
                            insort(iq_waiting, dep)
                            iq_blocked -= 1
                            wake = o_ready[dep]
                            if wake < iq_min_wake:
                                iq_min_wake = wake
            if prof is not None:
                prof.issue_scan_s += _perf() - _issue_t0
                prof.issue_scans += 1

        # --------------------------- dispatch ----------------------------
        dispatched = 0
        while dispatched < width and fq_begin < fq_end:
            if next_seq - rob_begin >= rob_cap or iq_len >= iq_cap:
                dispatch_stall_cycles += 1
                break
            trace_index = fq_begin
            kind = t_kind[trace_index]
            is_memory = kind == K_LOAD or kind == K_STORE
            if is_memory and len(lsq) >= lsq_cap:
                dispatch_stall_cycles += 1
                break
            fq_begin += 1
            seq = next_seq
            next_seq += 1
            o_kind[seq] = kind
            o_trace[seq] = trace_index
            if t_mispred[trace_index]:
                o_mispred[seq] = 1
            ready = cycle + dispatch_latency
            pending = 0
            src1 = t_src1[trace_index]
            if src1 >= 0:
                producer = rename[src1 % n_regs]
                if producer >= 0:
                    producer_complete = o_complete[producer]
                    if producer_complete >= 0:
                        if producer_complete > ready:
                            ready = producer_complete
                    else:
                        pending += 1
                        producer_deps = o_deps[producer]
                        if producer_deps is None:
                            o_deps[producer] = [seq]
                        else:
                            producer_deps.append(seq)
            src2 = t_src2[trace_index]
            if src2 >= 0:
                producer = rename[src2 % n_regs]
                if producer >= 0:
                    producer_complete = o_complete[producer]
                    if producer_complete >= 0:
                        if producer_complete > ready:
                            ready = producer_complete
                    else:
                        pending += 1
                        producer_deps = o_deps[producer]
                        if producer_deps is None:
                            o_deps[producer] = [seq]
                        else:
                            producer_deps.append(seq)
            o_ready[seq] = ready
            if pending:
                o_pending[seq] = pending
            dest = t_dest[trace_index]
            if dest >= 0:
                rename[dest % n_regs] = seq
            iq_len += 1
            if pending:
                iq_blocked += 1
            else:
                # New sequence numbers are monotonic, so a plain append
                # keeps the waiting list sorted.
                iq_waiting.append(seq)
                if ready < iq_min_wake:
                    iq_min_wake = ready
            if is_memory:
                line = t_addr[trace_index] >> d_offset_bits
                is_store = kind == K_STORE
                lsq.append((seq, is_store, line))
                if is_store:
                    line_queue = store_seqs_by_line.get(line)
                    if line_queue is None:
                        store_seqs_by_line[line] = deque((seq,))
                    else:
                        line_queue.append(seq)
            dispatched += 1

        # ---------------------------- fetch ------------------------------
        # Windowed: between i-cache events (line changes, stalls) the
        # remaining ops of the current line are independent of timing, so
        # they move into the fetch queue as one precomputed slice, with
        # branch statistics read off prefix sums.  Windows never cross a
        # terminating branch (taken or mispredicted) — exactly where the
        # reference's per-op loop stops fetching.
        if not waiting_redirect and cycle >= stall_until:
            if prof is not None:
                _fetch_t0 = _perf()
            fetched = 0
            while fetched < width and fq_end - fq_begin < fetch_queue_size:
                if pushback >= 0:
                    index = pushback
                    pushback = -1
                else:
                    index = fetch_index
                    if index >= t_len:
                        if prof is None:
                            grown = trace.ensure(index)
                        else:
                            _compile_t0 = _perf()
                            grown = trace.ensure(index)
                            _compile_dt = _perf() - _compile_t0
                            prof.compile_s += _compile_dt
                            prof.compiles += 1
                            # Mid-fetch trace growth is compile time;
                            # shift the round's start so the fetch phase
                            # does not absorb it.
                            _fetch_t0 += _compile_dt
                        if grown:
                            t_len = trace.rows
                            trace.extend_fetch_plan(fetch_plan)
                            n_terms = len(t_terms)
                        else:
                            exhausted = True
                            break

                line = p_lines[index]
                if line != last_line:
                    _hit, latency, pre_penalty = l1i_access(
                        t_pc[index], cycle, False, None
                    )
                    last_line = line
                    extra = latency - i_base_latency
                    if pre_penalty > 0:
                        delayed_fetches += 1
                    if extra > 0:
                        # The i-cache could not deliver the block this
                        # cycle: stall and retry the instruction later.
                        icache_stall_cycles += extra
                        stall_until = cycle + extra
                        pushback = index
                        break

                window_end = p_run_end[index]
                budget = width - fetched
                space = fetch_queue_size - (fq_end - fq_begin)
                if space < budget:
                    budget = space
                if window_end > index + budget:
                    window_end = index + budget
                while term_ptr < n_terms and t_terms[term_ptr] < index:
                    term_ptr += 1
                terminated = False
                if term_ptr < n_terms:
                    term_index = t_terms[term_ptr]
                    if term_index < window_end:
                        window_end = term_index + 1
                        terminated = True
                fq_end = window_end
                count = window_end - index
                fetched += count
                fetched_instructions += count
                branches += b_pref[window_end] - b_pref[index]
                branch_mispredictions += m_pref[window_end] - m_pref[index]
                fetch_index = window_end
                if terminated:
                    if t_mispred[window_end - 1]:
                        # No wrong-path fetch: park until the branch resolves.
                        waiting_redirect = True
                    else:
                        # A taken branch ends the fetch block.
                        last_line = -1
                    break
            if prof is not None:
                prof.fetch_s += _perf() - _fetch_t0
                prof.fetch_rounds += 1

        cycle += 1
        if cycle > limit:
            raise RuntimeError(
                "pipeline exceeded the livelock safety bound "
                f"({cycle} cycles for {n_instructions} instructions)"
            )

        # ----------------------- quiet-region skip -----------------------
        # If the coming cycles provably do nothing (nothing to commit,
        # nothing the incremental scheduler can wake, dispatch blocked or
        # starved, fetch stalled), jump straight to the earliest cycle at
        # which any stage can act.  Every skipped cycle with a non-empty
        # fetch queue is a blocked dispatch cycle in the reference model,
        # so the stall counter is charged for the whole window.
        if committed >= n_instructions or (
            exhausted and rob_begin == next_seq and fq_begin == fq_end
        ):
            continue
        if fq_begin < fq_end:
            if next_seq - rob_begin < rob_cap and iq_len < iq_cap:
                head_kind = t_kind[fq_begin]
                if (
                    head_kind != K_LOAD and head_kind != K_STORE
                ) or len(lsq) < lsq_cap:
                    continue  # dispatch acts next cycle: no quiet region
        if prof is not None:
            _quiet_t0 = _perf()
        wake = _NEVER
        if rob_begin < next_seq:
            head_complete = o_complete[rob_begin]
            if head_complete >= 0:
                wake = head_complete
        if iq_waiting and iq_min_wake < wake:
            wake = iq_min_wake
        if (
            not waiting_redirect
            and fq_end - fq_begin < fetch_queue_size
            and (pushback >= 0 or not exhausted)
        ):
            fetch_wake = stall_until if stall_until > cycle else cycle
            if fetch_wake < wake:
                wake = fetch_wake
        if wake > cycle:
            if wake > limit:
                # The reference loop would spin through the quiet region
                # and trip the safety bound at limit + 1.
                raise RuntimeError(
                    "pipeline exceeded the livelock safety bound "
                    f"({limit + 1} cycles for {n_instructions} instructions)"
                )
            if fq_begin < fq_end:
                dispatch_stall_cycles += wake - cycle
            cycle = wake
        if prof is not None:
            prof.quiet_skip_s += _perf() - _quiet_t0
            prof.quiet_skips += 1

    stats.cycles = cycle
    stats.committed_instructions = committed
    stats.fetched_instructions = fetched_instructions
    stats.branch_mispredictions = branch_mispredictions
    stats.branches = branches
    stats.icache_fetch_stall_cycles = icache_stall_cycles
    stats.dcache_access_count = dcache_accesses
    stats.load_replays = replayed_uops
    stats.delayed_loads = delayed_loads
    stats.delayed_fetches = delayed_fetches
    stats.dispatch_stall_cycles = dispatch_stall_cycles
    return cycle


def execute_run_fast(config: SimulationConfig) -> RunResult:
    """Simulate one configuration on the batched fast path, uncached.

    Bit-identical to :func:`repro.sim.engine.execute_run` (the
    differential suite pins this); a module-level function so parallel
    worker processes can execute it directly.  Newly-compiled trace rows
    are persisted to the on-disk cache afterwards, so sibling worker
    processes and later invocations skip the workload generator.
    """
    prof = _obs_profile.active()
    if prof is None:
        trace = compiled_trace_for(config.benchmark, seed=config.seed)
    else:
        prof.runs += 1
        _compile_t0 = _perf()
        trace = compiled_trace_for(config.benchmark, seed=config.seed)
        prof.compile_s += _perf() - _compile_t0
        prof.compiles += 1
    hierarchy_config = config.hierarchy_config()
    memory = MainMemory(
        base_latency=hierarchy_config.memory_latency,
        cycles_per_8_bytes=hierarchy_config.memory_cycles_per_8_bytes,
        line_bytes=hierarchy_config.line_bytes,
    )
    l2 = _FastCache(
        organization=hierarchy_config.l2_organization(),
        name="L2",
        controller=config.l2_controller(),
        next_level=memory,
        mshr_entries=hierarchy_config.mshr_entries,
        base_latency=hierarchy_config.l2_latency,
    )
    l1i = _FastCache(
        organization=hierarchy_config.l1i_organization(),
        name="L1I",
        controller=config.icache_controller(),
        next_level=l2,
        mshr_entries=hierarchy_config.mshr_entries,
        base_latency=hierarchy_config.l1i_latency,
    )
    l1d = _FastCache(
        organization=hierarchy_config.l1d_organization(),
        name="L1D",
        controller=config.dcache_controller(),
        next_level=l2,
        mshr_entries=hierarchy_config.mshr_entries,
        base_latency=hierarchy_config.l1d_latency,
    )
    stats = PipelineStats()
    cycles = _simulate(
        trace, l1i, l1d, config.pipeline_config(), stats, config.n_instructions
    )
    _persist_trace(trace)
    breakdowns = {
        "L1I": l1i.finalize(cycles),
        "L1D": l1d.finalize(cycles),
        "L2": l2.finalize(cycles),
    }
    energy = combine_run_energy(
        breakdowns,
        tech=get_technology(config.feature_size_nm),
        pipeline_stats=stats,
    )
    return RunResult(
        benchmark=config.benchmark,
        dcache_policy=config.dcache.info().name,
        icache_policy=config.icache.info().name,
        feature_size_nm=config.feature_size_nm,
        subarray_bytes=config.subarray_bytes,
        cycles=cycles,
        pipeline=stats,
        energy=energy,
        dcache_miss_ratio=l1d.miss_ratio,
        icache_miss_ratio=l1i.miss_ratio,
        dcache_gaps=l1d.gaps,
        icache_gaps=l1i.gaps,
        dcache_accesses=l1d.accesses,
        icache_accesses=l1i.accesses,
        dcache_delayed_accesses=l1d.precharge_penalties,
        icache_delayed_accesses=l1i.precharge_penalties,
        l2_policy=config.l2.info().name,
        l2_miss_ratio=l2.miss_ratio,
        l2_accesses=l2.accesses,
        l2_writebacks=l2.writebacks,
        l2_delayed_accesses=l2.precharge_penalties,
        l2_gaps=l2.gaps,
    )
