"""Batched fast-path simulation kernel.

:func:`execute_run_fast` produces **bit-identical**
:class:`~repro.sim.metrics.RunResult` objects to the reference
:func:`repro.sim.engine.execute_run`, several times faster.  The speed
comes from restructuring, not from approximating:

* the workload's micro-op stream is **compiled once** into flat parallel
  columns (:class:`CompiledTrace`) — integer arrays for op class, PC,
  registers, addresses and branch outcomes — and cached per
  ``(benchmark, seed)``, so a policy sweep pays the generator cost once
  instead of once per configuration;
* the out-of-order core is driven by a single monolithic kernel
  (:func:`_simulate`) that keeps all in-flight state in parallel integer
  lists instead of per-op objects.  The scheduler is *incremental*: each
  waiting op carries a pending-producer count and a running ready-cycle
  that are updated when a producer issues, so the per-cycle wakeup scan
  degenerates to integer compares — and is skipped entirely on cycles
  where nothing can possibly issue (``iq_min_wake``);
* the cache levels — both L1s *and* the unified L2 — are flat
  tag/LRU/MSHR arrays (:class:`_FastCache`) that delegate *policy
  decisions* to the very same
  :class:`~repro.core.policies.BasePrechargePolicy` objects and
  :class:`~repro.cache.energy_accounting.EnergyLedger` arithmetic the
  reference model uses, in the same call order — which is what makes the
  energy numbers (floating point, order-sensitive) match to the bit.

Every behavioural quirk of the reference model is reproduced on purpose
(monotonic cycle clamping, the i-cache line not being re-probed after a
fetch stall, store-to-load forwarding still probing the cache, MSHR
retry accounting, ...); the differential test suite pins the equality on
a policy x benchmark x subarray-size grid.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.energy_accounting import EnergyBreakdown, EnergyLedger
from repro.cache.hierarchy import MainMemory
from repro.cache.mshr import MSHRFile
from repro.circuits.cacti import CacheOrganization
from repro.circuits.technology import get_technology
from repro.cpu.branch_predictor import DEFAULT_HISTORY_BITS, DEFAULT_TABLE_BITS
from repro.cpu.stats import PipelineStats
from repro.energy.cache_energy import combine_run_energy
from repro.workloads.trace import (
    EXECUTION_LATENCY,
    MicroOp,
    OP_ALU,
    OP_BRANCH,
    OP_FPU,
    OP_LOAD,
    OP_STORE,
)
from repro.workloads.scenarios import workload_identity
from repro.workloads.synthetic import make_workload

from .config import SimulationConfig
from .metrics import RunResult

__all__ = [
    "CompiledTrace",
    "compile_workload",
    "compiled_trace_for",
    "clear_trace_cache",
    "execute_run_fast",
]

# Integer op-class codes used by the columnar trace (list indices into
# _EXEC_LATENCY; the string constants are the public trace vocabulary).
K_ALU, K_FPU, K_LOAD, K_STORE, K_BRANCH = range(5)

_KIND_OF = {OP_ALU: K_ALU, OP_FPU: K_FPU, OP_LOAD: K_LOAD,
            OP_STORE: K_STORE, OP_BRANCH: K_BRANCH}
_OP_OF = (OP_ALU, OP_FPU, OP_LOAD, OP_STORE, OP_BRANCH)

#: Functional-unit latency per op class, derived from the reference
#: table so the two can never drift apart.
_EXEC_LATENCY = tuple(EXECUTION_LATENCY[op] for op in _OP_OF)

#: Column growth quantum when the kernel fetches past the compiled end.
_COMPILE_CHUNK = 8192


class CompiledTrace:
    """A micro-op stream compiled to flat parallel columns.

    Columns are plain lists of small integers (``-1`` encodes ``None``
    for registers/addresses, branch outcomes are 0/1).  The underlying
    iterator is consumed lazily in :data:`_COMPILE_CHUNK`-sized batches,
    so an infinite synthetic stream can back a compiled trace: the
    kernel asks :meth:`ensure` for the indices it is about to fetch.
    """

    __slots__ = ("kind", "pc", "dest", "src1", "src2", "addr", "base",
                 "taken", "target", "rows", "exhausted", "_source", "_lock")

    def __init__(self, source: Iterator[MicroOp]) -> None:
        self._source = iter(source)
        self._lock = threading.Lock()
        self.kind: List[int] = []
        self.pc: List[int] = []
        self.dest: List[int] = []
        self.src1: List[int] = []
        self.src2: List[int] = []
        self.addr: List[int] = []
        self.base: List[int] = []
        self.taken: List[int] = []
        self.target: List[int] = []
        #: Fully-populated row count.  Published only after *all* columns
        #: of a record are appended, so concurrent readers gated on it
        #: never observe a half-written record (``len(self.kind)`` can
        #: run ahead of the other columns mid-append).
        self.rows = 0
        #: True once the source iterator raised StopIteration.
        self.exhausted = False

    def __len__(self) -> int:
        return self.rows

    def ensure(self, index: int) -> bool:
        """Grow the columns until ``index`` exists; False if the stream ended."""
        while index >= self.rows and not self.exhausted:
            with self._lock:
                if index < self.rows or self.exhausted:
                    continue
                self._extend(_COMPILE_CHUNK)
        return index < self.rows

    def _extend(self, count: int) -> None:
        kind = self.kind
        pc = self.pc
        dest = self.dest
        src1 = self.src1
        src2 = self.src2
        addr = self.addr
        base = self.base
        taken = self.taken
        target = self.target
        kind_of = _KIND_OF
        source = self._source
        for _ in range(count):
            try:
                uop = next(source)
            except StopIteration:
                self.exhausted = True
                return
            kind.append(kind_of[uop.op_type])
            pc.append(uop.pc)
            dest.append(-1 if uop.dest is None else uop.dest)
            src1.append(-1 if uop.src1 is None else uop.src1)
            src2.append(-1 if uop.src2 is None else uop.src2)
            addr.append(-1 if uop.address is None else uop.address)
            base.append(-1 if uop.base_address is None else uop.base_address)
            taken.append(1 if uop.taken else 0)
            target.append(-1 if uop.target is None else uop.target)
            self.rows += 1

    # ------------------------------------------------------------------
    def micro_op(self, index: int) -> MicroOp:
        """Reconstruct the :class:`MicroOp` at ``index`` (for round-trips)."""
        if not self.ensure(index):
            raise IndexError(index)

        def opt(column: List[int]) -> Optional[int]:
            value = column[index]
            return None if value < 0 else value

        return MicroOp(
            op_type=_OP_OF[self.kind[index]],
            pc=self.pc[index],
            dest=opt(self.dest),
            src1=opt(self.src1),
            src2=opt(self.src2),
            address=opt(self.addr),
            base_address=opt(self.base),
            taken=bool(self.taken[index]),
            target=opt(self.target),
        )


def compile_workload(benchmark: str, seed: int = 1) -> CompiledTrace:
    """Compile a named workload's stream into a fresh columnar trace."""
    return CompiledTrace(make_workload(benchmark, seed=seed).instructions())


# ----------------------------------------------------------------------
# Process-level compiled-trace cache: a fast-path sweep compiles each
# (benchmark, seed) stream once and drives every policy/technology
# configuration from the same columns.
# ----------------------------------------------------------------------
_TRACE_CACHE: "Dict[Tuple, CompiledTrace]" = {}
_TRACE_CACHE_LOCK = threading.Lock()
#: Covers the full sixteen-benchmark suite plus scenario composites, so
#: a complete policy x benchmark cross-product compiles each trace once.
_TRACE_CACHE_MAX = 24


def _trace_cache_key(benchmark: str, seed: int) -> Tuple:
    """Cache key for one seeded workload name.

    ``trace:`` names additionally key on the file's identity (resolved
    path, mtime, size), so re-recording a trace file is picked up
    instead of silently replaying the stale compiled columns.  (A
    missing file keys by name; compilation then raises the proper
    "trace file not found" error.)
    """
    identity = workload_identity(benchmark)
    if identity is not None:
        return identity + (seed,)
    return (benchmark, seed)


def compiled_trace_for(benchmark: str, seed: int = 1) -> CompiledTrace:
    """The (cached) compiled trace of one seeded workload."""
    key = _trace_cache_key(benchmark, seed)
    with _TRACE_CACHE_LOCK:
        trace = _TRACE_CACHE.get(key)
        if trace is None:
            trace = compile_workload(benchmark, seed=seed)
            while len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
                _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
            _TRACE_CACHE[key] = trace
        return trace


def clear_trace_cache() -> None:
    """Drop every cached compiled trace (tests use this for isolation)."""
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE.clear()


class _FastCache:
    """Flat-array cache level, behaviourally identical to the reference model.

    Tag match, LRU victim selection and statistics are inlined over
    parallel per-set lists; the precharge policy and the energy ledger
    are the same objects the reference path uses, called in the same
    order with the same arguments.  One class serves every level: the
    L1s are wired to the shared flat L2, the L2 to the
    :class:`~repro.cache.hierarchy.MainMemory` model (misses below a
    fast next level consume its returned latency directly; a non-fast
    next level is consulted through the reference ``AccessResult``
    protocol).
    """

    __slots__ = (
        "organization", "name", "base_latency", "controller", "next_level",
        "mshrs", "ledger", "_tags", "_lines", "_dirty", "_last_used",
        "_sub_last", "gaps", "accesses", "hits", "misses", "writebacks",
        "precharge_penalties", "penalty_cycles", "_last_cycle",
        "_offset_bits", "_n_sets", "_assoc", "_sets_per_subarray",
        "_next_is_fast",
    )

    def __init__(
        self,
        organization: CacheOrganization,
        name: str,
        controller,
        next_level,
        mshr_entries: int,
        base_latency: int,
    ) -> None:
        self.organization = organization
        self.name = name
        self.base_latency = base_latency
        self.controller = controller
        self.next_level = next_level
        self._next_is_fast = isinstance(next_level, _FastCache)
        self.mshrs = MSHRFile(mshr_entries)
        n_sets = organization.n_sets
        assoc = organization.associativity
        self._n_sets = n_sets
        self._assoc = assoc
        self._offset_bits = organization.offset_bits
        self._sets_per_subarray = organization.sets_per_subarray
        # -1 tags mark invalid ways (real tags are non-negative).
        self._tags = [[-1] * assoc for _ in range(n_sets)]
        #: Original (pre-remap) line address per way, for writebacks.
        self._lines = [[-1] * assoc for _ in range(n_sets)]
        self._dirty = [[False] * assoc for _ in range(n_sets)]
        self._last_used = [[0] * assoc for _ in range(n_sets)]
        self._sub_last = [-1] * organization.n_subarrays
        #: Inter-access subarray gaps in observation order (the reference
        #: tracker's ``access_gaps()``).
        self.gaps: List[int] = []
        self.ledger = EnergyLedger(organization.subarray, organization.n_subarrays)
        self.controller.attach(organization, self.ledger)
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.precharge_penalties = 0
        self.penalty_cycles = 0
        self._last_cycle = 0

    # ------------------------------------------------------------------
    def access(
        self, address: int, cycle: int, write: bool, base_address: Optional[int]
    ) -> Tuple[bool, int, int]:
        """One access; returns ``(hit, latency, precharge_penalty)``."""
        if cycle < self._last_cycle:
            cycle = self._last_cycle
        else:
            self._last_cycle = cycle
        self.accesses += 1

        line = address >> self._offset_bits
        n_sets = self._n_sets
        raw_set = line % n_sets
        tag = line // n_sets
        set_index = self.controller.remap_set(raw_set, n_sets)
        subarray = set_index // self._sets_per_subarray

        previous = self._sub_last[subarray]
        if previous >= 0:
            self.gaps.append(cycle - previous if cycle > previous else 0)
        self._sub_last[subarray] = cycle
        self.ledger.note_access(subarray)

        penalty = self.controller.access(
            subarray, cycle, base_address=base_address, address=address
        )
        if penalty > 0:
            self.precharge_penalties += 1
            self.penalty_cycles += penalty

        tags = self._tags[set_index]
        hit_way = -1
        for way in range(self._assoc):
            if tags[way] == tag:
                hit_way = way
                break

        latency = self.base_latency + penalty
        if hit_way >= 0:
            self._last_used[set_index][hit_way] = cycle
            if write:
                self._dirty[set_index][hit_way] = True
            self.hits += 1
            hit = True
        else:
            self.misses += 1
            hit = False
            latency += self._service_miss(address, cycle)
            victim = -1
            for way in range(self._assoc):
                if tags[way] < 0:
                    victim = way
                    break
            if victim < 0:
                last_used = self._last_used[set_index]
                victim = 0
                oldest = last_used[0]
                for way in range(1, self._assoc):
                    if last_used[way] < oldest:
                        oldest = last_used[way]
                        victim = way
            if tags[victim] >= 0 and self._dirty[set_index][victim]:
                self.writebacks += 1
                # Drain the dirty victim to the next level (same point in
                # the access sequence as the reference model: after the
                # fill request, before the overwrite).  The recorded
                # pre-remap line address is used, like the reference.
                wb_address = self._lines[set_index][victim] << self._offset_bits
                if self._next_is_fast:
                    self.next_level.access(wb_address, cycle, True, None)
                else:
                    self.next_level.access(wb_address, cycle, write=True)
            tags[victim] = tag
            self._lines[set_index][victim] = line
            self._dirty[set_index][victim] = write
            self._last_used[set_index][victim] = cycle

        self.controller.note_outcome(hit, cycle)
        return hit, latency, penalty

    def _service_miss(self, address: int, cycle: int) -> int:
        line_addr = address >> self._offset_bits
        existing = self.mshrs.outstanding(line_addr)
        if existing is not None:
            return max(1, existing.ready_cycle - cycle)

        if self._next_is_fast:
            service = self.next_level.access(address, cycle, False, None)[1]
        else:
            service = self.next_level.access(address, cycle).latency

        self.mshrs.retire_completed(cycle)
        entry = self.mshrs.allocate(line_addr, ready_cycle=cycle + service)
        if entry is None:
            earliest = self.mshrs.earliest_ready_cycle()
            stall = max(1, (earliest - cycle)) if earliest is not None else 1
            service += stall
            self.mshrs.retire_completed(cycle + stall)
            self.mshrs.allocate(line_addr, ready_cycle=cycle + service)
        return service

    # ------------------------------------------------------------------
    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def finalize(self, end_cycle: int) -> EnergyBreakdown:
        self.controller.finalize(end_cycle)
        return self.ledger.breakdown(max(1, end_cycle))


def _simulate(
    trace: CompiledTrace,
    l1i: _FastCache,
    l1d: _FastCache,
    pipeline_config,
    stats: PipelineStats,
    n_instructions: int,
) -> int:
    """Run the flat-array out-of-order kernel; returns the final cycle."""
    if n_instructions < 1:
        raise ValueError("must simulate at least one instruction")

    # Trace columns (the lists grow in place, so aliases stay valid).
    t_kind = trace.kind
    t_pc = trace.pc
    t_dest = trace.dest
    t_src1 = trace.src1
    t_src2 = trace.src2
    t_addr = trace.addr
    t_base = trace.base
    t_taken = trace.taken
    t_len = trace.rows

    # Machine parameters.
    width = pipeline_config.width
    rob_cap = pipeline_config.rob_entries
    iq_cap = pipeline_config.issue_queue_entries
    lsq_cap = pipeline_config.lsq_entries
    memory_ports = pipeline_config.memory_ports
    fetch_queue_size = pipeline_config.fetch_queue_size
    dispatch_latency = pipeline_config.dispatch_latency
    redirect_penalty = pipeline_config.redirect_penalty
    n_regs = pipeline_config.max_registers
    spec_latency = l1d.base_latency + pipeline_config.speculative_extra_latency
    limit = n_instructions * pipeline_config.max_cycles_per_instruction
    d_offset_bits = l1d._offset_bits
    d_base_latency = l1d.base_latency
    i_offset_bits = l1i._offset_bits
    i_base_latency = l1i.base_latency
    l1d_access = l1d.access
    l1i_access = l1i.access

    # Per-in-flight-op parallel arrays, indexed by sequence number.
    o_kind: List[int] = []
    o_trace: List[int] = []        # trace index of the op
    o_complete: List[int] = []     # -1 while not issued
    o_ready: List[int] = []        # running max of earliest / producer completes
    o_pending: List[int] = []      # producers not yet issued
    o_in_iq: List[bool] = []
    o_mispred: List[int] = []
    o_deps: List[List[int]] = []   # dependents registered while incomplete

    rename = [-1] * n_regs
    rob: "deque[int]" = deque()
    lsq: "deque[Tuple[int, bool, int]]" = deque()  # (sequence, is_store, line)
    iq: List[int] = []
    #: Earliest cycle any currently-waiting op could issue; the wakeup
    #: scan is skipped while cycle < iq_min_wake (batched scheduling).
    iq_min_wake = 1 << 60

    # Fetch state.
    fq: "deque[int]" = deque()     # trace_index * 2 + mispredicted
    fetch_index = 0
    pushback = -1
    stall_until = 0
    waiting_redirect = False
    last_line = -1
    exhausted = False

    # Inline combination predictor (the reference model's default sizes).
    table_mask = (1 << DEFAULT_TABLE_BITS) - 1
    history_mask = (1 << DEFAULT_HISTORY_BITS) - 1
    bimodal = [1] * (table_mask + 1)
    gshare = [1] * (table_mask + 1)
    chooser = [1] * (table_mask + 1)
    global_history = 0

    # Counters.
    cycle = 0
    next_seq = 0
    committed = 0
    fetched_instructions = 0
    branches = 0
    branch_mispredictions = 0
    icache_stall_cycles = 0
    dcache_accesses = 0
    replayed_uops = 0
    delayed_loads = 0
    delayed_fetches = 0
    dispatch_stall_cycles = 0

    while committed < n_instructions:
        if exhausted and not rob and not fq:
            break

        # ---------------------------- commit ----------------------------
        retired = 0
        while retired < width and rob:
            head = rob[0]
            complete = o_complete[head]
            if complete < 0 or complete > cycle:
                break
            rob.popleft()
            retired += 1
        committed += retired
        bound = rob[0] if rob else next_seq
        while lsq and lsq[0][0] < bound:
            lsq.popleft()

        # ---------------------------- issue -----------------------------
        if iq and cycle >= iq_min_wake:
            selected: List[int] = []
            remaining: List[int] = []
            next_wake = 1 << 60
            memory_used = 0
            n_selected = 0
            for seq in iq:
                if n_selected >= width or o_pending[seq]:
                    remaining.append(seq)
                    continue
                ready = o_ready[seq]
                if ready > cycle:
                    remaining.append(seq)
                    if ready < next_wake:
                        next_wake = ready
                    continue
                kind = o_kind[seq]
                if kind == K_LOAD or kind == K_STORE:
                    if memory_used >= memory_ports:
                        remaining.append(seq)
                        next_wake = cycle + 1
                        continue
                    memory_used += 1
                selected.append(seq)
                n_selected += 1
            if n_selected >= width and remaining:
                # Width-limited: anything left may be issuable next cycle.
                next_wake = cycle + 1
            iq = remaining
            iq_min_wake = next_wake
            for seq in selected:
                o_in_iq[seq] = False
            for seq in selected:
                kind = o_kind[seq]
                trace_index = o_trace[seq]
                if kind == K_LOAD:
                    dcache_accesses += 1
                    address = t_addr[trace_index]
                    hit, latency, pre_penalty = l1d_access(
                        address, cycle, False, t_base[trace_index]
                    )
                    if pre_penalty > 0:
                        delayed_loads += 1
                    line = address >> d_offset_bits
                    for other_seq, other_store, other_line in lsq:
                        if other_seq >= seq:
                            break
                        if other_store and other_line == line:
                            if d_base_latency < latency:
                                latency = d_base_latency
                            break
                    complete = cycle + latency
                    if latency > spec_latency:
                        # Load-hit misspeculation: selectively replay the
                        # dependents still waiting in the scheduler.
                        dependents = o_deps[seq]
                        if dependents:
                            counted_twice = 0
                            matched = 0
                            previous_dep = -1
                            for dep in dependents:
                                if o_in_iq[dep]:
                                    matched += 1
                                    if dep == previous_dep:
                                        counted_twice += 1
                                previous_dep = dep
                            replayed_uops += matched - counted_twice
                    o_complete[seq] = complete
                elif kind == K_STORE:
                    dcache_accesses += 1
                    l1d_access(
                        t_addr[trace_index], cycle, True, t_base[trace_index]
                    )
                    # Stores complete once sent to the LSQ; the write
                    # drains in the background.
                    complete = cycle + _EXEC_LATENCY[K_STORE]
                    o_complete[seq] = complete
                else:
                    complete = cycle + _EXEC_LATENCY[kind]
                    o_complete[seq] = complete
                    if kind == K_BRANCH and o_mispred[seq]:
                        # Resolved misprediction: restart the front end.
                        waiting_redirect = False
                        resume = complete + redirect_penalty
                        if resume > stall_until:
                            stall_until = resume
                        last_line = -1
                # Wake the registered dependents with the real latency.
                dependents = o_deps[seq]
                if dependents:
                    for dep in dependents:
                        o_pending[dep] -= 1
                        if complete > o_ready[dep]:
                            o_ready[dep] = complete
                        if not o_pending[dep]:
                            wake = o_ready[dep]
                            if wake < iq_min_wake:
                                iq_min_wake = wake

        # --------------------------- dispatch ----------------------------
        dispatched = 0
        while dispatched < width and fq:
            if len(rob) >= rob_cap or len(iq) >= iq_cap:
                dispatch_stall_cycles += 1
                break
            entry = fq[0]
            trace_index = entry >> 1
            kind = t_kind[trace_index]
            is_memory = kind == K_LOAD or kind == K_STORE
            if is_memory and len(lsq) >= lsq_cap:
                dispatch_stall_cycles += 1
                break
            fq.popleft()
            seq = next_seq
            next_seq += 1
            o_kind.append(kind)
            o_trace.append(trace_index)
            o_complete.append(-1)
            o_mispred.append(entry & 1)
            o_in_iq.append(True)
            o_deps.append([])
            ready = cycle + dispatch_latency
            pending = 0
            src1 = t_src1[trace_index]
            if src1 >= 0:
                producer = rename[src1 % n_regs]
                if producer >= 0:
                    producer_complete = o_complete[producer]
                    if producer_complete >= 0:
                        if producer_complete > ready:
                            ready = producer_complete
                    else:
                        pending += 1
                        o_deps[producer].append(seq)
            src2 = t_src2[trace_index]
            if src2 >= 0:
                producer = rename[src2 % n_regs]
                if producer >= 0:
                    producer_complete = o_complete[producer]
                    if producer_complete >= 0:
                        if producer_complete > ready:
                            ready = producer_complete
                    else:
                        pending += 1
                        o_deps[producer].append(seq)
            o_ready.append(ready)
            o_pending.append(pending)
            dest = t_dest[trace_index]
            if dest >= 0:
                rename[dest % n_regs] = seq
            rob.append(seq)
            iq.append(seq)
            if not pending and ready < iq_min_wake:
                iq_min_wake = ready
            if is_memory:
                lsq.append((seq, kind == K_STORE, t_addr[trace_index] >> d_offset_bits))
            dispatched += 1

        # ---------------------------- fetch ------------------------------
        if not waiting_redirect and cycle >= stall_until:
            fetched = 0
            while fetched < width and len(fq) < fetch_queue_size:
                if pushback >= 0:
                    trace_index = pushback
                    pushback = -1
                else:
                    trace_index = fetch_index
                    if trace_index >= t_len:
                        if trace.ensure(trace_index):
                            t_len = trace.rows
                        else:
                            exhausted = True
                            break
                    fetch_index += 1

                pc = t_pc[trace_index]
                line = pc >> i_offset_bits
                if line != last_line:
                    _hit, latency, pre_penalty = l1i_access(pc, cycle, False, None)
                    last_line = line
                    extra = latency - i_base_latency
                    if pre_penalty > 0:
                        delayed_fetches += 1
                    if extra > 0:
                        # The i-cache could not deliver the block this
                        # cycle: stall and retry the instruction later.
                        icache_stall_cycles += extra
                        stall_until = cycle + extra
                        pushback = trace_index
                        break

                kind = t_kind[trace_index]
                mispredicted = 0
                if kind == K_BRANCH:
                    branches += 1
                    taken = t_taken[trace_index]
                    pc_bits = pc >> 2
                    bimodal_index = pc_bits & table_mask
                    gshare_index = (pc_bits ^ (global_history & history_mask)) & table_mask
                    bimodal_value = bimodal[bimodal_index]
                    gshare_value = gshare[gshare_index]
                    bimodal_pred = bimodal_value >= 2
                    gshare_pred = gshare_value >= 2
                    if chooser[bimodal_index] >= 2:
                        prediction = gshare_pred
                    else:
                        prediction = bimodal_pred
                    if taken:
                        if bimodal_value < 3:
                            bimodal[bimodal_index] = bimodal_value + 1
                        if gshare_value < 3:
                            gshare[gshare_index] = gshare_value + 1
                    else:
                        if bimodal_value > 0:
                            bimodal[bimodal_index] = bimodal_value - 1
                        if gshare_value > 0:
                            gshare[gshare_index] = gshare_value - 1
                    if bimodal_pred != gshare_pred:
                        chooser_value = chooser[bimodal_index]
                        if gshare_pred == bool(taken):
                            if chooser_value < 3:
                                chooser[bimodal_index] = chooser_value + 1
                        elif chooser_value > 0:
                            chooser[bimodal_index] = chooser_value - 1
                    global_history = ((global_history << 1) | taken) & 0xFFFFFFFF
                    if prediction != bool(taken):
                        mispredicted = 1
                        branch_mispredictions += 1

                fq.append(trace_index * 2 + mispredicted)
                fetched_instructions += 1
                fetched += 1

                if kind == K_BRANCH:
                    if mispredicted:
                        # No wrong-path fetch: park until the branch resolves.
                        waiting_redirect = True
                        break
                    if t_taken[trace_index]:
                        # A taken branch ends the fetch block.
                        last_line = -1
                        break

        cycle += 1
        if cycle > limit:
            raise RuntimeError(
                "pipeline exceeded the livelock safety bound "
                f"({cycle} cycles for {n_instructions} instructions)"
            )

    stats.cycles = cycle
    stats.committed_instructions = committed
    stats.fetched_instructions = fetched_instructions
    stats.branch_mispredictions = branch_mispredictions
    stats.branches = branches
    stats.icache_fetch_stall_cycles = icache_stall_cycles
    stats.dcache_access_count = dcache_accesses
    stats.load_replays = replayed_uops
    stats.delayed_loads = delayed_loads
    stats.delayed_fetches = delayed_fetches
    stats.dispatch_stall_cycles = dispatch_stall_cycles
    return cycle


def execute_run_fast(config: SimulationConfig) -> RunResult:
    """Simulate one configuration on the batched fast path, uncached.

    Bit-identical to :func:`repro.sim.engine.execute_run` (the
    differential suite pins this); a module-level function so parallel
    worker processes can execute it directly.
    """
    trace = compiled_trace_for(config.benchmark, seed=config.seed)
    hierarchy_config = config.hierarchy_config()
    memory = MainMemory(
        base_latency=hierarchy_config.memory_latency,
        cycles_per_8_bytes=hierarchy_config.memory_cycles_per_8_bytes,
        line_bytes=hierarchy_config.line_bytes,
    )
    l2 = _FastCache(
        organization=hierarchy_config.l2_organization(),
        name="L2",
        controller=config.l2_controller(),
        next_level=memory,
        mshr_entries=hierarchy_config.mshr_entries,
        base_latency=hierarchy_config.l2_latency,
    )
    l1i = _FastCache(
        organization=hierarchy_config.l1i_organization(),
        name="L1I",
        controller=config.icache_controller(),
        next_level=l2,
        mshr_entries=hierarchy_config.mshr_entries,
        base_latency=hierarchy_config.l1i_latency,
    )
    l1d = _FastCache(
        organization=hierarchy_config.l1d_organization(),
        name="L1D",
        controller=config.dcache_controller(),
        next_level=l2,
        mshr_entries=hierarchy_config.mshr_entries,
        base_latency=hierarchy_config.l1d_latency,
    )
    stats = PipelineStats()
    cycles = _simulate(
        trace, l1i, l1d, config.pipeline_config(), stats, config.n_instructions
    )
    breakdowns = {
        "L1I": l1i.finalize(cycles),
        "L1D": l1d.finalize(cycles),
        "L2": l2.finalize(cycles),
    }
    energy = combine_run_energy(
        breakdowns,
        tech=get_technology(config.feature_size_nm),
        pipeline_stats=stats,
    )
    return RunResult(
        benchmark=config.benchmark,
        dcache_policy=config.dcache.info().name,
        icache_policy=config.icache.info().name,
        feature_size_nm=config.feature_size_nm,
        subarray_bytes=config.subarray_bytes,
        cycles=cycles,
        pipeline=stats,
        energy=energy,
        dcache_miss_ratio=l1d.miss_ratio,
        icache_miss_ratio=l1i.miss_ratio,
        dcache_gaps=l1d.gaps,
        icache_gaps=l1i.gaps,
        dcache_accesses=l1d.accesses,
        icache_accesses=l1i.accesses,
        dcache_delayed_accesses=l1d.precharge_penalties,
        icache_delayed_accesses=l1i.precharge_penalties,
        l2_policy=config.l2.info().name,
        l2_miss_ratio=l2.miss_ratio,
        l2_accesses=l2.accesses,
        l2_writebacks=l2.writebacks,
        l2_delayed_accesses=l2.precharge_penalties,
        l2_gaps=l2.gaps,
    )
