"""Run one benchmark under one configuration.

This is the equivalent of the paper's "architectural simulation" step: it
wires a synthetic workload, the memory hierarchy with its precharge
policies and the out-of-order pipeline together, runs a fixed number of
micro-ops, and collects timing, cache and energy results into a
:class:`~repro.sim.metrics.RunResult`.

Results are memoised per configuration within a process (the experiment
modules ask for the same baseline run many times).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.hierarchy import MemoryHierarchy
from repro.circuits.technology import get_technology
from repro.energy.cache_energy import combine_run_energy
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.workloads.synthetic import make_workload

from .config import SimulationConfig
from .metrics import RunResult

__all__ = ["run_simulation", "clear_run_cache"]

_RUN_CACHE: Dict[Tuple, RunResult] = {}


def _cache_key(config: SimulationConfig) -> Tuple:
    return (
        config.benchmark,
        config.dcache_policy,
        config.icache_policy,
        config.feature_size_nm,
        config.subarray_bytes,
        config.dcache_threshold if "gated" in config.dcache_policy else None,
        config.icache_threshold if "gated" in config.icache_policy else None,
        config.n_instructions,
        config.seed,
        config.pipeline,
    )


def clear_run_cache() -> None:
    """Drop every memoised run (tests use this for isolation)."""
    _RUN_CACHE.clear()


def run_simulation(config: SimulationConfig, use_cache: bool = True) -> RunResult:
    """Simulate one configuration and return its results.

    Args:
        config: The full run description.
        use_cache: Reuse a previous identical run when available.
    """
    key = _cache_key(config)
    if use_cache and key in _RUN_CACHE:
        return _RUN_CACHE[key]

    workload = make_workload(config.benchmark, seed=config.seed)
    dcache_controller = config.dcache_controller()
    icache_controller = config.icache_controller()
    hierarchy = MemoryHierarchy(
        config=config.hierarchy_config(),
        icache_controller=icache_controller,
        dcache_controller=dcache_controller,
    )
    pipeline = OutOfOrderPipeline(
        hierarchy=hierarchy,
        instruction_stream=workload.instructions(),
        config=config.pipeline_config(),
    )
    stats = pipeline.run(config.n_instructions)
    breakdowns = hierarchy.finalize(pipeline.cycle)
    energy = combine_run_energy(
        breakdowns,
        tech=get_technology(config.feature_size_nm),
        pipeline_stats=stats,
    )

    result = RunResult(
        benchmark=config.benchmark,
        dcache_policy=config.dcache_policy,
        icache_policy=config.icache_policy,
        feature_size_nm=config.feature_size_nm,
        subarray_bytes=config.subarray_bytes,
        cycles=pipeline.cycle,
        pipeline=stats,
        energy=energy,
        dcache_miss_ratio=hierarchy.l1d.miss_ratio,
        icache_miss_ratio=hierarchy.l1i.miss_ratio,
        dcache_gaps=hierarchy.l1d.tracker.access_gaps(),
        icache_gaps=hierarchy.l1i.tracker.access_gaps(),
        dcache_accesses=hierarchy.l1d.accesses,
        icache_accesses=hierarchy.l1i.accesses,
        dcache_delayed_accesses=hierarchy.l1d.precharge_penalties,
        icache_delayed_accesses=hierarchy.l1i.precharge_penalties,
    )
    if use_cache:
        _RUN_CACHE[key] = result
    return result
