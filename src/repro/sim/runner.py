"""Module-level convenience API over the default :class:`SimEngine`.

Kept for backwards compatibility (and because one shared memoising
engine per process is the right default for the experiment modules):
:func:`run_simulation` and :func:`clear_run_cache` delegate to
:func:`repro.sim.engine.default_engine`.  Code that needs scoped caching,
on-disk persistence or parallel fan-out should construct its own
:class:`~repro.sim.engine.SimEngine`.
"""

from __future__ import annotations

from typing import Optional

from .config import SimulationConfig
from .engine import default_engine
from .metrics import RunResult

__all__ = ["run_simulation", "clear_run_cache"]


def run_simulation(
    config: SimulationConfig,
    use_cache: bool = True,
    fast: Optional[bool] = None,
) -> RunResult:
    """Simulate one configuration on the default engine.

    Args:
        config: The full run description.
        use_cache: Reuse a previous identical run when available.
        fast: Execute on the batched fast-path kernel (bit-identical
            results); ``None`` keeps the default engine's setting.
    """
    return default_engine().run(config, use_cache=use_cache, fast=fast)


def clear_run_cache() -> None:
    """Drop every memoised run (tests use this for isolation)."""
    default_engine().clear()
