"""Synthetic benchmark workloads.

A :class:`SyntheticWorkload` turns a
:class:`~repro.workloads.characteristics.BenchmarkCharacteristics` record
into a deterministic stream of :class:`~repro.workloads.trace.MicroOp`
records.  The stream reproduces the properties the paper's evaluation is
sensitive to:

* program phases that move the hot data/code regions around (subarray
  reference locality that changes over the instruction stream);
* a mixture of strided streaming and pointer chasing, with the footprint
  and hot-region parameters controlling the cache miss ratio;
* realistic register dependence chains, so that delayed loads actually
  delay dependent instructions (load-hit speculation, Section 6.3);
* displacement addressing with mostly small displacements, so the
  predecoding accuracy of Section 6.3 is an emergent property;
* biased, mostly predictable branches closing loop bodies over the hot
  code region.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator, List, Optional

from .characteristics import BenchmarkCharacteristics, get_benchmark
from .generators import CodeWalker, HotColdRegion, PointerChase, StridedStream
from .trace import (
    MicroOp,
    OP_ALU,
    OP_BRANCH,
    OP_FPU,
    OP_LOAD,
    OP_STORE,
)

__all__ = ["WorkloadBase", "SyntheticWorkload", "make_workload"]

#: Architectural register count (Table 2: 128 physical registers; we use
#: a 64-entry architectural space and assume ideal renaming).
N_REGISTERS = 64

#: Base virtual address of the data segment.
_DATA_BASE = 0x1000_0000

#: Base virtual address of the code segment.
_CODE_BASE = 0x0040_0000

#: Base virtual address of the stack (grows within a small hot window).
_STACK_BASE = 0x7FFF_0000

#: How many recently used data addresses are candidates for temporal reuse.
_REUSE_WINDOW = 32

#: Probability that a source operand comes from a recently produced value
#: (creates the short dependence chains that make load latency visible).
_RECENT_DEPENDENCE_PROBABILITY = 0.5

#: Probability that a source operand is the most recent load's result —
#: load-to-use chains are short in real integer code, which is what makes
#: the L1 load-to-use latency performance-critical (Section 5).
_LOAD_USE_PROBABILITY = 0.35

#: How many recently written registers are candidates for dependences.
_RECENT_WINDOW = 8

#: Small displacements stay within a few hundred bytes of the base
#: register, hence almost always within the base register's subarray.
_SMALL_DISPLACEMENT_LIMIT = 256


class WorkloadBase:
    """The workload protocol every stream source implements.

    A workload provides ``instructions()`` (a deterministic micro-op
    iterator) and ``generate()``; synthetic benchmarks, scenario
    composites and trace-file replays all share this base so consumers
    (the two simulation paths, the engine-bypassing experiments, trace
    recording) see one contract.
    """

    def instructions(self) -> Iterator[MicroOp]:  # pragma: no cover - abstract
        raise NotImplementedError

    def generate(self, n_instructions: int) -> List[MicroOp]:
        """Materialise the next ``n_instructions`` micro-ops as a list."""
        if n_instructions < 0:
            raise ValueError("n_instructions must be non-negative")
        stream = self.instructions()
        return [next(stream) for _ in range(n_instructions)]


class SyntheticWorkload(WorkloadBase):
    """Deterministic micro-op stream for one synthetic benchmark."""

    def __init__(self, characteristics: BenchmarkCharacteristics, seed: int = 1) -> None:
        self.characteristics = characteristics
        self.seed = seed
        # zlib.crc32 rather than hash(): str hashing is randomised per
        # interpreter process, which would make the "same" seeded workload
        # differ across processes — breaking parallel-vs-serial equality
        # and on-disk result-store resumption.
        name_digest = zlib.crc32(characteristics.name.encode("utf-8"))
        self._rng = random.Random((name_digest & 0xFFFF) ^ seed)
        ch = characteristics

        self._data_region = HotColdRegion(
            base=_DATA_BASE, size=ch.data_footprint_bytes,
            hot_fraction=ch.hot_data_fraction,
        )
        self._code = CodeWalker(
            base=_CODE_BASE, size=ch.instr_footprint_bytes,
            hot_fraction=ch.hot_code_fraction, rng=self._rng,
        )
        self._hot_stride = StridedStream(
            base=self._data_region.hot_base,
            size=self._data_region.hot_size,
            stride=ch.stride_bytes,
        )
        self._cold_stride = StridedStream(
            base=_DATA_BASE, size=ch.data_footprint_bytes, stride=ch.stride_bytes,
        )
        self._instructions_emitted = 0
        self._phase_index = 0
        self._recent_dests: List[int] = []
        self._next_dest = 1
        self._last_load_dest: Optional[int] = None
        self._recent_addresses: List[int] = []
        self._stack_base = _STACK_BASE
        self._branch_bias: dict = {}
        self._pc_op_type: dict = {}
        self._pc_access_profile: dict = {}

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.characteristics.name

    # ------------------------------------------------------------------
    # Phase management
    # ------------------------------------------------------------------
    def _maybe_advance_phase(self) -> None:
        ch = self.characteristics
        phase = (self._instructions_emitted // ch.phase_instructions) % ch.n_phases
        if phase != self._phase_index:
            self._phase_index = phase
            self._data_region.move_phase(phase, ch.n_phases)
            self._code.move_phase(phase, ch.n_phases)
            self._hot_stride = StridedStream(
                base=self._data_region.hot_base,
                size=self._data_region.hot_size,
                stride=ch.stride_bytes,
            )

    # ------------------------------------------------------------------
    # Register dependences
    # ------------------------------------------------------------------
    def _pick_source(self) -> Optional[int]:
        roll = self._rng.random()
        if self._last_load_dest is not None and roll < _LOAD_USE_PROBABILITY:
            return self._last_load_dest
        if (
            self._recent_dests
            and roll < _LOAD_USE_PROBABILITY + _RECENT_DEPENDENCE_PROBABILITY
        ):
            return self._rng.choice(self._recent_dests)
        return self._rng.randrange(N_REGISTERS)

    def _allocate_dest(self) -> int:
        dest = self._next_dest
        self._next_dest = (self._next_dest + 1) % N_REGISTERS or 1
        self._recent_dests.append(dest)
        if len(self._recent_dests) > _RECENT_WINDOW:
            self._recent_dests.pop(0)
        return dest

    # ------------------------------------------------------------------
    # Per-PC stable behaviour
    # ------------------------------------------------------------------
    def _op_type_for_pc(self, pc: int) -> str:
        """Deterministic operation class of the static instruction at ``pc``.

        Real loops re-execute the same static instructions, so the class of
        the instruction at a given address never changes; the mix follows
        the benchmark's instruction-mix fractions across distinct PCs.
        """
        cached = self._pc_op_type.get(pc)
        if cached is not None:
            return cached
        ch = self.characteristics
        roll = self._rng.random()
        if roll < ch.load_fraction:
            op_type = OP_LOAD
        elif roll < ch.load_fraction + ch.store_fraction:
            op_type = OP_STORE
        elif roll < ch.load_fraction + ch.store_fraction + ch.fp_fraction:
            op_type = OP_FPU
        elif (
            roll
            < ch.load_fraction + ch.store_fraction + ch.fp_fraction
            + ch.branch_fraction
        ):
            op_type = OP_BRANCH
        else:
            op_type = OP_ALU
        self._pc_op_type[pc] = op_type
        return op_type

    def _access_profile_for_pc(self, pc: int) -> str:
        """Which kind of data region the static memory instruction targets."""
        cached = self._pc_access_profile.get(pc)
        if cached is not None:
            return cached
        ch = self.characteristics
        rng = self._rng
        if rng.random() < ch.stack_access_fraction:
            profile = "stack"
        else:
            in_hot = rng.random() < ch.hot_access_probability
            chase = rng.random() < ch.pointer_chase_fraction
            if in_hot:
                profile = "hot-chase" if chase else "hot-stride"
            else:
                profile = "cold-chase" if chase else "cold-stride"
        self._pc_access_profile[pc] = profile
        return profile

    # ------------------------------------------------------------------
    # Memory addresses
    # ------------------------------------------------------------------
    def _next_data_address(self, pc: int) -> int:
        ch = self.characteristics
        rng = self._rng
        profile = self._access_profile_for_pc(pc)

        if profile == "stack":
            offset = rng.randrange(0, max(8, ch.stack_bytes), 8)
            return self._stack_base + offset

        # Temporal reuse of a recently touched heap address.
        if self._recent_addresses and rng.random() < ch.reuse_probability:
            return rng.choice(self._recent_addresses)

        if profile in ("hot-chase", "cold-chase"):
            base, size = (
                self._data_region.hot_bounds() if profile == "hot-chase"
                else self._data_region.cold_bounds()
            )
            chase = PointerChase(base=base, size=size, rng=rng,
                                 granule=max(8, ch.stride_bytes))
            address = chase.next_address()
        else:
            stream = (
                self._hot_stride if profile == "hot-stride" else self._cold_stride
            )
            address = stream.next_address()

        self._recent_addresses.append(address)
        if len(self._recent_addresses) > _REUSE_WINDOW:
            self._recent_addresses.pop(0)
        return address

    def _split_base_and_displacement(self, address: int) -> int:
        """Return the base-register value for a displacement-addressed access.

        Most displacements are very small (field offsets within a struct or
        a stack slot), a minority reach a few hundred bytes, and the rest
        are large (global-array indexing) — which is what makes predecoding
        accurate at 1KB subarrays yet noticeably weaker at line-sized ones
        (Section 6.3).
        """
        ch = self.characteristics
        rng = self._rng
        if rng.random() < ch.small_displacement_fraction:
            if rng.random() < 0.55:
                displacement = rng.randrange(0, 16)
            else:
                displacement = rng.randrange(16, _SMALL_DISPLACEMENT_LIMIT // 2)
        else:
            displacement = rng.randrange(
                _SMALL_DISPLACEMENT_LIMIT, max(512, ch.displacement_spread_bytes)
            )
        base = address - displacement
        return max(0, base)

    # ------------------------------------------------------------------
    # The op stream
    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[MicroOp]:
        """Infinite deterministic micro-op stream."""
        ch = self.characteristics
        rng = self._rng
        while True:
            self._maybe_advance_phase()
            pc, ends_block, block_target = self._code.next_pc()
            self._instructions_emitted += 1

            if ends_block:
                # Block-ending control flow follows the code walker's
                # decision (loop back-edges are taken except when the loop
                # exits), occasionally perturbed to model data-dependent
                # exits; per-PC behaviour is stable enough for the
                # combination predictor to learn.
                taken = True
                if rng.random() > ch.branch_predictability:
                    taken = False
                yield MicroOp(
                    op_type=OP_BRANCH,
                    pc=pc,
                    src1=self._pick_source(),
                    taken=taken,
                    target=block_target if taken else pc + CodeWalker.INSTRUCTION_BYTES,
                )
                continue

            op_type = self._op_type_for_pc(pc)
            if op_type == OP_LOAD:
                address = self._next_data_address(pc)
                base = self._split_base_and_displacement(address)
                src1 = self._pick_source()
                dest = self._allocate_dest()
                self._last_load_dest = dest
                yield MicroOp(
                    op_type=OP_LOAD,
                    pc=pc,
                    dest=dest,
                    src1=src1,
                    address=address,
                    base_address=base,
                )
            elif op_type == OP_STORE:
                address = self._next_data_address(pc)
                base = self._split_base_and_displacement(address)
                yield MicroOp(
                    op_type=OP_STORE,
                    pc=pc,
                    src1=self._pick_source(),
                    src2=self._pick_source(),
                    address=address,
                    base_address=base,
                )
            elif op_type == OP_FPU:
                yield MicroOp(
                    op_type=OP_FPU,
                    pc=pc,
                    dest=self._allocate_dest(),
                    src1=self._pick_source(),
                    src2=self._pick_source(),
                )
            elif op_type == OP_BRANCH:
                # Non-block-ending branch (if/else, function return): each
                # static branch has a stable per-PC bias, flipped only with
                # probability (1 - branch_predictability) per execution.
                bias = self._branch_bias.get(pc)
                if bias is None:
                    bias = rng.random() < 0.45
                    self._branch_bias[pc] = bias
                taken = bias
                if rng.random() > ch.branch_predictability:
                    taken = not taken
                target = pc + CodeWalker.INSTRUCTION_BYTES * rng.randint(2, 12)
                yield MicroOp(
                    op_type=OP_BRANCH,
                    pc=pc,
                    src1=self._pick_source(),
                    taken=taken,
                    target=target if taken else pc + CodeWalker.INSTRUCTION_BYTES,
                )
            else:
                yield MicroOp(
                    op_type=OP_ALU,
                    pc=pc,
                    dest=self._allocate_dest(),
                    src1=self._pick_source(),
                    src2=self._pick_source(),
                )

def make_workload(name: str, seed: int = 1):
    """Build the workload behind a benchmark, scenario or trace name.

    Plain names resolve to one of the paper's sixteen synthetic
    benchmarks; prefixed names resolve through
    :func:`repro.workloads.scenarios.resolve_workload` —
    ``mix:gcc+mcf@2000`` (multiprogrammed interleave),
    ``phases:gcc+art`` (phase-shifting behaviour) and ``trace:PATH``
    (recorded ``.trace.gz`` replay).

    Args:
        name: Benchmark, scenario or ``trace:`` workload name.
        seed: Deterministic workload seed (ignored by trace replay).

    Returns:
        A workload object exposing ``instructions()``, an iterator of
        :class:`~repro.workloads.trace.MicroOp` records.

    Raises:
        KeyError: for an unknown benchmark name (also inside scenarios).
        ValueError: for a malformed scenario spec or unreadable trace.
    """
    from .scenarios import resolve_workload  # local import: avoids a cycle

    scenario = resolve_workload(name, seed=seed)
    if scenario is not None:
        return scenario
    return SyntheticWorkload(get_benchmark(name), seed=seed)
