"""Per-benchmark workload characteristics.

The paper evaluates sixteen applications: ten from SPEC2000 (ammp, art,
bzip2, equake, gcc, mcf, mesa, vortex, vpr, wupwise) and six from Olden
(bh, bisort, em3d, health, treeadd, tsp).  The original binaries and
SimPoint traces are not redistributable, so each benchmark is replaced by
a synthetic workload whose *architecturally relevant* characteristics are
encoded here:

* the data footprint and how accesses are distributed between a small hot
  region and the remainder (this sets the subarray reference locality that
  Figures 5/6/8 depend on);
* the access style (strided array streaming vs. pointer chasing), which
  sets the cache miss behaviour — ammp, art and health are the paper's
  thrashing/high-miss-rate outliers;
* the instruction-footprint and loop sizes, which set the instruction
  cache's subarray locality (instruction streams are more stable than data
  streams, per Section 6.4);
* the instruction mix and branch predictability, which set the baseline
  IPC the slowdown figures are measured against;
* the displacement-size distribution of memory operations, which
  determines the predecoding accuracy of Section 6.3.

The numeric values are calibrated to the qualitative descriptions in the
paper and to the published general behaviour of these suites, not to any
proprietary trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "BenchmarkCharacteristics",
    "BENCHMARKS",
    "SPEC2000_BENCHMARKS",
    "OLDEN_BENCHMARKS",
    "benchmark_names",
    "get_benchmark",
]


@dataclass(frozen=True)
class BenchmarkCharacteristics:
    """Parameters describing one synthetic benchmark.

    Attributes:
        name: Benchmark name (lower case, as used in the paper's figures).
        suite: ``"spec2000"`` or ``"olden"``.
        data_footprint_bytes: Total data region the program touches.
        hot_data_fraction: Fraction of the footprint that is "hot" within
            a phase (the rest is touched rarely / streamed).
        hot_access_probability: Probability that a memory access falls in
            the current phase's hot region.
        pointer_chase_fraction: Fraction of loads that behave like pointer
            chases (random within their region) rather than strided.
        stride_bytes: Stride of the streaming accesses.
        load_fraction: Fraction of instructions that are loads.
        store_fraction: Fraction of instructions that are stores.
        branch_fraction: Fraction of instructions that are branches.
        fp_fraction: Fraction of instructions that are floating point.
        branch_predictability: Probability a branch follows its bias
            (higher means fewer mispredictions).
        instr_footprint_bytes: Size of the code region.
        hot_code_fraction: Fraction of the code footprint that forms the
            hot loops of a phase.
        phase_instructions: Phase length in instructions (the program moves
            to a different hot region each phase).
        n_phases: Number of distinct program phases to cycle through.
        small_displacement_fraction: Fraction of memory operations whose
            displacement is small enough to stay within the base
            register's 1KB subarray (drives predecoding accuracy).
        displacement_spread_bytes: Magnitude of the large displacements.
        stack_access_fraction: Fraction of memory accesses that hit the
            (small, extremely hot) stack/locals region.
        reuse_probability: Probability that a non-stack access re-touches a
            recently used address (temporal reuse).
        stack_bytes: Size of the active stack window.
    """

    name: str
    suite: str
    data_footprint_bytes: int
    hot_data_fraction: float
    hot_access_probability: float
    pointer_chase_fraction: float
    stride_bytes: int
    load_fraction: float
    store_fraction: float
    branch_fraction: float
    fp_fraction: float
    branch_predictability: float
    instr_footprint_bytes: int
    hot_code_fraction: float
    phase_instructions: int
    n_phases: int
    small_displacement_fraction: float
    displacement_spread_bytes: int
    stack_access_fraction: float = 0.35
    reuse_probability: float = 0.15
    stack_bytes: int = 4 * 1024

    def __post_init__(self) -> None:
        fractions = (
            self.load_fraction
            + self.store_fraction
            + self.branch_fraction
            + self.fp_fraction
        )
        if fractions >= 1.0:
            raise ValueError(
                f"{self.name}: instruction-mix fractions must leave room for ALU ops"
            )
        for field_name in (
            "hot_data_fraction",
            "hot_access_probability",
            "pointer_chase_fraction",
            "branch_predictability",
            "hot_code_fraction",
            "small_displacement_fraction",
            "stack_access_fraction",
            "reuse_probability",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {field_name} must be in [0, 1]")

    @property
    def alu_fraction(self) -> float:
        """Fraction of plain integer ALU instructions."""
        return 1.0 - (
            self.load_fraction
            + self.store_fraction
            + self.branch_fraction
            + self.fp_fraction
        )


_KB = 1024
_MB = 1024 * 1024


def _spec(name: str, **kwargs) -> BenchmarkCharacteristics:
    return BenchmarkCharacteristics(name=name, suite="spec2000", **kwargs)


def _olden(name: str, **kwargs) -> BenchmarkCharacteristics:
    return BenchmarkCharacteristics(name=name, suite="olden", **kwargs)


#: The ten SPEC2000 applications used in the paper.
SPEC2000_BENCHMARKS: Tuple[BenchmarkCharacteristics, ...] = (
    # ammp: molecular dynamics, large working set, thrashes the L1 (one of
    # the paper's three high-miss-rate outliers).
    _spec(
        "ammp",
        data_footprint_bytes=2 * _MB,
        hot_data_fraction=0.30,
        hot_access_probability=0.55,
        pointer_chase_fraction=0.50,
        stride_bytes=8,
        load_fraction=0.27,
        store_fraction=0.09,
        branch_fraction=0.12,
        fp_fraction=0.25,
        branch_predictability=0.96,
        instr_footprint_bytes=24 * _KB,
        hot_code_fraction=0.25,
        phase_instructions=60_000,
        n_phases=6,
        small_displacement_fraction=0.78,
        displacement_spread_bytes=16 * _KB,
        stack_access_fraction=0.12,
        reuse_probability=0.05,
    ),
    # art: image recognition / neural net, streams over large matrices,
    # very high miss ratio.
    _spec(
        "art",
        data_footprint_bytes=3 * _MB,
        hot_data_fraction=0.40,
        hot_access_probability=0.45,
        pointer_chase_fraction=0.10,
        stride_bytes=64,
        load_fraction=0.30,
        store_fraction=0.08,
        branch_fraction=0.11,
        fp_fraction=0.28,
        branch_predictability=0.97,
        instr_footprint_bytes=12 * _KB,
        hot_code_fraction=0.30,
        phase_instructions=75_000,
        n_phases=4,
        small_displacement_fraction=0.76,
        displacement_spread_bytes=32 * _KB,
        stack_access_fraction=0.10,
        reuse_probability=0.04,
    ),
    # bzip2: compression, moderate working set with strong phase behaviour.
    _spec(
        "bzip2",
        data_footprint_bytes=256 * _KB,
        hot_data_fraction=0.06,
        hot_access_probability=0.90,
        pointer_chase_fraction=0.25,
        stride_bytes=4,
        load_fraction=0.26,
        store_fraction=0.11,
        branch_fraction=0.14,
        fp_fraction=0.0,
        branch_predictability=0.93,
        instr_footprint_bytes=16 * _KB,
        hot_code_fraction=0.20,
        phase_instructions=50_000,
        n_phases=5,
        small_displacement_fraction=0.82,
        displacement_spread_bytes=8 * _KB,
    ),
    # equake: FEM earthquake simulation, sparse-matrix streaming.
    _spec(
        "equake",
        data_footprint_bytes=1 * _MB,
        hot_data_fraction=0.016,
        hot_access_probability=0.88,
        pointer_chase_fraction=0.30,
        stride_bytes=8,
        load_fraction=0.31,
        store_fraction=0.08,
        branch_fraction=0.10,
        fp_fraction=0.30,
        branch_predictability=0.97,
        instr_footprint_bytes=14 * _KB,
        hot_code_fraction=0.25,
        phase_instructions=60_000,
        n_phases=4,
        small_displacement_fraction=0.80,
        displacement_spread_bytes=8 * _KB,
    ),
    # gcc: compiler, large code footprint, irregular data accesses.
    _spec(
        "gcc",
        data_footprint_bytes=512 * _KB,
        hot_data_fraction=0.03,
        hot_access_probability=0.90,
        pointer_chase_fraction=0.45,
        stride_bytes=4,
        load_fraction=0.25,
        store_fraction=0.12,
        branch_fraction=0.17,
        fp_fraction=0.0,
        branch_predictability=0.90,
        instr_footprint_bytes=96 * _KB,
        hot_code_fraction=0.15,
        phase_instructions=30_000,
        n_phases=10,
        small_displacement_fraction=0.80,
        displacement_spread_bytes=4 * _KB,
    ),
    # mcf: single-source shortest path, pointer chasing over a large graph.
    _spec(
        "mcf",
        data_footprint_bytes=1536 * _KB,
        hot_data_fraction=0.08,
        hot_access_probability=0.70,
        pointer_chase_fraction=0.80,
        stride_bytes=16,
        load_fraction=0.33,
        store_fraction=0.09,
        branch_fraction=0.16,
        fp_fraction=0.0,
        branch_predictability=0.91,
        instr_footprint_bytes=10 * _KB,
        hot_code_fraction=0.30,
        phase_instructions=50_000,
        n_phases=5,
        small_displacement_fraction=0.74,
        displacement_spread_bytes=16 * _KB,
        stack_access_fraction=0.22,
        reuse_probability=0.10,
    ),
    # mesa: 3D graphics library, regular strided accesses, good locality.
    _spec(
        "mesa",
        data_footprint_bytes=384 * _KB,
        hot_data_fraction=0.03,
        hot_access_probability=0.92,
        pointer_chase_fraction=0.15,
        stride_bytes=16,
        load_fraction=0.26,
        store_fraction=0.12,
        branch_fraction=0.11,
        fp_fraction=0.22,
        branch_predictability=0.96,
        instr_footprint_bytes=48 * _KB,
        hot_code_fraction=0.18,
        phase_instructions=45_000,
        n_phases=6,
        small_displacement_fraction=0.84,
        displacement_spread_bytes=4 * _KB,
    ),
    # vortex: object-oriented database, large code, mixed accesses.
    _spec(
        "vortex",
        data_footprint_bytes=640 * _KB,
        hot_data_fraction=0.025,
        hot_access_probability=0.90,
        pointer_chase_fraction=0.40,
        stride_bytes=8,
        load_fraction=0.28,
        store_fraction=0.14,
        branch_fraction=0.15,
        fp_fraction=0.0,
        branch_predictability=0.94,
        instr_footprint_bytes=80 * _KB,
        hot_code_fraction=0.15,
        phase_instructions=35_000,
        n_phases=8,
        small_displacement_fraction=0.81,
        displacement_spread_bytes=4 * _KB,
    ),
    # vpr: FPGA place & route, moderate footprint, phase behaviour.
    _spec(
        "vpr",
        data_footprint_bytes=320 * _KB,
        hot_data_fraction=0.05,
        hot_access_probability=0.90,
        pointer_chase_fraction=0.35,
        stride_bytes=8,
        load_fraction=0.28,
        store_fraction=0.10,
        branch_fraction=0.14,
        fp_fraction=0.05,
        branch_predictability=0.92,
        instr_footprint_bytes=28 * _KB,
        hot_code_fraction=0.20,
        phase_instructions=40_000,
        n_phases=6,
        small_displacement_fraction=0.80,
        displacement_spread_bytes=8 * _KB,
    ),
    # wupwise: quantum chromodynamics, dense linear algebra, very regular.
    _spec(
        "wupwise",
        data_footprint_bytes=768 * _KB,
        hot_data_fraction=0.02,
        hot_access_probability=0.92,
        pointer_chase_fraction=0.05,
        stride_bytes=8,
        load_fraction=0.29,
        store_fraction=0.09,
        branch_fraction=0.08,
        fp_fraction=0.35,
        branch_predictability=0.98,
        instr_footprint_bytes=16 * _KB,
        hot_code_fraction=0.25,
        phase_instructions=70_000,
        n_phases=4,
        small_displacement_fraction=0.85,
        displacement_spread_bytes=4 * _KB,
    ),
)


#: The six Olden pointer-intensive applications used in the paper.
OLDEN_BENCHMARKS: Tuple[BenchmarkCharacteristics, ...] = (
    # bh: Barnes-Hut N-body, tree traversal with good reuse of upper levels.
    _olden(
        "bh",
        data_footprint_bytes=192 * _KB,
        hot_data_fraction=0.10,
        hot_access_probability=0.90,
        pointer_chase_fraction=0.65,
        stride_bytes=8,
        load_fraction=0.30,
        store_fraction=0.08,
        branch_fraction=0.13,
        fp_fraction=0.18,
        branch_predictability=0.94,
        instr_footprint_bytes=12 * _KB,
        hot_code_fraction=0.25,
        phase_instructions=50_000,
        n_phases=4,
        small_displacement_fraction=0.79,
        displacement_spread_bytes=4 * _KB,
    ),
    # bisort: bitonic sort over a binary tree.
    _olden(
        "bisort",
        data_footprint_bytes=128 * _KB,
        hot_data_fraction=0.12,
        hot_access_probability=0.90,
        pointer_chase_fraction=0.75,
        stride_bytes=8,
        load_fraction=0.29,
        store_fraction=0.12,
        branch_fraction=0.16,
        fp_fraction=0.0,
        branch_predictability=0.90,
        instr_footprint_bytes=6 * _KB,
        hot_code_fraction=0.40,
        phase_instructions=45_000,
        n_phases=4,
        small_displacement_fraction=0.80,
        displacement_spread_bytes=2 * _KB,
    ),
    # em3d: electromagnetic wave propagation over a bipartite graph.
    _olden(
        "em3d",
        data_footprint_bytes=256 * _KB,
        hot_data_fraction=0.06,
        hot_access_probability=0.88,
        pointer_chase_fraction=0.70,
        stride_bytes=16,
        load_fraction=0.32,
        store_fraction=0.07,
        branch_fraction=0.12,
        fp_fraction=0.15,
        branch_predictability=0.95,
        instr_footprint_bytes=8 * _KB,
        hot_code_fraction=0.35,
        phase_instructions=55_000,
        n_phases=4,
        small_displacement_fraction=0.77,
        displacement_spread_bytes=4 * _KB,
    ),
    # health: hierarchical health-care simulation; linked lists with a
    # small active footprint but a very high miss rate (the paper's third
    # high-miss-rate outlier, and one of the biggest gated-precharging
    # winners thanks to its locality).
    _olden(
        "health",
        data_footprint_bytes=1 * _MB,
        hot_data_fraction=0.04,
        hot_access_probability=0.60,
        pointer_chase_fraction=0.90,
        stride_bytes=16,
        load_fraction=0.34,
        store_fraction=0.10,
        branch_fraction=0.15,
        fp_fraction=0.0,
        branch_predictability=0.92,
        instr_footprint_bytes=6 * _KB,
        hot_code_fraction=0.40,
        phase_instructions=60_000,
        n_phases=3,
        small_displacement_fraction=0.72,
        displacement_spread_bytes=32 * _KB,
        stack_access_fraction=0.12,
        reuse_probability=0.04,
    ),
    # treeadd: recursive sum over a balanced binary tree.
    _olden(
        "treeadd",
        data_footprint_bytes=96 * _KB,
        hot_data_fraction=0.10,
        hot_access_probability=0.92,
        pointer_chase_fraction=0.70,
        stride_bytes=8,
        load_fraction=0.30,
        store_fraction=0.06,
        branch_fraction=0.14,
        fp_fraction=0.0,
        branch_predictability=0.95,
        instr_footprint_bytes=4 * _KB,
        hot_code_fraction=0.50,
        phase_instructions=50_000,
        n_phases=3,
        small_displacement_fraction=0.83,
        displacement_spread_bytes=2 * _KB,
    ),
    # tsp: travelling salesman over a tree of cities.
    _olden(
        "tsp",
        data_footprint_bytes=160 * _KB,
        hot_data_fraction=0.12,
        hot_access_probability=0.90,
        pointer_chase_fraction=0.60,
        stride_bytes=8,
        load_fraction=0.28,
        store_fraction=0.08,
        branch_fraction=0.14,
        fp_fraction=0.10,
        branch_predictability=0.93,
        instr_footprint_bytes=8 * _KB,
        hot_code_fraction=0.35,
        phase_instructions=45_000,
        n_phases=4,
        small_displacement_fraction=0.81,
        displacement_spread_bytes=4 * _KB,
    ),
)


#: Every benchmark, keyed by name, in the paper's alphabetical figure order.
BENCHMARKS: Dict[str, BenchmarkCharacteristics] = {
    bench.name: bench
    for bench in sorted(
        SPEC2000_BENCHMARKS + OLDEN_BENCHMARKS, key=lambda b: b.name
    )
}


def benchmark_names() -> List[str]:
    """All sixteen benchmark names in alphabetical (figure) order."""
    return list(BENCHMARKS.keys())


def get_benchmark(name: str) -> BenchmarkCharacteristics:
    """Look up a benchmark's characteristics by name.

    Raises:
        KeyError: if the benchmark is not one of the paper's sixteen.
    """
    try:
        return BENCHMARKS[name.lower()]
    except KeyError:
        known = ", ".join(benchmark_names())
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}") from None
