"""Low-level address-pattern generators.

These are the reusable building blocks the synthetic benchmarks are
assembled from: strided streams (array/matrix code), pointer chases
(linked data structures), hot/cold region selection (working-set
locality), and a loop-structured code walker that produces instruction
addresses with realistic instruction-cache locality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["StridedStream", "PointerChase", "HotColdRegion", "CodeWalker"]


class StridedStream:
    """Sequential strided addresses within a region, wrapping at the end."""

    def __init__(self, base: int, size: int, stride: int) -> None:
        if size <= 0:
            raise ValueError("region size must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.base = base
        self.size = size
        self.stride = stride
        self._offset = 0

    def next_address(self) -> int:
        """The next address in the stream."""
        address = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.size
        return address

    def reset(self, offset: int = 0) -> None:
        """Restart the stream at ``offset`` within the region."""
        self._offset = offset % self.size


class PointerChase:
    """Pseudo-random granule-aligned addresses within a region.

    Models the address stream of linked-structure traversals: each access
    lands on an unpredictable node, but all nodes live inside the
    structure's footprint.
    """

    def __init__(self, base: int, size: int, rng: random.Random,
                 granule: int = 16) -> None:
        if size < granule:
            raise ValueError("region must hold at least one granule")
        if granule <= 0:
            raise ValueError("granule must be positive")
        self.base = base
        self.size = size
        self.granule = granule
        self._rng = rng
        self._slots = max(1, size // granule)

    def next_address(self) -> int:
        """Address of the next node visited."""
        slot = self._rng.randrange(self._slots)
        return self.base + slot * self.granule


@dataclass
class HotColdRegion:
    """Split a footprint into a hot sub-region and the cold remainder.

    Attributes:
        base: Start address of the footprint.
        size: Total footprint size in bytes.
        hot_fraction: Fraction of the footprint that is hot.
        hot_offset: Where (as a fraction of the footprint) the hot region
            currently starts — program phases move this around.
    """

    base: int
    size: int
    hot_fraction: float
    hot_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")

    @property
    def hot_size(self) -> int:
        """Size of the hot region in bytes (at least one 64-byte block)."""
        return max(64, int(self.size * self.hot_fraction))

    @property
    def hot_base(self) -> int:
        """Start address of the hot region."""
        max_start = max(0, self.size - self.hot_size)
        return self.base + int(max_start * self.hot_offset)

    def hot_bounds(self) -> Tuple[int, int]:
        """(start, size) of the hot region."""
        return self.hot_base, self.hot_size

    def cold_bounds(self) -> Tuple[int, int]:
        """(start, size) of the whole footprint (cold accesses roam it all)."""
        return self.base, self.size

    def move_phase(self, phase_index: int, n_phases: int) -> None:
        """Reposition the hot region for a new program phase."""
        if n_phases <= 1:
            self.hot_offset = 0.0
            return
        self.hot_offset = (phase_index % n_phases) / (n_phases - 1)


class CodeWalker:
    """Produces instruction addresses with loop-structured locality.

    The code footprint is divided into fixed-size basic blocks.  The walker
    spends most of its time looping over a small set of blocks inside the
    current phase's hot code region, occasionally calling out to another
    hot block and rarely jumping into cold code — giving the instruction
    stream the stable, highly local footprint the paper relies on
    (Section 6.4 notes i-caches show higher locality than d-caches).
    """

    INSTRUCTION_BYTES = 4

    def __init__(
        self,
        base: int,
        size: int,
        hot_fraction: float,
        rng: random.Random,
        block_instructions: int = 12,
        call_probability: float = 0.04,
        cold_probability: float = 0.01,
    ) -> None:
        if size < 256:
            raise ValueError("code footprint too small")
        self.region = HotColdRegion(base=base, size=size, hot_fraction=hot_fraction)
        self.block_instructions = block_instructions
        self.call_probability = call_probability
        self.cold_probability = cold_probability
        self._rng = rng
        self._pc = base
        self._block_start = base
        self._in_block = 0
        self._loop_block = base
        self._loop_remaining = self._pick_loop_count()

    def _pick_loop_count(self) -> int:
        return self._rng.randint(4, 40)

    def _pick_block(self, hot: bool) -> int:
        start, size = (
            self.region.hot_bounds() if hot else self.region.cold_bounds()
        )
        block_bytes = self.block_instructions * self.INSTRUCTION_BYTES
        n_blocks = max(1, size // block_bytes)
        return start + self._rng.randrange(n_blocks) * block_bytes

    def move_phase(self, phase_index: int, n_phases: int) -> None:
        """Shift the hot code region for a new phase."""
        self.region.move_phase(phase_index, n_phases)
        self._loop_block = self._pick_block(hot=True)
        self._block_start = self._loop_block
        self._pc = self._loop_block
        self._in_block = 0
        self._loop_remaining = self._pick_loop_count()

    def next_pc(self) -> Tuple[int, bool, Optional[int]]:
        """Advance one instruction.

        Returns:
            ``(pc, ends_block, branch_target)`` — the PC of the
            instruction, whether it is the block-ending branch, and the
            branch's target when it is.
        """
        pc = self._pc
        self._in_block += 1
        if self._in_block < self.block_instructions:
            self._pc += self.INSTRUCTION_BYTES
            return pc, False, None

        # Block-ending branch: decide where control goes next.
        self._in_block = 0
        roll = self._rng.random()
        if self._loop_remaining > 0 and roll > self.call_probability + self.cold_probability:
            self._loop_remaining -= 1
            target = self._loop_block
        elif roll < self.cold_probability:
            target = self._pick_block(hot=False)
            self._loop_block = target
            self._loop_remaining = self._pick_loop_count()
        else:
            target = self._pick_block(hot=True)
            self._loop_block = target
            self._loop_remaining = self._pick_loop_count()
        self._block_start = target
        self._pc = target
        return pc, True, target
