"""Synthetic workload generators standing in for SPEC2000 and Olden.

The original benchmark binaries and SimPoint traces are not
redistributable, so each of the paper's sixteen applications is modelled
by a deterministic synthetic micro-op stream whose architecturally
relevant characteristics (footprint, subarray locality, miss behaviour,
instruction mix, branch predictability, displacement addressing) are
encoded in :mod:`~repro.workloads.characteristics`.
"""

from .characteristics import (
    BENCHMARKS,
    BenchmarkCharacteristics,
    OLDEN_BENCHMARKS,
    SPEC2000_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)
from .fuzzgen import (
    DEFAULT_FUZZ_DEPTH,
    MAX_FUZZ_DEPTH,
    generate_scenario,
    parse_fuzz_name,
)
from .generators import CodeWalker, HotColdRegion, PointerChase, StridedStream
from .grammar import (
    Bench,
    Group,
    ScenarioError,
    iter_leaves,
    parse_scenario,
    unparse,
)
from .olden import make_olden_workload, olden_names
from .scenarios import (
    MultiprogrammedWorkload,
    PhaseShiftingWorkload,
    ScenarioWorkload,
    resolve_workload,
    validate_workload_name,
    workload_identity,
)
from .spec2000 import make_spec2000_workload, spec2000_names
from .synthetic import SyntheticWorkload, WorkloadBase, make_workload
from .tracefile import (
    TraceFileWorkload,
    read_trace,
    read_trace_meta,
    record_benchmark,
    write_trace,
)
from .trace import (
    EXECUTION_LATENCY,
    MicroOp,
    OP_ALU,
    OP_BRANCH,
    OP_FPU,
    OP_LOAD,
    OP_STORE,
    OP_TYPES,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkCharacteristics",
    "OLDEN_BENCHMARKS",
    "SPEC2000_BENCHMARKS",
    "benchmark_names",
    "get_benchmark",
    "CodeWalker",
    "HotColdRegion",
    "PointerChase",
    "StridedStream",
    "make_olden_workload",
    "olden_names",
    "make_spec2000_workload",
    "spec2000_names",
    "SyntheticWorkload",
    "WorkloadBase",
    "make_workload",
    "Bench",
    "Group",
    "ScenarioError",
    "ScenarioWorkload",
    "iter_leaves",
    "parse_scenario",
    "unparse",
    "DEFAULT_FUZZ_DEPTH",
    "MAX_FUZZ_DEPTH",
    "generate_scenario",
    "parse_fuzz_name",
    "MultiprogrammedWorkload",
    "PhaseShiftingWorkload",
    "resolve_workload",
    "validate_workload_name",
    "workload_identity",
    "TraceFileWorkload",
    "read_trace",
    "read_trace_meta",
    "record_benchmark",
    "write_trace",
    "EXECUTION_LATENCY",
    "MicroOp",
    "OP_ALU",
    "OP_BRANCH",
    "OP_FPU",
    "OP_LOAD",
    "OP_STORE",
    "OP_TYPES",
]
