"""Seeded random scenario generation: the ``fuzz:`` workload family.

``fuzz:SEED`` (or ``fuzz:SEED/DEPTH``) names a scenario expression
*sampled* from the grammar in :mod:`repro.workloads.grammar` — valid by
construction, deterministic in ``(SEED, DEPTH)`` across processes and
platforms, and resolvable everywhere a benchmark name is accepted.  The
point is adversarial coverage: the differential gate
(``fast == reference`` bit-identity) has so far only been exercised on
hand-written workloads; a seeded generator exercises it on compositions
nobody imagined, and a fixed seed block in CI turns that into a
regression gate (see ``repro fuzz`` and
``tests/sim/test_fastpath_differential.py``).

Sampling draws from small discrete palettes (quanta, weights, scales,
slab widths) so canonical forms stay short and shrinking converges
quickly.  Determinism relies on :class:`random.Random` seeded with a
*string* (hashed with SHA-512 internally, stable across processes —
unlike built-in ``hash``) and on only using ``Random`` methods whose
output is stable across supported Python versions.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Tuple

from .characteristics import benchmark_names
from .grammar import Bench, Group, Node, ScenarioError

__all__ = [
    "DEFAULT_FUZZ_DEPTH",
    "MAX_FUZZ_DEPTH",
    "generate_scenario",
    "parse_fuzz_name",
]

#: Depth used when a ``fuzz:SEED`` name omits ``/DEPTH``.
DEFAULT_FUZZ_DEPTH = 3

#: Deepest nesting the generator will produce (the grammar's own cap is
#: higher; generated trees stay comfortably within it).
MAX_FUZZ_DEPTH = 6

#: Most benchmark leaves a generated expression may contain.
_LEAF_BUDGET = 8

#: Quanta small enough that short differential runs actually switch.
_QUANTUM_PALETTE = (150, 250, 400, 600, 900, 1500)

#: Footprint-scaling palette (pressure shaping both ways).
_SCALE_PALETTE = (0.25, 0.5, 2.0, 4.0)

#: Address-slab widths narrow enough to alias regions together.
_SLAB_PALETTE = (28, 32, 36)

_NEST_PROBABILITY = 0.35
_WEIGHT_PROBABILITY = 0.25
_SCALE_PROBABILITY = 0.20
_SLAB_PROBABILITY = 0.15


def parse_fuzz_name(name: str) -> Tuple[int, int]:
    """Parse ``fuzz:SEED[/DEPTH]`` into ``(seed, depth)``.

    Raises:
        ScenarioError: for anything after ``fuzz:`` that is not a
            non-negative integer seed with an optional ``/DEPTH`` in
            ``[1, MAX_FUZZ_DEPTH]`` — position-annotated like every
            other scenario syntax error.
    """
    prefix, _, rest = name.partition(":")
    offset = len(prefix) + 1
    seed_text, sep, depth_text = rest.partition("/")
    try:
        seed = int(seed_text)
    except ValueError:
        raise ScenarioError(
            name, f"fuzz seed must be an integer (got {seed_text!r})", offset
        ) from None
    if seed < 0:
        raise ScenarioError(name, "fuzz seed must be non-negative", offset)
    if not sep:
        return seed, DEFAULT_FUZZ_DEPTH
    depth_offset = offset + len(seed_text) + 1
    try:
        depth = int(depth_text)
    except ValueError:
        raise ScenarioError(
            name, f"fuzz depth must be an integer (got {depth_text!r})", depth_offset
        ) from None
    if not 1 <= depth <= MAX_FUZZ_DEPTH:
        raise ScenarioError(
            name,
            f"fuzz depth must be between 1 and {MAX_FUZZ_DEPTH} (got {depth})",
            depth_offset,
        )
    return seed, depth


def generate_scenario(seed: int, depth: int = DEFAULT_FUZZ_DEPTH) -> Group:
    """Sample a valid scenario AST from ``(seed, depth)``.

    The result is deterministic, canonical (it round-trips through
    :func:`~repro.workloads.grammar.unparse` /
    :func:`~repro.workloads.grammar.parse_scenario` unchanged) and valid
    by construction: every leaf names a registered benchmark, every list
    has at least two terms, and at most :data:`_LEAF_BUDGET` leaves —
    so ``fuzz:`` names never fail to resolve.
    """
    if seed < 0:
        raise ValueError("fuzz seed must be non-negative")
    if not 1 <= depth <= MAX_FUZZ_DEPTH:
        raise ValueError(
            f"fuzz depth must be between 1 and {MAX_FUZZ_DEPTH} (got {depth})"
        )
    rng = random.Random(f"repro-fuzz/{seed}/{depth}")
    return _generate_group(rng, depth, _LEAF_BUDGET)


def _generate_group(rng: random.Random, depth: int, allotment: int) -> Group:
    """Sample one list, never exceeding ``allotment`` benchmark leaves.

    The allotment is split among the children (at least one leaf each);
    a child holding two or more may recurse with exactly its share, so
    the total leaf count is bounded by construction — no rejection
    sampling, every draw is valid.
    """
    family = rng.choice(("mix", "phases"))
    n_children = min(rng.randint(2, 3), allotment)
    shares = [1] * n_children
    for _ in range(allotment - n_children):
        # Leave some allotment unused about half the time, so generated
        # expressions vary in size, not just in shape.
        if rng.random() < 0.5:
            shares[rng.randrange(n_children)] += 1
    children: List[Node] = []
    for share in shares:
        if share >= 2 and depth > 1 and rng.random() < _NEST_PROBABILITY:
            node: Node = _generate_group(rng, depth - 1, share)
        else:
            node = Bench(name=rng.choice(benchmark_names()))
        children.append(_decorate(rng, node))
    return Group(
        family=family,
        children=tuple(children),
        quantum=rng.choice(_QUANTUM_PALETTE),
    )


def _decorate(rng: random.Random, node: Node) -> Node:
    weight = rng.randint(2, 3) if rng.random() < _WEIGHT_PROBABILITY else 1
    scale = (
        rng.choice(_SCALE_PALETTE) if rng.random() < _SCALE_PROBABILITY else 1.0
    )
    slab = rng.choice(_SLAB_PALETTE) if rng.random() < _SLAB_PROBABILITY else None
    return replace(node, weight=weight, scale=scale, slab=slab)
