"""Convenience constructors for the SPEC2000-derived synthetic workloads.

The paper runs ten SPEC2000 applications through SimPoint-selected
simulation points.  Here each application is represented by a synthetic
workload parameterised in
:mod:`repro.workloads.characteristics`; this module simply exposes them by
name for discoverability (``spec2000.ammp()``, ``spec2000.gcc()``, ...).
"""

from __future__ import annotations

from typing import List

from .characteristics import SPEC2000_BENCHMARKS
from .synthetic import SyntheticWorkload, make_workload

__all__ = ["spec2000_names", "make_spec2000_workload"] + [
    bench.name for bench in SPEC2000_BENCHMARKS
]


def spec2000_names() -> List[str]:
    """Names of the ten SPEC2000 applications used in the paper."""
    return [bench.name for bench in SPEC2000_BENCHMARKS]


def make_spec2000_workload(name: str, seed: int = 1) -> SyntheticWorkload:
    """Build a SPEC2000 synthetic workload by name."""
    if name not in spec2000_names():
        raise KeyError(f"{name!r} is not one of the SPEC2000 benchmarks used in the paper")
    return make_workload(name, seed=seed)


def _make_constructor(bench_name: str):
    def constructor(seed: int = 1) -> SyntheticWorkload:
        return make_workload(bench_name, seed=seed)

    constructor.__name__ = bench_name
    constructor.__qualname__ = bench_name
    constructor.__doc__ = f"Synthetic workload modelling SPEC2000 {bench_name}."
    return constructor


for _bench in SPEC2000_BENCHMARKS:
    globals()[_bench.name] = _make_constructor(_bench.name)
del _bench
