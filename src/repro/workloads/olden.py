"""Convenience constructors for the Olden-derived synthetic workloads.

The paper runs the six Olden pointer-intensive programs to completion.
Each is represented here by a synthetic workload parameterised in
:mod:`repro.workloads.characteristics`, exposed by name
(``olden.health()``, ``olden.treeadd()``, ...).
"""

from __future__ import annotations

from typing import List

from .characteristics import OLDEN_BENCHMARKS
from .synthetic import SyntheticWorkload, make_workload

__all__ = ["olden_names", "make_olden_workload"] + [
    bench.name for bench in OLDEN_BENCHMARKS
]


def olden_names() -> List[str]:
    """Names of the six Olden applications used in the paper."""
    return [bench.name for bench in OLDEN_BENCHMARKS]


def make_olden_workload(name: str, seed: int = 1) -> SyntheticWorkload:
    """Build an Olden synthetic workload by name."""
    if name not in olden_names():
        raise KeyError(f"{name!r} is not one of the Olden benchmarks used in the paper")
    return make_workload(name, seed=seed)


def _make_constructor(bench_name: str):
    def constructor(seed: int = 1) -> SyntheticWorkload:
        return make_workload(bench_name, seed=seed)

    constructor.__name__ = bench_name
    constructor.__qualname__ = bench_name
    constructor.__doc__ = f"Synthetic workload modelling Olden {bench_name}."
    return constructor


for _bench in OLDEN_BENCHMARKS:
    globals()[_bench.name] = _make_constructor(_bench.name)
del _bench
