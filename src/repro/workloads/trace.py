"""Micro-operation trace records.

The workload generators produce a stream of :class:`MicroOp` records that
the cycle-level processor model consumes.  A record carries everything the
pipeline needs: the operation class, register dependences (as
architectural register indices — renaming is modelled as ideal), the
effective and base addresses of memory operations (the base address feeds
the Section 6.3 predecoder), the program counter (which drives the
instruction cache) and, for branches, the actual outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "MicroOp",
    "OP_ALU",
    "OP_FPU",
    "OP_LOAD",
    "OP_STORE",
    "OP_BRANCH",
    "OP_TYPES",
    "EXECUTION_LATENCY",
]

OP_ALU = "alu"
OP_FPU = "fpu"
OP_LOAD = "load"
OP_STORE = "store"
OP_BRANCH = "branch"

#: Every operation class a workload may emit.
OP_TYPES = (OP_ALU, OP_FPU, OP_LOAD, OP_STORE, OP_BRANCH)

#: Execution (functional-unit) latency in cycles per operation class.
#: Loads add the data-cache access latency on top of this issue latency.
EXECUTION_LATENCY = {
    OP_ALU: 1,
    OP_FPU: 3,
    OP_LOAD: 0,
    OP_STORE: 1,
    OP_BRANCH: 1,
}


@dataclass(slots=True)
class MicroOp:
    """One dynamic micro-operation.

    Attributes:
        op_type: One of :data:`OP_TYPES`.
        pc: Byte address of the instruction (drives the L1 i-cache).
        dest: Destination architectural register index, or ``None``.
        src1: First source register index, or ``None``.
        src2: Second source register index, or ``None``.
        address: Effective memory address for loads/stores, else ``None``.
        base_address: Base-register value for displacement-addressed memory
            operations (predecoding input), else ``None``.
        taken: Branch outcome (branches only).
        target: Branch target PC (branches only).
    """

    op_type: str
    pc: int
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    address: Optional[int] = None
    base_address: Optional[int] = None
    taken: bool = False
    target: Optional[int] = None

    @property
    def is_memory(self) -> bool:
        """Whether the op accesses the data cache."""
        return self.op_type in (OP_LOAD, OP_STORE)

    @property
    def is_branch(self) -> bool:
        """Whether the op is a control-flow instruction."""
        return self.op_type == OP_BRANCH

    @property
    def execution_latency(self) -> int:
        """Functional-unit latency of the op (excluding cache access time)."""
        return EXECUTION_LATENCY[self.op_type]
