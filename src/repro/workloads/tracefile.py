"""Streaming compressed micro-op trace files (``.trace.gz``).

A trace file freezes a workload's :class:`~repro.workloads.trace.MicroOp`
stream so it can be archived, shipped between machines, diffed, and
replayed through either simulation path (``benchmark="trace:PATH"``).
The format is built for streaming in both directions — recording never
materialises the stream and replay never loads more than one buffer:

* a magic line (:data:`MAGIC`) identifying format and version;
* one JSON metadata line (benchmark name, seed, op count, free-form
  extras) — readable with ``zcat file.trace.gz | head -2``;
* fixed-width little-endian records, one per micro-op
  (:data:`_RECORD`), ``-1`` encoding ``None`` for optional fields.

Write → read round-trips are identity on the micro-op sequence (the
property suite pins this), so a recorded benchmark replays bit-identical
to the live generator that produced it.
"""

from __future__ import annotations

import gzip
import itertools
import json
import struct
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Union

from .synthetic import WorkloadBase
from .trace import MicroOp, OP_TYPES

__all__ = [
    "MAGIC",
    "TRACE_SUFFIX",
    "write_trace",
    "read_trace",
    "read_trace_meta",
    "record_benchmark",
    "TraceFileWorkload",
]

#: First line of every trace file (format magic + version).
MAGIC = b"repro-trace v1\n"

#: Conventional file suffix.
TRACE_SUFFIX = ".trace.gz"

#: One micro-op: kind u8, taken u8, dest/src1/src2 i32, pc/address/base/
#: target i64; ``-1`` encodes ``None`` for the optional fields.
_RECORD = struct.Struct("<BBiiiqqqq")

#: Records packed per I/O buffer when writing/reading.
_BATCH = 4096

_KIND_CODE = {name: code for code, name in enumerate(OP_TYPES)}


def _encode(uop: MicroOp) -> bytes:
    return _RECORD.pack(
        _KIND_CODE[uop.op_type],
        1 if uop.taken else 0,
        -1 if uop.dest is None else uop.dest,
        -1 if uop.src1 is None else uop.src1,
        -1 if uop.src2 is None else uop.src2,
        uop.pc,
        -1 if uop.address is None else uop.address,
        -1 if uop.base_address is None else uop.base_address,
        -1 if uop.target is None else uop.target,
    )


def _decode(fields: Tuple[int, ...]) -> MicroOp:
    kind, taken, dest, src1, src2, pc, address, base, target = fields
    return MicroOp(
        op_type=OP_TYPES[kind],
        pc=pc,
        dest=None if dest < 0 else dest,
        src1=None if src1 < 0 else src1,
        src2=None if src2 < 0 else src2,
        address=None if address < 0 else address,
        base_address=None if base < 0 else base,
        taken=bool(taken),
        target=None if target < 0 else target,
    )


def write_trace(
    path: Union[str, Path],
    uops: Iterable[MicroOp],
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Stream ``uops`` into a compressed trace file.

    Args:
        path: Destination file (conventionally ``*.trace.gz``).
        meta: JSON-safe metadata stored in the header (``count`` is
            filled in only when already known to the caller; replay does
            not need it — records run to end-of-file).

    Returns:
        The number of micro-ops written.
    """
    header = dict(meta or {})
    count = 0
    with gzip.open(str(path), "wb") as handle:
        handle.write(MAGIC)
        handle.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
        batch = []
        for uop in uops:
            batch.append(_encode(uop))
            count += 1
            if len(batch) >= _BATCH:
                handle.write(b"".join(batch))
                batch.clear()
        if batch:
            handle.write(b"".join(batch))
    return count


def _open_and_check(path: Union[str, Path]) -> Tuple[gzip.GzipFile, Dict[str, Any]]:
    try:
        handle = gzip.open(str(path), "rb")
    except OSError as error:
        # Missing files, directories, permissions: user input, not a bug.
        raise ValueError(f"{path}: cannot open trace file: {error}") from None
    try:
        try:
            magic = handle.readline()
        except (EOFError, gzip.BadGzipFile) as error:
            raise ValueError(f"{path}: not a gzip file ({error})") from None
        if magic != MAGIC:
            raise ValueError(f"{path}: not a repro trace file (bad magic {magic!r})")
        meta_line = handle.readline()
        try:
            meta = json.loads(meta_line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"{path}: corrupt trace metadata: {error}") from None
        if not isinstance(meta, dict):
            raise ValueError(f"{path}: trace metadata must be a JSON object")
        return handle, meta
    except Exception:
        handle.close()
        raise


def read_trace_meta(path: Union[str, Path]) -> Dict[str, Any]:
    """The metadata header of a trace file (without reading the records)."""
    handle, meta = _open_and_check(path)
    handle.close()
    return meta


def read_trace(path: Union[str, Path]) -> Iterator[MicroOp]:
    """Stream the micro-ops of a trace file, one buffer at a time."""
    handle, _meta = _open_and_check(path)
    record_size = _RECORD.size
    buffer_size = record_size * _BATCH
    with handle:
        leftover = b""
        while True:
            try:
                chunk = handle.read(buffer_size)
            except (EOFError, gzip.BadGzipFile, OSError) as error:
                # A recording killed mid-write leaves a gzip stream with
                # no end-of-stream marker; surface it like any other
                # corrupt-file condition instead of crashing replay.
                raise ValueError(f"{path}: corrupt trace file: {error}") from None
            if not chunk:
                break
            if leftover:
                chunk = leftover + chunk
                leftover = b""
            usable = len(chunk) - (len(chunk) % record_size)
            if usable != len(chunk):
                leftover = chunk[usable:]
                chunk = chunk[:usable]
            for fields in _RECORD.iter_unpack(chunk):
                yield _decode(fields)
        if leftover:
            raise ValueError(f"{path}: truncated trace record at end of file")


def record_benchmark(
    path: Union[str, Path],
    benchmark: str,
    n_instructions: int,
    seed: int = 1,
) -> int:
    """Record ``n_instructions`` micro-ops of a named workload to ``path``.

    The recorded prefix replays identically through
    ``benchmark="trace:PATH"`` (modulo the stream simply ending, which
    drains the pipeline early if the simulation asks for more ops than
    were recorded).
    """
    if n_instructions < 1:
        raise ValueError("must record at least one micro-op")
    from .synthetic import make_workload  # local import: avoids a cycle

    workload = make_workload(benchmark, seed=seed)
    meta = {
        "benchmark": benchmark,
        "seed": seed,
        "count": n_instructions,
    }
    count = write_trace(
        path, itertools.islice(workload.instructions(), n_instructions), meta=meta
    )
    if count < n_instructions:
        # A finite source (a shorter trace: workload) ended early; the
        # header's count would lie, so don't leave the partial file.
        Path(path).unlink(missing_ok=True)
        raise ValueError(
            f"{benchmark!r} yielded only {count} micro-ops "
            f"({n_instructions} requested)"
        )
    return count


class TraceFileWorkload(WorkloadBase):
    """A workload replayed from a recorded ``.trace.gz`` file.

    Each ``instructions()`` call starts a fresh streaming read, so the
    workload is reusable.  ``generate()`` overrides the base to reject
    requests past the recorded prefix (a finite stream, unlike the
    synthetic generators).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise ValueError(f"trace file not found: {self.path}")
        #: Header metadata (also validates magic/format eagerly).
        self.meta = read_trace_meta(self.path)

    @property
    def name(self) -> str:
        """The recorded benchmark's name, or the file stem."""
        return str(self.meta.get("benchmark", self.path.name))

    def instructions(self) -> Iterator[MicroOp]:
        """Stream the recorded micro-ops."""
        return read_trace(self.path)

    def generate(self, n_instructions: int) -> list:
        """Materialise the first ``n_instructions`` recorded micro-ops."""
        if n_instructions < 0:
            raise ValueError("n_instructions must be non-negative")
        ops = list(itertools.islice(self.instructions(), n_instructions))
        if len(ops) < n_instructions:
            raise ValueError(
                f"{self.path} holds only {len(ops)} micro-ops "
                f"({n_instructions} requested)"
            )
        return ops
