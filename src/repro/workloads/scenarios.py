"""Composite scenario workloads: the scenario algebra, resolved.

Three name families extend the sixteen single-program benchmarks, all
addressable anywhere a benchmark name is accepted (``SimulationConfig``,
``repro run/sweep --benchmark``, service payloads, loadgen mixes, the
fast path, trace recording):

* ``mix:`` / ``phases:`` — expressions of the recursive **scenario
  algebra** (:mod:`repro.workloads.grammar`): weighted terms, nested
  parenthesised scenarios, per-term pressure-shaping modifiers
  (``~scale=`` footprint scaling, ``~slab=`` address-slab width) and an
  optional ``@quantum``.  The flat forms (``mix:gcc+mcf@2000``,
  ``phases:gcc+art``) keep their PR-2 semantics and streams exactly;
  nesting composes them — ``mix:(phases:gcc+mcf@5000)*2+vortex@800``
  interleaves a phase-shifting program (two quanta per turn) with
  vortex.
* ``fuzz:SEED[/DEPTH]`` — a scenario expression *sampled* from the
  grammar (:mod:`repro.workloads.fuzzgen`), deterministic in the seed
  and valid by construction.  ``repro fuzz`` drives these through both
  simulation kernels as a differential gate.
* ``trace:PATH`` — a recorded
  :class:`~repro.workloads.tracefile.TraceFileWorkload` replay.

Programs of a ``mix:`` time-share the core in round-robin quanta, each
in its own address slab (:data:`grammar.DEFAULT_SLAB_BITS`-bit by
default) and a statically partitioned slice of the architectural
register file, so programs contend for cache subarrays and predictor
entries — the interesting part — without fabricating cross-program data
dependences.  ``phases:`` profiles share one address space and the full
register file.  In a nested expression the *programs* are the maximal
subtrees whose paths to the root cross the same ``mix:`` edges: a
``phases:`` group used as one term of a ``mix:`` is a single program.

All families compose with recording: any scenario can be recorded to a
``.trace.gz`` file and replayed byte-identically later.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from functools import lru_cache
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from .characteristics import BenchmarkCharacteristics, get_benchmark
from .grammar import (
    DEFAULT_MIX_QUANTUM,
    DEFAULT_PHASE_QUANTUM,
    DEFAULT_SLAB_BITS,
    Bench,
    Group,
    LeafInfo,
    ScenarioError,
    analyse,
    iter_leaves,
    parse_scenario,
    unparse,
)
from .fuzzgen import generate_scenario, parse_fuzz_name
from .synthetic import N_REGISTERS, SyntheticWorkload, WorkloadBase
from .trace import MicroOp

__all__ = [
    "DEFAULT_MIX_QUANTUM",
    "DEFAULT_PHASE_QUANTUM",
    "MultiprogrammedWorkload",
    "PhaseShiftingWorkload",
    "ScenarioError",
    "ScenarioWorkload",
    "resolve_workload",
    "validate_workload_name",
    "workload_identity",
]

#: Address-space slab assigned to each program (2**40 bytes).
_ADDRESS_SPACE_BYTES = 1 << DEFAULT_SLAB_BITS

#: Smallest data footprint ``~scale=`` may shrink a benchmark to.
_MIN_DATA_FOOTPRINT = 8 * 1024

#: Smallest code footprint ``~scale=`` may shrink a benchmark to (the
#: code walker needs at least a few basic blocks).
_MIN_INSTR_FOOTPRINT = 2 * 1024


def _child_workloads(names: Sequence[str], seed: int) -> List[SyntheticWorkload]:
    # Decorrelate the seeds so "mix:gcc+gcc" interleaves two *different*
    # dynamic instances of the same static program.  Nested expressions
    # decorrelate identically, by DFS leaf index (see ScenarioWorkload).
    return [
        SyntheticWorkload(get_benchmark(name), seed=seed + 101 * index)
        for index, name in enumerate(names)
    ]


def _scaled_characteristics(
    ch: BenchmarkCharacteristics, scale: float
) -> BenchmarkCharacteristics:
    """Apply a ``~scale=`` modifier to a benchmark's footprints."""
    if scale == 1.0:
        return ch
    return _dc_replace(
        ch,
        data_footprint_bytes=max(
            _MIN_DATA_FOOTPRINT, int(ch.data_footprint_bytes * scale)
        ),
        instr_footprint_bytes=max(
            _MIN_INSTR_FOOTPRINT, int(ch.instr_footprint_bytes * scale)
        ),
    )


def _translate_stream(
    stream: Iterator[MicroOp],
    mask: int,
    offset: int,
    reg_base: int,
    reg_slice: int,
) -> Iterator[MicroOp]:
    """Fold a leaf stream into its program's address slab and registers."""

    def reg(value: Optional[int]) -> Optional[int]:
        if value is None:
            return None
        return reg_base + (value % reg_slice)

    for uop in stream:
        yield MicroOp(
            op_type=uop.op_type,
            pc=(uop.pc & mask) + offset,
            dest=reg(uop.dest),
            src1=reg(uop.src1),
            src2=reg(uop.src2),
            address=None if uop.address is None else (uop.address & mask) + offset,
            base_address=(
                None
                if uop.base_address is None
                else (uop.base_address & mask) + offset
            ),
            taken=uop.taken,
            target=None if uop.target is None else (uop.target & mask) + offset,
        )


def _interleave(
    streams: Sequence[Iterator[MicroOp]], weights: Sequence[int], quantum: int
) -> Iterator[MicroOp]:
    """Round-robin over child streams, ``weight * quantum`` ops per turn."""
    while True:
        for stream, weight in zip(streams, weights):
            for _ in range(weight * quantum):
                yield next(stream)


class ScenarioWorkload(WorkloadBase):
    """A workload evaluating one scenario-algebra expression.

    The expression's benchmark leaves become
    :class:`~repro.workloads.synthetic.SyntheticWorkload` streams
    (footprint-scaled per ``~scale=``, seeded ``seed + 101 * leaf
    index``), folded into their program's address slab and register
    slice, then interleaved bottom-up: every ``mix:``/``phases:`` node
    round-robins its children, ``weight * quantum`` micro-ops per turn.

    The stream is an infinite, deterministic function of
    ``(expression, seed)`` — the contract every cache layer and the
    differential fuzz gate rely on.
    """

    def __init__(
        self, root: Group, seed: int = 1, name: Optional[str] = None
    ) -> None:
        self.root = root
        self.seed = seed
        self.name = unparse(root) if name is None else name
        self._leaves, self._programs = analyse(root)
        # Resolve (and thereby validate) every leaf eagerly: an unknown
        # benchmark raises KeyError here, not mid-stream.
        self._characteristics = [
            _scaled_characteristics(get_benchmark(leaf.bench.name), leaf.scale)
            for leaf in self._leaves
        ]

    # ------------------------------------------------------------------
    @property
    def programs(self) -> List[Tuple[int, ...]]:
        """The distinct programs (chains of ``mix:`` child indices)."""
        return list(self._programs)

    def _leaf_stream(
        self, leaf: LeafInfo, ch: BenchmarkCharacteristics
    ) -> Iterator[MicroOp]:
        workload = SyntheticWorkload(ch, seed=self.seed + 101 * leaf.seed_index)
        stream = workload.instructions()
        n_programs = len(self._programs)
        program_index = self._programs.index(leaf.program)
        offset = program_index * _ADDRESS_SPACE_BYTES
        if n_programs > 1:
            reg_slice = max(1, N_REGISTERS // n_programs)
            reg_base = (program_index * reg_slice) % N_REGISTERS
        else:
            reg_slice, reg_base = N_REGISTERS, 0
        if (
            offset == 0
            and leaf.slab == DEFAULT_SLAB_BITS
            and reg_slice == N_REGISTERS
        ):
            # Single untranslated program (a pure phases: tree): the
            # leaf stream passes through untouched, exactly as the flat
            # PhaseShiftingWorkload always behaved.
            return stream
        mask = (1 << leaf.slab) - 1
        return _translate_stream(stream, mask, offset, reg_base, reg_slice)

    def instructions(self) -> Iterator[MicroOp]:
        """Infinite composed micro-op stream (fresh leaf streams per call)."""
        pairs = iter(zip(self._leaves, self._characteristics))

        def build(node) -> Iterator[MicroOp]:
            if isinstance(node, Bench):
                leaf, ch = next(pairs)
                return self._leaf_stream(leaf, ch)
            streams = [build(child) for child in node.children]
            weights = [child.weight for child in node.children]
            return _interleave(streams, weights, node.quantum)

        return build(self.root)


class MultiprogrammedWorkload(ScenarioWorkload):
    """Round-robin multiprogrammed interleave of several benchmarks.

    The flat ``mix:A+B[@quantum]`` form, kept as a named class for
    compatibility; its stream is bit-identical to the general
    :class:`ScenarioWorkload` evaluation of the same expression.
    """

    def __init__(self, names: Sequence[str], quantum: int = DEFAULT_MIX_QUANTUM,
                 seed: int = 1) -> None:
        if len(names) < 2:
            raise ValueError("mix: scenarios need at least two programs")
        if quantum < 1:
            raise ValueError("context-switch quantum must be positive")
        root = Group(
            family="mix",
            children=tuple(Bench(name=name.lower()) for name in names),
            quantum=quantum,
        )
        super().__init__(
            root, seed=seed, name=f"mix:{'+'.join(names)}@{quantum}"
        )
        self.names = tuple(names)
        self.quantum = quantum
        self.children = _child_workloads(names, seed)


class PhaseShiftingWorkload(ScenarioWorkload):
    """One program alternating between several benchmarks' behaviours.

    The flat ``phases:A+B[@quantum]`` form (shared address space, full
    register file), kept as a named class for compatibility.
    """

    def __init__(self, names: Sequence[str], quantum: int = DEFAULT_PHASE_QUANTUM,
                 seed: int = 1) -> None:
        if len(names) < 2:
            raise ValueError("phases: scenarios need at least two profiles")
        if quantum < 1:
            raise ValueError("phase quantum must be positive")
        root = Group(
            family="phases",
            children=tuple(Bench(name=name.lower()) for name in names),
            quantum=quantum,
        )
        super().__init__(
            root, seed=seed, name=f"phases:{'+'.join(names)}@{quantum}"
        )
        self.names = tuple(names)
        self.quantum = quantum
        self.children = _child_workloads(names, seed)


def _name_family(name: str) -> Optional[str]:
    prefix, sep, _ = name.partition(":")
    if not sep:
        return None
    return prefix.strip().lower()


@lru_cache(maxsize=512)
def _scenario_identity(name: str) -> Optional[Tuple]:
    """Canonical identity of a scenario/fuzz name (memoised; pure)."""
    family = _name_family(name)
    try:
        if family == "fuzz":
            fuzz_seed, depth = parse_fuzz_name(name)
            return ("scenario", unparse(generate_scenario(fuzz_seed, depth)))
        root = parse_scenario(name)
    except ValueError:
        return None
    if root is None:
        return None
    return ("scenario", unparse(root))


def workload_identity(name: str) -> Optional[Tuple]:
    """Cache-key identity of a workload name; ``None`` for plain names.

    Every layer that memoises by workload name (the engine's result
    cache, the on-disk result store, the fast path's compiled-trace
    caches) folds this into its key:

    * ``trace:`` names point at mutable file contents, so the identity
      is the file's resolved path, mtime and size — re-recording a
      trace invalidates instead of serving stale results.  A missing
      file yields ``None``; the error surfaces when the workload is
      built.
    * ``mix:``/``phases:``/``fuzz:`` names yield ``("scenario",
      canonical_form)``: syntactically different spellings of one
      expression — including a ``fuzz:`` seed and its expansion — share
      compiled traces and results.  A malformed expression yields
      ``None``; the error surfaces at validation/build time.
    """
    family = _name_family(name)
    if family == "trace":
        _, _, rest = name.partition(":")
        path = Path(rest)
        try:
            stat = path.stat()
        except OSError:
            return None
        return ("trace", str(path.resolve()), stat.st_mtime_ns, stat.st_size)
    if family in ("mix", "phases", "fuzz"):
        return _scenario_identity(name)
    return None


def validate_workload_name(name: str) -> None:
    """Check a workload name without building the workload.

    The cheap counterpart of :func:`resolve_workload` for input
    validation (the CLI calls this once per name, then the run builds
    the workload once): scenario expressions are parsed and their leaf
    benchmarks looked up, ``fuzz:`` specs are parsed and expanded,
    trace paths are only checked for existence.

    Raises:
        KeyError: for an unknown benchmark name (also inside scenarios).
        ValueError: for a malformed scenario expression (a
            position-annotated :class:`ScenarioError`), a malformed
            ``fuzz:`` spec, or a missing trace file.
    """
    family = _name_family(name)
    if family == "trace":
        _, _, rest = name.partition(":")
        if not Path(rest).exists():
            raise ValueError(f"trace file not found: {rest}")
        return
    if family == "fuzz":
        fuzz_seed, depth = parse_fuzz_name(name)
        generate_scenario(fuzz_seed, depth)
        return
    if family in ("mix", "phases"):
        root = parse_scenario(name)
        for leaf in iter_leaves(root):
            get_benchmark(leaf.name)
        return
    get_benchmark(name)


def _is_flat(root: Group) -> bool:
    return all(
        isinstance(child, Bench)
        and child.weight == 1
        and child.scale == 1.0
        and child.slab is None
        for child in root.children
    )


def resolve_workload(name: str, seed: int = 1):
    """Resolve a scenario, fuzz or trace name; ``None`` for plain benchmarks.

    Raises:
        ValueError: for a malformed scenario expression (position-
            annotated), a malformed ``fuzz:`` spec, or an unreadable
            trace.
        KeyError: for an unknown benchmark inside a scenario.
    """
    family = _name_family(name)
    if family is None:
        return None
    if family == "trace":
        from .tracefile import TraceFileWorkload

        _, _, rest = name.partition(":")
        return TraceFileWorkload(rest)
    if family == "fuzz":
        fuzz_seed, depth = parse_fuzz_name(name)
        root = generate_scenario(fuzz_seed, depth)
        return ScenarioWorkload(root, seed=seed, name=name)
    if family in ("mix", "phases"):
        root = parse_scenario(name)
        if _is_flat(root):
            names = tuple(leaf.name for leaf in iter_leaves(root))
            cls = (
                MultiprogrammedWorkload
                if family == "mix"
                else PhaseShiftingWorkload
            )
            return cls(names, quantum=root.quantum, seed=seed)
        return ScenarioWorkload(root, seed=seed)
    return None
