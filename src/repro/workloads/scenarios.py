"""Composite scenario workloads.

Two scenario families extend the sixteen single-program benchmarks, both
addressable anywhere a benchmark name is accepted (``SimulationConfig``,
``repro run/sweep --benchmark``, the fast path, trace recording):

* ``mix:A+B[+C...][@quantum]`` — **multiprogrammed interleave**: the
  named programs time-share the core in round-robin quanta (default
  :data:`DEFAULT_MIX_QUANTUM` micro-ops), as under a preemptive OS
  scheduler.  Each program runs in its own address space (a disjoint
  2\\ :sup:`40`-byte slab) and in a statically partitioned slice of the
  architectural register file, so programs contend for cache subarrays
  and predictor entries — the interesting part — without fabricating
  cross-program data dependences.
* ``phases:A+B[+C...][@quantum]`` — **phase-shifting program**: one
  program whose execution alternates between the behaviour profiles of
  the named benchmarks every quantum (default
  :data:`DEFAULT_PHASE_QUANTUM`), sharing one address space.  This
  stresses decay-style policies with hot-subarray sets that move much
  faster than any single benchmark's natural phase length.

``trace:PATH`` resolves a recorded
:class:`~repro.workloads.tracefile.TraceFileWorkload` through the same
hook.  All three families compose: a ``mix:`` of two benchmarks can be
recorded to a trace file and replayed, byte-identically, later.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from .characteristics import get_benchmark
from .synthetic import N_REGISTERS, SyntheticWorkload, WorkloadBase
from .trace import MicroOp

__all__ = [
    "DEFAULT_MIX_QUANTUM",
    "DEFAULT_PHASE_QUANTUM",
    "MultiprogrammedWorkload",
    "PhaseShiftingWorkload",
    "resolve_workload",
    "validate_workload_name",
    "workload_identity",
]

#: Default context-switch quantum (micro-ops) for ``mix:`` scenarios.
DEFAULT_MIX_QUANTUM = 2000

#: Default phase length (micro-ops) for ``phases:`` scenarios.
DEFAULT_PHASE_QUANTUM = 1500

#: Address-space slab assigned to each program of a ``mix:`` scenario.
_ADDRESS_SPACE_BYTES = 1 << 40


def _child_workloads(names: Sequence[str], seed: int) -> List[SyntheticWorkload]:
    # Decorrelate the seeds so "mix:gcc+gcc" interleaves two *different*
    # dynamic instances of the same static program.
    return [
        SyntheticWorkload(get_benchmark(name), seed=seed + 101 * index)
        for index, name in enumerate(names)
    ]


class MultiprogrammedWorkload(WorkloadBase):
    """Round-robin multiprogrammed interleave of several benchmarks."""

    def __init__(self, names: Sequence[str], quantum: int = DEFAULT_MIX_QUANTUM,
                 seed: int = 1) -> None:
        if len(names) < 2:
            raise ValueError("mix: scenarios need at least two programs")
        if quantum < 1:
            raise ValueError("context-switch quantum must be positive")
        self.names = tuple(names)
        self.quantum = quantum
        self.seed = seed
        self.children = _child_workloads(names, seed)
        self.name = f"mix:{'+'.join(self.names)}@{quantum}"
        self._register_slice = max(1, N_REGISTERS // len(self.children))

    def _translate(self, uop: MicroOp, index: int) -> MicroOp:
        offset = index * _ADDRESS_SPACE_BYTES
        reg_slice = self._register_slice
        reg_base = (index * reg_slice) % N_REGISTERS

        def reg(value: Optional[int]) -> Optional[int]:
            if value is None:
                return None
            return reg_base + (value % reg_slice)

        return MicroOp(
            op_type=uop.op_type,
            pc=uop.pc + offset,
            dest=reg(uop.dest),
            src1=reg(uop.src1),
            src2=reg(uop.src2),
            address=None if uop.address is None else uop.address + offset,
            base_address=(
                None if uop.base_address is None else uop.base_address + offset
            ),
            taken=uop.taken,
            target=None if uop.target is None else uop.target + offset,
        )

    def instructions(self) -> Iterator[MicroOp]:
        """Infinite interleaved micro-op stream."""
        streams = [child.instructions() for child in self.children]
        quantum = self.quantum
        while True:
            for index, stream in enumerate(streams):
                for _ in range(quantum):
                    yield self._translate(next(stream), index)


class PhaseShiftingWorkload(WorkloadBase):
    """One program alternating between several benchmarks' behaviours."""

    def __init__(self, names: Sequence[str], quantum: int = DEFAULT_PHASE_QUANTUM,
                 seed: int = 1) -> None:
        if len(names) < 2:
            raise ValueError("phases: scenarios need at least two profiles")
        if quantum < 1:
            raise ValueError("phase quantum must be positive")
        self.names = tuple(names)
        self.quantum = quantum
        self.seed = seed
        self.children = _child_workloads(names, seed)
        self.name = f"phases:{'+'.join(self.names)}@{quantum}"

    def instructions(self) -> Iterator[MicroOp]:
        """Infinite phase-alternating micro-op stream (shared address space)."""
        streams = [child.instructions() for child in self.children]
        quantum = self.quantum
        while True:
            for stream in streams:
                for _ in range(quantum):
                    yield next(stream)


def _parse_programs(rest: str, family: str, default_quantum: int):
    spec, _, quantum_text = rest.partition("@")
    names = [name.strip() for name in spec.split("+") if name.strip()]
    if len(names) < 2:
        raise ValueError(
            f"{family}: scenarios take at least two '+'-separated benchmarks "
            f"(got {rest!r})"
        )
    if quantum_text:
        try:
            quantum = int(quantum_text)
        except ValueError:
            raise ValueError(
                f"{family}: quantum must be an integer (got {quantum_text!r})"
            ) from None
    else:
        quantum = default_quantum
    return names, quantum


def workload_identity(name: str) -> Optional[Tuple]:
    """File-identity component of a ``trace:`` name; ``None`` otherwise.

    Synthetic and scenario names fully determine their stream, but a
    ``trace:`` name points at mutable file contents.  Every layer that
    memoises by workload name (the engine's result cache, the on-disk
    result store, the fast path's compiled-trace cache) folds this
    identity — resolved path, mtime, size — into its key, so
    re-recording a trace file invalidates instead of serving stale
    results.  A missing file yields ``None``; the error surfaces when
    the workload is actually built.
    """
    prefix, sep, rest = name.partition(":")
    if not sep or prefix.strip().lower() != "trace":
        return None
    path = Path(rest)
    try:
        stat = path.stat()
    except OSError:
        return None
    return ("trace", str(path.resolve()), stat.st_mtime_ns, stat.st_size)


def validate_workload_name(name: str) -> None:
    """Check a workload name without building the workload.

    The cheap counterpart of :func:`resolve_workload` for input
    validation (the CLI calls this once per name, then the run builds
    the workload once): scenario specs are parsed and their child
    benchmarks looked up, trace paths are only checked for existence.

    Raises:
        KeyError: for an unknown benchmark name.
        ValueError: for a malformed scenario spec or missing trace file.
    """
    prefix, sep, rest = name.partition(":")
    family = prefix.strip().lower() if sep else None
    if family == "trace":
        if not Path(rest).exists():
            raise ValueError(f"trace file not found: {rest}")
        return
    if family == "mix":
        names, _ = _parse_programs(rest, "mix", DEFAULT_MIX_QUANTUM)
    elif family == "phases":
        names, _ = _parse_programs(rest, "phases", DEFAULT_PHASE_QUANTUM)
    else:
        names = [name]
    for child in names:
        get_benchmark(child)


def resolve_workload(name: str, seed: int = 1):
    """Resolve a scenario or trace name; ``None`` for plain benchmarks.

    Raises:
        ValueError: for a malformed scenario spec or unreadable trace.
        KeyError: for an unknown benchmark inside a scenario.
    """
    prefix, sep, rest = name.partition(":")
    if not sep:
        return None
    family = prefix.strip().lower()
    if family == "trace":
        from .tracefile import TraceFileWorkload

        return TraceFileWorkload(rest)
    if family == "mix":
        names, quantum = _parse_programs(rest, "mix", DEFAULT_MIX_QUANTUM)
        return MultiprogrammedWorkload(names, quantum=quantum, seed=seed)
    if family == "phases":
        names, quantum = _parse_programs(rest, "phases", DEFAULT_PHASE_QUANTUM)
        return PhaseShiftingWorkload(names, quantum=quantum, seed=seed)
    return None
