"""The scenario algebra: a recursive workload-composition grammar.

``mix:``/``phases:`` started life (PR 2) as flat lists of benchmark
names.  This module generalises them into a small recursive language
whose expressions denote deterministic micro-op streams, resolvable
everywhere a benchmark name is accepted::

    scenario  := family ":" term ("+" term)* ["@" QUANTUM]
    family    := "mix" | "phases"
    term      := atom modifier*
    atom      := BENCHMARK | "(" scenario ")"
    modifier  := "*" WEIGHT | "~scale=" FLOAT | "~slab=" BITS

Semantics:

* ``mix:`` children are **programs**: they time-share the core in
  round-robin quanta, each in a disjoint address slab and a disjoint
  slice of the architectural registers.
* ``phases:`` children are **behaviour profiles** of one program: the
  stream alternates between them every quantum, sharing one address
  space and the full register file.
* ``(scenario)`` nests: a parenthesised expression is one term of the
  enclosing list, so a ``mix:`` can interleave a ``phases:`` composite
  with a plain benchmark — ``mix:(phases:gcc+mcf@5000)*2+vortex@800``.
* ``*N`` weights a term: it receives ``N`` consecutive quanta per
  round-robin turn (default 1).
* ``~scale=F`` scales the data and instruction footprints of every
  benchmark underneath by ``F`` (pressure shaping: ``0.25`` packs the
  working set into a quarter of the space, ``4.0`` spreads it out).
* ``~slab=B`` folds the addresses of every benchmark underneath into a
  ``2**B``-byte slab (default 40 bits, effectively unlimited); narrow
  slabs alias a program's regions together, raising cache pressure
  without changing the instruction stream shape.

Parsing is strict and *position-annotated*: every syntax error raises
:class:`ScenarioError` (a :class:`ValueError`) carrying the offending
offset, so the CLI, the service's 422 mapping and the loadgen mix parser
all surface "what's wrong, and where" instead of a bare traceback.

The AST is canonicalisable: :func:`unparse` renders any tree to a
normal form (explicit quantum, lower-case names, defaults omitted) with
``parse(unparse(parse(s)))`` an identity — the property the engine's
cache keys rely on via
:func:`repro.workloads.scenarios.workload_identity`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple, Union

__all__ = [
    "Bench",
    "Group",
    "LeafInfo",
    "ScenarioError",
    "DEFAULT_MIX_QUANTUM",
    "DEFAULT_PHASE_QUANTUM",
    "DEFAULT_SLAB_BITS",
    "MAX_LEAVES",
    "MAX_NESTING_DEPTH",
    "analyse",
    "iter_leaves",
    "parse_scenario",
    "scenario_family",
    "unparse",
]

#: Default context-switch quantum (micro-ops) for ``mix:`` lists.
DEFAULT_MIX_QUANTUM = 2000

#: Default phase length (micro-ops) for ``phases:`` lists.
DEFAULT_PHASE_QUANTUM = 1500

#: Default address-slab width: each program owns a 2**40-byte slab,
#: wide enough that synthetic addresses are never folded.
DEFAULT_SLAB_BITS = 40

#: Deepest allowed nesting of parenthesised scenarios.
MAX_NESTING_DEPTH = 8

#: Most benchmark leaves one expression may contain (register slicing
#: needs at least one architectural register per program).
MAX_LEAVES = 16

#: Term-weight ceiling (quanta per round-robin turn).
_MAX_WEIGHT = 16

#: Footprint-scaling bounds.
_MIN_SCALE, _MAX_SCALE = 0.125, 8.0

#: Address-slab width bounds (bits).
_MIN_SLAB, _MAX_SLAB = 20, 40

#: The two composition families.
_FAMILIES = ("mix", "phases")

_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-"
)


class ScenarioError(ValueError):
    """A malformed scenario expression, annotated with its position.

    Attributes:
        text: The full scenario name being parsed.
        position: Zero-based character offset of the defect in ``text``.
    """

    def __init__(self, text: str, message: str, position: int) -> None:
        self.text = text
        self.position = position
        super().__init__(
            f"invalid scenario {text!r}: {message} (at position {position})"
        )


@dataclass(frozen=True)
class Bench:
    """A leaf: one synthetic benchmark, optionally pressure-shaped."""

    name: str
    weight: int = 1
    scale: float = 1.0
    slab: Optional[int] = None


@dataclass(frozen=True)
class Group:
    """A composite: a ``mix:`` or ``phases:`` list of weighted terms."""

    family: str
    children: Tuple["Node", ...]
    quantum: int
    weight: int = 1
    scale: float = 1.0
    slab: Optional[int] = None


Node = Union[Bench, Group]


@dataclass(frozen=True)
class LeafInfo:
    """One benchmark leaf with its resolved composition context.

    Attributes:
        bench: The leaf node itself.
        seed_index: DFS position among the expression's leaves; child
            workload seeds decorrelate as ``seed + 101 * seed_index``,
            exactly like the flat scenarios always have.
        program: The chain of ``mix:`` child indices above this leaf —
            leaves sharing it (siblings under ``phases:``) share one
            address space; distinct chains are distinct programs.
        scale: Effective footprint scaling (modifiers multiply down the
            tree).
        slab: Effective address-slab width in bits (the innermost
            ``~slab`` modifier wins; :data:`DEFAULT_SLAB_BITS` when
            unset).
    """

    bench: Bench
    seed_index: int
    program: Tuple[int, ...]
    scale: float
    slab: int


def scenario_family(name: str) -> Optional[str]:
    """The composition family of ``name`` (``mix``/``phases``), else ``None``."""
    prefix, sep, _ = name.partition(":")
    if not sep:
        return None
    family = prefix.strip().lower()
    return family if family in _FAMILIES else None


def default_quantum(family: str) -> int:
    """The quantum a ``family`` list defaults to when ``@`` is absent."""
    return DEFAULT_MIX_QUANTUM if family == "mix" else DEFAULT_PHASE_QUANTUM


class _Parser:
    """Recursive-descent parser over one scenario name."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- low-level ------------------------------------------------------
    def _fail(self, message: str, position: Optional[int] = None) -> None:
        raise ScenarioError(
            self.text, message, self.pos if position is None else position
        )

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _expect(self, char: str, what: str) -> None:
        if self._peek() != char:
            self._fail(f"expected {char!r} {what}")
        self.pos += 1

    def _word(self, what: str) -> Tuple[str, int]:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            self._fail(f"expected {what}", start)
        return self.text[start : self.pos], start

    def _int(self, what: str, low: int, high: int) -> int:
        word, start = self._word(what)
        try:
            value = int(word)
        except ValueError:
            self._fail(f"{what} must be an integer (got {word!r})", start)
        if not low <= value <= high:
            self._fail(f"{what} must be between {low} and {high} (got {value})", start)
        return value

    def _float(self, what: str, low: float, high: float) -> float:
        word, start = self._word(what)
        try:
            value = float(word)
        except ValueError:
            self._fail(f"{what} must be a number (got {word!r})", start)
        if not low <= value <= high:
            self._fail(f"{what} must be between {low} and {high} (got {value})", start)
        return value

    # -- grammar --------------------------------------------------------
    def parse(self) -> Group:
        root = self._scenario(depth=1)
        self._skip_ws()
        if self.pos != len(self.text):
            self._fail("unexpected trailing text")
        leaves = len(list(iter_leaves(root)))
        if leaves > MAX_LEAVES:
            self._fail(
                f"too many benchmark leaves ({leaves} > {MAX_LEAVES})", 0
            )
        return root

    def _scenario(self, depth: int) -> Group:
        if depth > MAX_NESTING_DEPTH:
            self._fail(f"scenarios nest at most {MAX_NESTING_DEPTH} deep")
        family_word, start = self._word("a scenario family ('mix' or 'phases')")
        family = family_word.lower()
        if family not in _FAMILIES:
            self._fail(
                f"unknown scenario family {family_word!r} "
                "(expected 'mix' or 'phases')",
                start,
            )
        self._expect(":", f"after {family!r}")
        terms = [self._term(depth)]
        while self._peek() == "+":
            self.pos += 1
            terms.append(self._term(depth))
        quantum = default_quantum(family)
        if self._peek() == "@":
            self.pos += 1
            quantum = self._int("quantum", 1, 10_000_000)
        if len(terms) < 2:
            self._fail(
                f"{family}: lists take at least two '+'-separated terms", start
            )
        return Group(family=family, children=tuple(terms), quantum=quantum)

    def _term(self, depth: int) -> Node:
        if self._peek() == "(":
            self.pos += 1
            node: Node = self._scenario(depth + 1)
            self._expect(")", "to close the nested scenario")
        else:
            word, start = self._word("a benchmark name or '('")
            node = Bench(name=word.lower())
        return self._modifiers(node)

    def _modifiers(self, node: Node) -> Node:
        weight: Optional[int] = None
        scale: Optional[float] = None
        slab: Optional[int] = None
        while True:
            char = self._peek()
            if char == "*":
                if weight is not None:
                    self._fail("duplicate weight modifier")
                self.pos += 1
                weight = self._int("weight", 1, _MAX_WEIGHT)
            elif char == "~":
                self.pos += 1
                key, start = self._word("a modifier name ('scale' or 'slab')")
                self._expect("=", f"after modifier {key!r}")
                if key == "scale":
                    if scale is not None:
                        self._fail("duplicate scale modifier", start)
                    scale = self._float("scale", _MIN_SCALE, _MAX_SCALE)
                elif key == "slab":
                    if slab is not None:
                        self._fail("duplicate slab modifier", start)
                    slab = self._int("slab", _MIN_SLAB, _MAX_SLAB)
                else:
                    self._fail(
                        f"unknown modifier {key!r} (expected 'scale' or 'slab')",
                        start,
                    )
            else:
                break
        return replace(
            node,
            weight=1 if weight is None else weight,
            scale=1.0 if scale is None else scale,
            slab=slab,
        )


def parse_scenario(name: str) -> Optional[Group]:
    """Parse a scenario name into its AST.

    Returns ``None`` when ``name`` does not start with a composition
    family prefix (plain benchmarks, ``trace:`` and ``fuzz:`` names are
    some other layer's business).

    Raises:
        ScenarioError: for a malformed expression, with the offending
            position.
    """
    if scenario_family(name) is None:
        return None
    return _Parser(name).parse()


def _render_float(value: float) -> str:
    # repr() round-trips every float exactly in Python 3, so the
    # canonical form parses back to the identical AST.
    rendered = repr(value)
    return rendered[:-2] if rendered.endswith(".0") else rendered


def _unparse_term(node: Node) -> str:
    if isinstance(node, Bench):
        text = node.name
    else:
        text = f"({unparse(node)})"
    if node.scale != 1.0:
        text += f"~scale={_render_float(node.scale)}"
    if node.slab is not None:
        text += f"~slab={node.slab}"
    if node.weight != 1:
        text += f"*{node.weight}"
    return text


def unparse(root: Group) -> str:
    """Render an AST to its canonical name (always parses back equal).

    The canonical form lower-cases names, renders the quantum
    explicitly, orders modifiers ``~scale``, ``~slab``, ``*weight`` and
    omits defaults, so syntactically different spellings of the same
    expression share one canonical string — the engine and trace caches
    key on it.
    """
    body = "+".join(_unparse_term(child) for child in root.children)
    return f"{root.family}:{body}@{root.quantum}"


def iter_leaves(root: Group):
    """Yield the expression's :class:`Bench` leaves in DFS order."""
    for child in root.children:
        if isinstance(child, Bench):
            yield child
        else:
            yield from iter_leaves(child)


def analyse(root: Group) -> Tuple[List[LeafInfo], List[Tuple[int, ...]]]:
    """Resolve the composition context of every leaf.

    Returns ``(leaves, programs)``: the leaves in DFS order with their
    effective scale/slab/program, and the ordered distinct programs
    (chains of ``mix:`` child indices).  A pure ``phases:`` tree has a
    single program — no address or register translation — matching the
    flat scenarios' long-standing semantics.
    """
    leaves: List[LeafInfo] = []
    programs: List[Tuple[int, ...]] = []

    def walk(
        node: Node, program: Tuple[int, ...], scale: float, slab: Optional[int]
    ) -> None:
        scale *= node.scale
        if node.slab is not None:
            slab = node.slab
        if isinstance(node, Bench):
            if program not in programs:
                programs.append(program)
            leaves.append(
                LeafInfo(
                    bench=node,
                    seed_index=len(leaves),
                    program=program,
                    scale=scale,
                    slab=DEFAULT_SLAB_BITS if slab is None else slab,
                )
            )
            return
        for index, child in enumerate(node.children):
            child_program = (
                program + (index,) if node.family == "mix" else program
            )
            walk(child, child_program, scale, slab)

    # The root's own modifiers are grammatically impossible (terms only
    # carry them), so the walk starts neutral.
    for index, child in enumerate(root.children):
        walk(
            child,
            (index,) if root.family == "mix" else (),
            1.0,
            None,
        )
    return leaves, programs
