"""Deterministic failpoints: named fault-injection sites for chaos testing.

Every recovery path in the stack (engine pool rebuild, store quarantine,
journal torn-line replay, scheduler unit retry, client backoff) is
exercised through *failpoints*: named sites where production code asks
this module whether an injected fault should fire.  With no plan
installed — the production default — :func:`check` is a two-instruction
no-op (one global load, one ``is None`` test), so the hot path pays
nothing.

A :class:`FaultPlan` maps sites to :class:`FaultRule` schedules and is
fully deterministic: each site draws from its own ``random.Random``
seeded with ``"{plan.seed}:{site}"`` (string seeds hash through SHA-512,
stable across processes and ``PYTHONHASHSEED``), so a failing chaos
trial replays exactly from its seed.

Plans travel as compact spec strings::

    seed=7;engine.chunk=crash:p=0.5,max=1;store.put=torn:n=2

and are activated per-process three ways:

* programmatically — ``faults.install(plan)`` / ``faults.clear()``;
* by CLI — ``repro serve --faults SPEC``;
* by environment — ``REPRO_FAULTS=SPEC`` (read at import, so spawned
  worker processes and subprocess servers pick the plan up; forked
  engine workers inherit the installed plan directly).

The site catalogue (:data:`SITES`) names every failpoint and its legal
actions; :meth:`FaultPlan.parse` rejects anything outside it, so a typo
in a chaos spec fails fast instead of silently injecting nothing.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "SITES",
    "FaultHit",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_spec",
    "check",
    "clear",
    "install",
    "trip",
]

#: Environment variable carrying a plan spec for subprocess activation.
ENV_VAR = "REPRO_FAULTS"

#: Injected sleeps are bounded so a chaos campaign cannot wedge itself.
MAX_DELAY_S = 5.0

#: Default injected sleep for hang/slow/stall actions, seconds.
DEFAULT_DELAY_S = 0.05

#: Every failpoint site and the actions its host code interprets.
SITES: Dict[str, Tuple[str, ...]] = {
    # Worker-side, inside the pool: kill the worker process outright,
    # raise from the task, or sleep mid-chunk.
    "engine.chunk": ("crash", "raise", "hang"),
    # Result-store writes: publish a truncated entry, publish a
    # digest-mismatched entry, fail the write, or stall it.
    "store.put": ("torn", "corrupt", "error", "slow"),
    # Result-store reads: fail (treated as a miss) or stall.
    "store.get": ("error", "slow"),
    # Journal appends: tear the line mid-write (fsync lost) or fail
    # before writing anything.
    "journal.append": ("torn", "error"),
    # Scheduler unit execution: raise before the engine runs, or set
    # the job's cancel event as a timeout storm would.
    "scheduler.unit": ("raise", "timeout"),
    # HTTP responses: answer 503, or drop the connection unanswered.
    "server.response": ("error", "drop"),
    # Client requests: fail as a transport error, or stall before
    # sending.
    "client.request": ("drop", "stall"),
}


class FaultInjected(RuntimeError):
    """An injected failure (the ``raise``/``error`` actions)."""

    def __init__(self, site: str, action: str = "raise") -> None:
        super().__init__(f"injected fault at {site} ({action})")
        self.site = site
        self.action = action


@dataclass(frozen=True)
class FaultHit:
    """One fired failpoint: what the host code should do."""

    site: str
    action: str
    delay: float = DEFAULT_DELAY_S


@dataclass(frozen=True)
class FaultRule:
    """Schedule for one site.

    Attributes:
        site / action: Where and what (validated against :data:`SITES`).
        p: Independent fire probability per check (1.0 = always).
        n: Fire exactly once, on the n-th check (overrides ``p``).
        max_fires: Stop firing after this many hits (``None`` = no cap).
        delay: Sleep length for hang/slow/stall actions, seconds.
    """

    site: str
    action: str
    p: float = 1.0
    n: Optional[int] = None
    max_fires: Optional[int] = None
    delay: float = DEFAULT_DELAY_S

    def __post_init__(self) -> None:
        actions = SITES.get(self.site)
        if actions is None:
            raise ValueError(
                f"unknown failpoint site {self.site!r}; "
                f"known: {', '.join(sorted(SITES))}"
            )
        if self.action not in actions:
            raise ValueError(
                f"site {self.site!r} does not support action {self.action!r}; "
                f"supported: {', '.join(actions)}"
            )
        if not 0.0 < self.p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {self.p}")
        if self.n is not None and self.n < 1:
            raise ValueError("n must be at least 1")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max must be at least 1")
        if not 0.0 <= self.delay <= MAX_DELAY_S:
            raise ValueError(f"delay must be in [0, {MAX_DELAY_S}]")

    def to_spec(self) -> str:
        parts = []
        if self.p != 1.0:
            parts.append(f"p={self.p:g}")
        if self.n is not None:
            parts.append(f"n={self.n}")
        if self.max_fires is not None:
            parts.append(f"max={self.max_fires}")
        if self.delay != DEFAULT_DELAY_S:
            parts.append(f"delay={self.delay:g}")
        spec = f"{self.site}={self.action}"
        return spec + (":" + ",".join(parts) if parts else "")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of per-site rules; the unit a chaos trial installs."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen = set()
        for rule in self.rules:
            if rule.site in seen:
                raise ValueError(f"duplicate rule for site {rule.site!r}")
            seen.add(rule.site)

    def rule_for(self, site: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.site == site:
                return rule
        return None

    def to_spec(self) -> str:
        """The compact string form; :meth:`parse` round-trips it."""
        return ";".join(
            [f"seed={self.seed}"] + [rule.to_spec() for rule in self.rules]
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``seed=N;site=action[:k=v,...];...`` into a plan.

        Raises:
            ValueError: for an unknown site/action, a malformed
                segment, or an out-of-range parameter — chaos specs
                must fail loudly, never inject nothing by accident.
        """
        seed = 0
        rules = []
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if "=" not in segment:
                raise ValueError(f"malformed failpoint segment {segment!r}")
            left, _, right = segment.partition("=")
            left = left.strip()
            if left == "seed":
                try:
                    seed = int(right)
                except ValueError:
                    raise ValueError(f"malformed seed {right!r}") from None
                continue
            action, _, params = right.partition(":")
            kwargs: Dict[str, Union[float, int]] = {}
            if params:
                for pair in params.split(","):
                    if "=" not in pair:
                        raise ValueError(
                            f"malformed parameter {pair!r} in {segment!r}"
                        )
                    key, _, value = pair.partition("=")
                    key = key.strip()
                    try:
                        if key == "p":
                            kwargs["p"] = float(value)
                        elif key == "n":
                            kwargs["n"] = int(value)
                        elif key == "max":
                            kwargs["max_fires"] = int(value)
                        elif key == "delay":
                            kwargs["delay"] = float(value)
                        else:
                            raise ValueError(
                                f"unknown failpoint parameter {key!r}"
                            )
                    except ValueError as error:
                        raise ValueError(
                            f"bad parameter {pair!r} in {segment!r}: {error}"
                        ) from None
            rules.append(FaultRule(site=left, action=action.strip(), **kwargs))
        return cls(seed=seed, rules=tuple(rules))


class _SiteState:
    """Per-site runtime counters and RNG (reset on every install)."""

    __slots__ = ("rng", "checks", "fires")

    def __init__(self, seed: int, site: str) -> None:
        # A string seed hashes through SHA-512: stable across processes.
        self.rng = random.Random(f"{seed}:{site}")
        self.checks = 0
        self.fires = 0


_PLAN: Optional[FaultPlan] = None
_STATE: Dict[str, _SiteState] = {}
_LOCK = threading.Lock()


def install(plan: Union[FaultPlan, str]) -> FaultPlan:
    """Activate a plan in this process (replacing any previous one).

    Counters and RNG state reset, so installing the same plan twice
    yields the same fault schedule twice.  Returns the installed plan.
    """
    global _PLAN
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    with _LOCK:
        _STATE.clear()
        for rule in plan.rules:
            _STATE[rule.site] = _SiteState(plan.seed, rule.site)
        _PLAN = plan
    return plan


def clear() -> None:
    """Deactivate fault injection in this process (idempotent)."""
    global _PLAN
    with _LOCK:
        _PLAN = None
        _STATE.clear()


def active_spec() -> Optional[str]:
    """The installed plan's spec string, or ``None``."""
    plan = _PLAN
    return None if plan is None else plan.to_spec()


def check(site: str) -> Optional[FaultHit]:
    """Should an injected fault fire at ``site`` right now?

    The production fast path: with no plan installed this returns
    ``None`` after a single global read.  With a plan installed the
    site's schedule (probability / n-th check / fire cap) is consulted
    under a lock, deterministically.
    """
    plan = _PLAN
    if plan is None:
        return None
    rule = plan.rule_for(site)
    if rule is None:
        # Only reached with a plan armed, so the catalogue lookup costs
        # the production path nothing — and a typo at a call site fails
        # the chaos run loudly instead of silently injecting nothing.
        if site not in SITES:
            raise ValueError(f"unknown failpoint site {site!r}")
        return None
    with _LOCK:
        state = _STATE.get(site)
        if state is None:  # plan swapped concurrently
            return None
        state.checks += 1
        if rule.max_fires is not None and state.fires >= rule.max_fires:
            return None
        if rule.n is not None:
            if state.checks != rule.n:
                return None
        elif rule.p < 1.0 and state.rng.random() >= rule.p:
            return None
        state.fires += 1
    return FaultHit(site=site, action=rule.action, delay=rule.delay)


def trip(site: str) -> Optional[FaultHit]:
    """Check ``site`` and act on the generic actions in place.

    ``crash`` exits the process without cleanup (``os._exit``, the
    SIGKILL-alike for a worker), ``hang``/``slow``/``stall`` sleep the
    rule's bounded delay, and ``raise``/``error`` raise
    :class:`FaultInjected`.  Site-specific actions (``torn`` writes
    etc.) are returned for the caller to interpret; so are the sleeps,
    in case the caller wants to log them.
    """
    hit = check(site)
    if hit is None:
        return None
    if hit.action == "crash":
        os._exit(87)
    if hit.action in ("hang", "slow", "stall"):
        time.sleep(min(hit.delay, MAX_DELAY_S))
        return hit
    if hit.action in ("raise", "error"):
        raise FaultInjected(site, hit.action)
    return hit


# Subprocess activation: a spawned worker or a `repro serve` child reads
# the plan from the environment at import.  A malformed spec raises here
# — better a loud ImportError in the chaos harness than a silent no-op.
_env_spec = os.environ.get(ENV_VAR)
if _env_spec:
    install(_env_spec)
del _env_spec
