"""Bitline precharge / equalisation device model.

The precharge devices sit between the supply rail and the bitlines
(Figure 1).  Two of their properties matter for the paper's trade-offs:

* They are *large* — "typically an order of magnitude larger than cell
  transistors" — so toggling them (as bitline isolation must do) costs
  significant gate-switching energy, and induces a current spike on the
  bitlines (Figure 2 / Section 4).
* Their size sets the worst-case bitline pull-up delay (Table 3): a
  bigger device pulls up faster but costs more switching energy and,
  because static pull-up fights the cell's read current, slows the read
  differential development if made too big.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import TechnologyNode

__all__ = ["PrechargeDevice", "DEFAULT_SIZE_RATIO"]

#: Paper assumption (Section 5): precharge devices are a factor of ten
#: larger than the cell transistors.
DEFAULT_SIZE_RATIO = 10.0


@dataclass(frozen=True)
class PrechargeDevice:
    """A PMOS precharge device on one bitline.

    Attributes:
        tech: Technology node.
        width_um: Drawn width of the device in microns.
    """

    tech: TechnologyNode
    width_um: float

    @classmethod
    def sized_from_cell(
        cls,
        tech: TechnologyNode,
        cell_access_width_um: float,
        size_ratio: float = DEFAULT_SIZE_RATIO,
    ) -> "PrechargeDevice":
        """Size the device as ``size_ratio`` times the cell access transistor."""
        if size_ratio <= 0:
            raise ValueError("size_ratio must be positive")
        return cls(tech=tech, width_um=cell_access_width_um * size_ratio)

    # ------------------------------------------------------------------
    # Switching (isolation toggle) cost
    # ------------------------------------------------------------------
    @property
    def gate_cap_f(self) -> float:
        """Gate capacitance of the device in farads."""
        return self.tech.gate_cap_ff_per_um * self.width_um * 1e-15

    @property
    def switching_energy_j(self) -> float:
        """Energy (J) to toggle the device's gate once (on->off or off->on)."""
        vdd = self.tech.supply_voltage
        return 0.5 * self.gate_cap_f * vdd * vdd

    # ------------------------------------------------------------------
    # Drive strength
    # ------------------------------------------------------------------
    @property
    def drive_current_a(self) -> float:
        """Pull-up drive current (A) when the device is on."""
        # PMOS drive per um is roughly half of NMOS.
        ion_a_per_um = 0.5 * self.tech.on_current_ua_per_um * 1e-6
        return ion_a_per_um * self.width_um

    def pull_up_time_s(self, bitline_cap_f: float, swing_v: float) -> float:
        """Time (s) to pull a bitline of capacitance ``bitline_cap_f`` up by ``swing_v``.

        First-order constant-current estimate ``t = C * dV / I`` with a
        1.6x de-rating to account for the PMOS drive degrading as the
        bitline approaches Vdd.
        """
        if bitline_cap_f < 0 or swing_v < 0:
            raise ValueError("capacitance and swing must be non-negative")
        if swing_v == 0.0 or bitline_cap_f == 0.0:
            return 0.0
        return 1.6 * bitline_cap_f * swing_v / self.drive_current_a

    @property
    def off_leakage_current_a(self) -> float:
        """Residual leakage (A) through the device when turned off."""
        ioff_a_per_um = self.tech.leakage_current_na_per_um * 1e-9
        return ioff_a_per_um * self.width_um
