"""Post-isolation bitline power transient (Figure 2).

Figure 2 of the paper plots the power dissipated *through the bitlines* of
a 1KB subarray as a function of time after the precharge devices are
turned off at t = 0, for each technology node, normalised to that node's
own static-pull-up bitline power.

Two components make up the transient:

1. **Switching spike** — the large precharge devices are toggled off; the
   charge displaced by their gates and the ensuing current redistribution
   flows through the bitlines.  The paper measures this overhead at up to
   195% of the static pull-up power in 180nm.  Scaling theory (Borkar)
   says switching power halves per generation while leakage grows 3.5x, so
   the spike *relative to the static (leakage) baseline* shrinks by ~7x
   per generation and is insignificant by 70nm.
2. **Leakage decay** — once isolated, the bitline voltage decays through
   the cell leakage paths; the discharge power decays as ``G * V(t)^2``
   from 100% of the static value towards the (approximately fully
   discharged) steady state.

We anchor the spike amplitude at the paper's 180nm measurement and scale
it across nodes with the physical switching-to-leakage ratio; the leakage
decay comes directly from the :class:`~repro.circuits.bitline.Bitline` RC
model.  The result reproduces the Figure 2 shape: a tall, slow transient
at 180nm and a negligible, fast-settling one at 70nm.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp
from typing import List

from .bitline import Bitline
from .technology import TechnologyNode, get_technology

__all__ = ["IsolationTransient", "isolation_transient", "TransientPoint"]

#: Peak *total* normalised bitline power measured by the paper at 180nm
#: immediately after isolation (195% of the static pull-up power).
_PEAK_NORMALIZED_POWER_180NM = 1.95

#: The switching spike amplitude above the leakage baseline at 180nm.
_SPIKE_AMPLITUDE_180NM = _PEAK_NORMALIZED_POWER_180NM - 1.0

#: The injected charge bleeds away through the same leakage paths as the
#: bitline itself, but from a boosted starting point; the effective spike
#: time constant is this fraction of the bitline decay constant.
_SPIKE_TAU_FRACTION = 0.05


@dataclass(frozen=True)
class TransientPoint:
    """One sample of the post-isolation transient."""

    time_s: float
    normalized_power: float


@dataclass(frozen=True)
class IsolationTransient:
    """The post-isolation bitline power transient of one subarray.

    Attributes:
        tech: Technology node.
        bitline: The bitline model the transient is computed for.
        peak_normalized_power: Peak power relative to static pull-up
            (``1.95`` at 180nm per the paper; near the leakage baseline of
            1.0 at 70nm).
        switching_overhead: Peak power *above* the leakage baseline,
            relative to static pull-up — the isolation "energy overhead".
        settling_time_s: Time for the normalised power to fall below 5%.
        samples: Time series of normalised power.
    """

    tech: TechnologyNode
    bitline: Bitline
    peak_normalized_power: float
    switching_overhead: float
    settling_time_s: float
    samples: List[TransientPoint]

    @property
    def settles_within_cycle(self) -> bool:
        """Whether the transient settles within one clock cycle."""
        return self.settling_time_s <= self.tech.cycle_time_s

    def power_at(self, time_s: float) -> float:
        """Normalised power at an arbitrary time (recomputed analytically)."""
        return _normalized_power(self.bitline, self.tech, time_s)


def spike_amplitude(tech: TechnologyNode) -> float:
    """Switching-spike amplitude (normalised to static pull-up) for ``tech``.

    Anchored at the paper's 180nm measurement and scaled with the
    switching-to-leakage power ratio (x0.5 / x3.5 per generation).
    """
    base = get_technology(180)
    generations = tech.generation_index - base.generation_index
    ratio = (tech.relative_switching / tech.relative_leakage)
    del generations
    return _SPIKE_AMPLITUDE_180NM * ratio


def _normalized_power(bitline: Bitline, tech: TechnologyNode, t_s: float) -> float:
    """Normalised bitline power ``t_s`` seconds after isolation."""
    tau = bitline.decay_time_constant_s
    leak = exp(-2.0 * t_s / tau)
    spike_tau = _SPIKE_TAU_FRACTION * tau
    spike = spike_amplitude(tech) * exp(-t_s / spike_tau)
    return leak + spike


def isolation_transient(
    tech: TechnologyNode,
    subarray_bytes: int = 1024,
    line_bytes: int = 32,
    ports: int = 1,
    duration_s: float = 600e-9,
    samples: int = 241,
) -> IsolationTransient:
    """Compute the Figure 2 transient for a subarray in ``tech``.

    Args:
        tech: Technology node.
        subarray_bytes: Subarray capacity (the paper uses 1KB).
        line_bytes: Cache line size; sets the rows-per-subarray count.
        ports: Number of cache ports.
        duration_s: Length of the simulated window (Figure 2 spans ~600ns).
        samples: Number of evenly spaced samples.

    Returns:
        An :class:`IsolationTransient` with the normalised power series.
    """
    if samples < 2:
        raise ValueError("need at least two samples")
    if duration_s <= 0:
        raise ValueError("duration must be positive")

    rows = max(1, subarray_bytes // line_bytes)
    bitline = Bitline(tech=tech, rows=rows, ports=ports)

    points: List[TransientPoint] = []
    peak = 0.0
    settling = duration_s
    settled = False
    for i in range(samples):
        t = duration_s * i / (samples - 1)
        p = _normalized_power(bitline, tech, t)
        points.append(TransientPoint(time_s=t, normalized_power=p))
        peak = max(peak, p)
        if not settled and p < 0.05:
            settling = t
            settled = True

    return IsolationTransient(
        tech=tech,
        bitline=bitline,
        peak_normalized_power=peak,
        switching_overhead=spike_amplitude(tech),
        settling_time_s=settling,
        samples=points,
    )
