"""CACTI-style three-stage cache address decoder timing model.

Figure 4 of the paper breaks the cache decoder into three stages:

1. **Decoder drive** — the address is driven from the cache input across
   the array to the per-subarray decoders (dominated by wire/driver
   loading that grows with the number of subarrays).
2. **Predecode** — each subarray splits the address into 3-bit groups and
   produces 8-bit one-hot codes via 3-to-8 decoders.
3. **Final decode** — NOR gates combine the one-hot codes and fire the
   selected wordline driver.

*Partial* address decoding — the mechanism on-demand precharging would use
to identify the accessed subarray — needs stage 1 and stage 2 (and, when
the cache has more than eight subarrays, part of stage 3's combining).
The time left to pull up an isolated bitline before the wordline fires is
therefore at most the stage-3 delay.  Table 3 shows that the worst-case
bitline pull-up always exceeds this margin, which is the paper's argument
that on-demand precharging costs a cycle.

The stage delays are expressed in FO4 units with loading terms that depend
on the number of subarrays and rows, calibrated to track Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from .technology import TechnologyNode

__all__ = ["DecoderTiming", "decoder_timing"]

#: FO4 counts for the three stages: a fixed intrinsic part plus a term
#: growing with log2 of the relevant fan-out/fan-in.
_DRIVE_BASE_FO4 = 1.0
_DRIVE_PER_LOG2_SUBARRAY_FO4 = 0.6
_PREDECODE_BASE_FO4 = 2.5
_PREDECODE_PER_LOG2_SUBARRAY_FO4 = 0.4
_FINAL_BASE_FO4 = 2.2
_FINAL_PER_LOG2_SUBARRAY_FO4 = 0.2

#: Wires scale slightly worse than gates; each successive generation adds
#: this relative amount to every stage's FO4 count.
_WIRE_PENALTY_PER_GENERATION = 0.05

#: Maximum number of subarrays whose identification completes exactly at
#: the end of predecode; beyond this the partial decode needs extra
#: combining NOR levels (Section 5).
MAX_SUBARRAYS_WITHOUT_COMBINE = 8

#: Extra FO4 per doubling of subarrays beyond eight, spent combining
#: predecode outputs to identify the accessed subarray.
_COMBINE_PER_LOG2_FO4 = 0.5


@dataclass(frozen=True)
class DecoderTiming:
    """Decode-stage delays for one cache organisation and technology.

    All delays are in seconds.

    Attributes:
        tech: Technology node.
        n_subarrays: Number of subarrays in the cache.
        rows_per_subarray: Number of wordlines in each subarray.
        decode_drive_s: Stage-1 delay.
        predecode_s: Stage-2 delay.
        final_decode_s: Stage-3 delay.
        subarray_identify_s: Delay until partial decoding has identified
            the accessed subarray (stage 1 + stage 2 + any extra combining).
    """

    tech: TechnologyNode
    n_subarrays: int
    rows_per_subarray: int
    decode_drive_s: float
    predecode_s: float
    final_decode_s: float
    subarray_identify_s: float

    @property
    def total_decode_s(self) -> float:
        """Full address decode latency (all three stages) in seconds."""
        return self.decode_drive_s + self.predecode_s + self.final_decode_s

    @property
    def precharge_margin_s(self) -> float:
        """Time available to precharge after the subarray is identified.

        This is the slack between partial-decode completion and wordline
        assertion — the window into which on-demand precharging must fit.
        """
        return self.total_decode_s - self.subarray_identify_s

    def on_demand_fits(self, pull_up_s: float) -> bool:
        """Whether a worst-case pull-up of ``pull_up_s`` hides in the margin."""
        return pull_up_s <= self.precharge_margin_s


def decoder_timing(
    tech: TechnologyNode,
    n_subarrays: int,
    rows_per_subarray: int,
) -> DecoderTiming:
    """Compute the three-stage decode delays for a cache organisation.

    Args:
        tech: Technology node.
        n_subarrays: Number of subarrays the cache is divided into.
        rows_per_subarray: Wordlines per subarray.

    Returns:
        A :class:`DecoderTiming` with per-stage delays in seconds.

    Raises:
        ValueError: if the organisation is degenerate.
    """
    if n_subarrays < 1:
        raise ValueError("a cache needs at least one subarray")
    if rows_per_subarray < 1:
        raise ValueError("a subarray needs at least one row")

    fo4_s = tech.fo4_delay_ps * 1e-12
    wire_penalty = 1.0 + _WIRE_PENALTY_PER_GENERATION * tech.generation_index
    log_sub = log2(max(n_subarrays, 1)) if n_subarrays > 1 else 0.0

    drive = (_DRIVE_BASE_FO4 + _DRIVE_PER_LOG2_SUBARRAY_FO4 * log_sub) * fo4_s
    predecode = (
        _PREDECODE_BASE_FO4 + _PREDECODE_PER_LOG2_SUBARRAY_FO4 * log_sub
    ) * fo4_s
    final = (_FINAL_BASE_FO4 + _FINAL_PER_LOG2_SUBARRAY_FO4 * log_sub) * fo4_s

    drive *= wire_penalty
    predecode *= wire_penalty
    final *= wire_penalty

    identify = drive + predecode
    if n_subarrays > MAX_SUBARRAYS_WITHOUT_COMBINE:
        extra_levels = log2(n_subarrays / MAX_SUBARRAYS_WITHOUT_COMBINE)
        identify += _COMBINE_PER_LOG2_FO4 * extra_levels * fo4_s * wire_penalty

    return DecoderTiming(
        tech=tech,
        n_subarrays=n_subarrays,
        rows_per_subarray=rows_per_subarray,
        decode_drive_s=drive,
        predecode_s=predecode,
        final_decode_s=final,
        subarray_identify_s=identify,
    )
