"""Subarray-level aggregation of the circuit models.

A *subarray* is the unit at which precharge control is applied.  This
module aggregates the per-bitline/per-column circuit quantities into the
per-subarray numbers the architectural energy accounting consumes:

* static bitline-discharge energy per cycle when the subarray is pulled up;
* residual discharge energy over an isolated interval of N cycles;
* energy to toggle the subarray's precharge devices (isolate + restore);
* dynamic energy of one access (decode + sense + read restore);
* worst-case pull-up latency in cycles (i.e. the penalty paid when an
  isolated subarray is accessed).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache
from math import ceil
from typing import Dict

from .bitline import Bitline
from .decoder import DecoderTiming, decoder_timing
from .sense_amp import SenseAmplifier
from .technology import TechnologyNode, get_technology

__all__ = ["SubarrayCircuit", "subarray_circuit"]


@dataclass(frozen=True)
class SubarrayCircuit:
    """Circuit-level characterisation of one cache subarray.

    Attributes:
        tech: Technology node.
        subarray_bytes: Capacity of the subarray in bytes.
        line_bytes: Cache line (and row) width in bytes.
        ports: Number of read/write ports.
        n_subarrays: Number of subarrays in the whole cache (needed for
            the decoder timing and partial-decode margin).
    """

    tech: TechnologyNode
    subarray_bytes: int
    line_bytes: int
    ports: int
    n_subarrays: int

    def __post_init__(self) -> None:
        if self.subarray_bytes < self.line_bytes:
            raise ValueError("a subarray must hold at least one cache line")
        if self.line_bytes <= 0:
            raise ValueError("line size must be positive")
        if self.ports < 1:
            raise ValueError("ports must be >= 1")
        if self.n_subarrays < 1:
            raise ValueError("n_subarrays must be >= 1")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of wordlines (one cache line per row)."""
        return self.subarray_bytes // self.line_bytes

    @property
    def columns(self) -> int:
        """Number of bit columns in the subarray."""
        return self.line_bytes * 8

    @property
    def bitlines_per_column(self) -> int:
        """Physical bitlines per column (a pair per port)."""
        return 2 * self.ports

    @property
    def total_bitlines(self) -> int:
        """Total physical bitlines in the subarray."""
        return self.columns * self.bitlines_per_column

    # ------------------------------------------------------------------
    # Component models
    # ------------------------------------------------------------------
    @cached_property
    def bitline(self) -> Bitline:
        """The representative bitline of this subarray."""
        return Bitline(tech=self.tech, rows=self.rows, ports=self.ports)

    @cached_property
    def sense_amp(self) -> SenseAmplifier:
        """The column sense amplifier."""
        return SenseAmplifier(tech=self.tech)

    @cached_property
    def decoder(self) -> DecoderTiming:
        """Decoder timing for the cache this subarray belongs to."""
        return decoder_timing(
            tech=self.tech,
            n_subarrays=self.n_subarrays,
            rows_per_subarray=self.rows,
        )

    # ------------------------------------------------------------------
    # Static (discharge) energy
    # ------------------------------------------------------------------
    @cached_property
    def static_discharge_power_w(self) -> float:
        """Bitline discharge power (W) of the whole subarray when pulled up."""
        return self.total_bitlines * self.bitline.static_discharge_power_w

    @cached_property
    def static_discharge_energy_per_cycle_j(self) -> float:
        """Bitline discharge energy (J) per clock cycle when pulled up."""
        return self.static_discharge_power_w * self.tech.cycle_time_s

    @cached_property
    def _isolated_energy_memo(self) -> "Dict[float, float]":
        # Inter-access gap lengths repeat heavily within a run, and this
        # integral sits on the architectural simulation's innermost loop;
        # memoising per distinct gap returns the identical float object,
        # so results stay bit-for-bit equal to the uncached computation.
        return {}

    def isolated_discharge_energy_j(self, idle_cycles: float) -> float:
        """Residual bitline discharge (J) over ``idle_cycles`` of isolation.

        The discharge decays with the bitline RC; short isolations save
        little, long isolations are bounded by the stored bitline charge.
        """
        if idle_cycles < 0:
            raise ValueError("idle_cycles must be non-negative")
        memo = self._isolated_energy_memo
        energy = memo.get(idle_cycles)
        if energy is None:
            idle_s = idle_cycles * self.tech.cycle_time_s
            energy = self.total_bitlines * self.bitline.isolated_discharge_energy_j(idle_s)
            memo[idle_cycles] = energy
        return energy

    # ------------------------------------------------------------------
    # Isolation toggle overhead
    # ------------------------------------------------------------------
    @cached_property
    def toggle_switching_energy_j(self) -> float:
        """Gate energy (J) of one isolate-then-restore toggle of all devices."""
        return self.total_bitlines * self.bitline.isolation_toggle_energy_j

    def recharge_energy_j(self, idle_cycles: float) -> float:
        """Supply energy (J) to re-precharge all bitlines after isolation."""
        if idle_cycles < 0:
            raise ValueError("idle_cycles must be non-negative")
        idle_s = idle_cycles * self.tech.cycle_time_s
        return self.total_bitlines * self.bitline.recharge_energy_j(idle_s)

    # ------------------------------------------------------------------
    # Dynamic access energy
    # ------------------------------------------------------------------
    @cached_property
    def read_access_energy_j(self) -> float:
        """Dynamic energy (J) of one read access to this subarray.

        Includes wordline/decode switching, the read restore of every
        active bitline pair, and the sense amplifiers.
        """
        vdd = self.tech.supply_voltage
        bl = self.bitline
        restore = self.columns * self.ports * bl.cell.read_discharge_energy_j(
            bl.capacitance_f
        )
        sensing = self.columns * self.sense_amp.energy_per_read_j
        # Decode + wordline: approximate as switching a wordline wire across
        # all columns plus a decoder gate per address bit.
        wordline_cap = (
            self.columns
            * self.tech.gate_cap_ff_per_um
            * 2.0
            * self.tech.feature_size_um
            * 1e-15
        )
        decode = 4.0 * wordline_cap * vdd * vdd
        return restore + sensing + decode

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @cached_property
    def worst_case_pull_up_s(self) -> float:
        """Worst-case bitline pull-up time in seconds (Table 3)."""
        return self.bitline.worst_case_pull_up_s

    @cached_property
    def pull_up_cycles(self) -> int:
        """Extra cycles to access an isolated (possibly discharged) subarray.

        Table 3 shows the pull-up always exceeds the final-decode margin,
        so an access to an isolated subarray pays at least one extra cycle.
        """
        margin = self.decoder.precharge_margin_s
        excess = self.worst_case_pull_up_s - margin
        if excess <= 0:
            return 0
        return max(1, int(ceil(excess / self.tech.cycle_time_s)))


@lru_cache(maxsize=None)
def subarray_circuit(
    feature_size_nm: int,
    subarray_bytes: int,
    line_bytes: int = 32,
    ports: int = 1,
    n_subarrays: int = 32,
) -> SubarrayCircuit:
    """Cached constructor for :class:`SubarrayCircuit`.

    The architectural simulator asks for the same handful of
    configurations millions of times; caching keeps that cheap.
    """
    return SubarrayCircuit(
        tech=get_technology(feature_size_nm),
        subarray_bytes=subarray_bytes,
        line_bytes=line_bytes,
        ports=ports,
        n_subarrays=n_subarrays,
    )
