"""CMOS technology-node models.

The paper evaluates four technology generations (Table 1): 180nm, 130nm,
100nm and 70nm.  For each node the relevant quantities are the supply
voltage, the clock frequency (scaled to an aggressive 8-FO4 cycle time),
and the relative balance between dynamic (switching) power and
subthreshold leakage power.  The paper cites Borkar's scaling rules [3]:
with each generation the switching power of a device halves while its
leakage power grows by a factor of 3.5.

This module encodes those published parameters and derives the first-order
device quantities the rest of :mod:`repro.circuits` needs: gate
capacitance per unit width, wire capacitance per unit length, on-current
and subthreshold leakage current per unit transistor width, and the FO4
inverter delay that anchors every timing number.

The absolute values are calibrated so that the 180nm node reproduces
widely published textbook figures (FO4 ~ 65 ps, Ion ~ 600 uA/um,
Ioff ~ 20 pA/um); later nodes follow the scaling rules above.  Absolute
accuracy is not the goal — the paper's conclusions rest on the *relative*
trends across nodes, which the scaling rules preserve exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

__all__ = [
    "TechnologyNode",
    "TECHNOLOGY_NODES",
    "get_technology",
    "available_nodes",
    "LEAKAGE_SCALING_PER_GENERATION",
    "SWITCHING_SCALING_PER_GENERATION",
]

#: Borkar scaling rule: leakage power grows 3.5x per generation.
LEAKAGE_SCALING_PER_GENERATION = 3.5

#: Borkar scaling rule: switching power halves per generation.
SWITCHING_SCALING_PER_GENERATION = 0.5


@dataclass(frozen=True)
class TechnologyNode:
    """A single CMOS technology generation.

    Parameters mirror Table 1 of the paper plus derived device-level
    quantities used by the circuit models.

    Attributes:
        feature_size_nm: Drawn feature size in nanometres (e.g. ``70``).
        supply_voltage: Nominal supply voltage Vdd in volts.
        clock_frequency_ghz: Clock frequency in GHz (8-FO4 cycle).
        fo4_delay_ps: Delay of a fanout-of-four inverter in picoseconds.
        gate_cap_ff_per_um: Gate capacitance per micron of transistor width.
        wire_cap_ff_per_um: Wire capacitance per micron of wire length.
        wire_res_ohm_per_um: Wire resistance per micron of wire length.
        on_current_ua_per_um: Saturation drive current per micron width.
        leakage_current_na_per_um: Subthreshold leakage per micron width
            of an *off* transistor at nominal Vdd and temperature.
        generation_index: 0 for 180nm, 1 for 130nm, ... used by scaling
            helpers.
    """

    feature_size_nm: int
    supply_voltage: float
    clock_frequency_ghz: float
    fo4_delay_ps: float
    gate_cap_ff_per_um: float
    wire_cap_ff_per_um: float
    wire_res_ohm_per_um: float
    on_current_ua_per_um: float
    leakage_current_na_per_um: float
    generation_index: int

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1.0 / self.clock_frequency_ghz

    @property
    def cycle_time_s(self) -> float:
        """Clock period in seconds."""
        return self.cycle_time_ns * 1e-9

    @property
    def feature_size_um(self) -> float:
        """Drawn feature size in microns."""
        return self.feature_size_nm / 1000.0

    @property
    def relative_leakage(self) -> float:
        """Leakage power relative to the 180nm node (grows 3.5x/generation)."""
        return LEAKAGE_SCALING_PER_GENERATION ** self.generation_index

    @property
    def relative_switching(self) -> float:
        """Switching power relative to the 180nm node (halves per generation)."""
        return SWITCHING_SCALING_PER_GENERATION ** self.generation_index

    @property
    def leakage_to_switching_ratio(self) -> float:
        """How leakage compares to switching energy, normalised to 180nm.

        This single ratio drives the paper's headline circuit-level trend
        (Figure 2): the precharge-device switching overhead of bitline
        isolation shrinks relative to the leakage it saves as technology
        scales.
        """
        return self.relative_leakage / self.relative_switching

    def scaled_from(self, other: "TechnologyNode") -> int:
        """Number of generations separating ``self`` from ``other``."""
        return self.generation_index - other.generation_index


def _build_nodes() -> Dict[int, TechnologyNode]:
    """Construct the four nodes of Table 1 with derived device parameters."""
    # (feature nm, Vdd, f GHz) straight from Table 1 of the paper.
    table1 = [
        (180, 1.8, 2.0),
        (130, 1.5, 2.7),
        (100, 1.2, 3.5),
        (70, 1.0, 5.0),
    ]
    nodes: Dict[int, TechnologyNode] = {}
    # 180nm anchors; per-generation derivations follow classical scaling
    # (dimensions x0.7, capacitance per um roughly constant, drive current
    # per um roughly constant, leakage current per um grows with the
    # Borkar leakage-power factor corrected for the Vdd reduction).
    fo4_180_ps = 65.0
    gate_cap_180 = 2.0          # fF / um of gate width
    wire_cap_180 = 0.20         # fF / um of wire length
    wire_res_180 = 0.08         # ohm / um
    ion_180 = 600.0             # uA / um
    # Effective subthreshold leakage at operating temperature (worst case,
    # full Vdd across the stack).  Chosen so the isolated-bitline decay
    # constants and the bitline-discharge share of cache energy track the
    # paper's published trends.
    ioff_180 = 2.0              # nA / um at 180nm

    for index, (feat, vdd, freq) in enumerate(table1):
        # The paper fixes the pipeline at 8 FO4 per cycle, so FO4 delay is
        # simply 1 / (8 * f).
        fo4_ps = 1e3 / (8.0 * freq)
        # Leakage power scales 3.5x/gen; leakage *current* therefore scales
        # 3.5x corrected by the Vdd ratio (P = V * I).
        vdd_ratio = vdd / table1[0][1]
        ioff = ioff_180 * (LEAKAGE_SCALING_PER_GENERATION ** index) / vdd_ratio
        # Switching power halves per generation at constant activity; with
        # C*V^2*f, and f rising, effective switched capacitance per device
        # falls faster than linearly.  Gate cap per um stays approximately
        # constant across nodes (thinner oxide offsets narrower width).
        gate_cap = gate_cap_180
        wire_cap = wire_cap_180 * (0.95 ** index)
        wire_res = wire_res_180 * (1.8 ** index)
        ion = ion_180 * (1.05 ** index)
        nodes[feat] = TechnologyNode(
            feature_size_nm=feat,
            supply_voltage=vdd,
            clock_frequency_ghz=freq,
            fo4_delay_ps=fo4_ps if index > 0 else fo4_180_ps * 0 + fo4_ps,
            gate_cap_ff_per_um=gate_cap,
            wire_cap_ff_per_um=wire_cap,
            wire_res_ohm_per_um=wire_res,
            on_current_ua_per_um=ion,
            leakage_current_na_per_um=ioff,
            generation_index=index,
        )
    return nodes


#: The four technology nodes of Table 1, keyed by feature size in nm.
TECHNOLOGY_NODES: Dict[int, TechnologyNode] = _build_nodes()


def get_technology(feature_size_nm: int) -> TechnologyNode:
    """Return the :class:`TechnologyNode` for a feature size in nm.

    Raises:
        KeyError: if the node is not one of 180, 130, 100, 70.
    """
    try:
        return TECHNOLOGY_NODES[feature_size_nm]
    except KeyError:
        valid = ", ".join(str(k) for k in sorted(TECHNOLOGY_NODES, reverse=True))
        raise KeyError(
            f"unknown technology node {feature_size_nm}nm; valid nodes: {valid}"
        ) from None


def available_nodes() -> List[int]:
    """Feature sizes (nm) of all modelled nodes, largest (oldest) first."""
    return sorted(TECHNOLOGY_NODES, reverse=True)
