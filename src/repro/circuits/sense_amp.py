"""Sense amplifier model.

The sense amplifier detects the small differential (0.1-0.2 V) an active
cell read develops between the two bitlines of a column and regenerates it
to full swing for the output drivers.  For this reproduction it
contributes a fixed per-read dynamic energy and a delay that scales with
the FO4 inverter delay; it does not participate in the bitline-isolation
trade-off directly, but is part of the per-access energy the relative
savings are normalised against.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import TechnologyNode

__all__ = ["SenseAmplifier"]

#: Sense and regeneration latency expressed in FO4 inverter delays.
_SENSE_DELAY_FO4 = 2.5

#: Effective switched capacitance of one sense amplifier, in fF at 180nm
#: (cross-coupled pair + output latch), scaling with feature size.
_SENSE_CAP_FF_180 = 12.0


@dataclass(frozen=True)
class SenseAmplifier:
    """One column sense amplifier in a given technology."""

    tech: TechnologyNode

    @property
    def delay_s(self) -> float:
        """Sense + regeneration delay in seconds."""
        return _SENSE_DELAY_FO4 * self.tech.fo4_delay_ps * 1e-12

    @property
    def switched_cap_f(self) -> float:
        """Effective switched capacitance (F) per sensing operation."""
        return _SENSE_CAP_FF_180 * (self.tech.feature_size_nm / 180.0) * 1e-15

    @property
    def energy_per_read_j(self) -> float:
        """Dynamic energy (J) of one sensing operation."""
        vdd = self.tech.supply_voltage
        return self.switched_cap_f * vdd * vdd
