"""Bitline electrical model.

A bitline is the vertical wire that connects every SRAM cell of a column
to the sense amplifier, plus the precharge device at its top.  Everything
the paper measures ultimately reduces to four bitline quantities:

* ``capacitance_f`` — total bitline capacitance (cell drains + wire +
  sense/mux loading), which sets the precharge (pull-up) delay and the
  energy stored on the bitline;
* ``leakage_current_a`` — subthreshold current drawn from a pulled-up
  bitline by the attached cells, i.e. the *bitline discharge* that blind
  static pull-up pays continuously;
* ``worst_case_pull_up_s`` — the time to re-charge a fully discharged
  bitline (Table 3 compares this against the final decode stage delay);
* ``decay_time_constant_s`` — how quickly an isolated bitline's voltage
  (and hence its residual discharge) decays towards the steady state
  (Figure 2 and the oracle/gated energy accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from math import exp, expm1

from .precharge_device import PrechargeDevice, DEFAULT_SIZE_RATIO
from .sram_cell import SRAMCell
from .technology import TechnologyNode
from .wires import Wire

__all__ = ["Bitline", "CELL_HEIGHT_IN_FEATURES", "BASELINE_ROWS"]

#: Height of a 6-T SRAM cell in units of the drawn feature size.  Sets the
#: bitline wire length per attached row.
CELL_HEIGHT_IN_FEATURES = 12.0

#: Reference row count used when sizing precharge devices: designers size
#: the precharge PMOS to the bitline load, so devices on longer bitlines
#: are drawn wider (sub-linearly).
BASELINE_ROWS = 32

#: Fixed loading (fF at 180nm, scales with feature size) contributed by
#: the column mux, write driver and sense-amplifier input.
_FIXED_LOAD_FF_180 = 15.0

#: Empirical de-rating applied to the first-order constant-current pull-up
#: estimate, accounting for distributed bitline RC, the equalisation
#: device, and the PMOS drive collapsing as the bitline nears Vdd.
#: Calibrated so the 180nm / 1KB-subarray worst-case pull-up lands near the
#: 0.39 ns the paper reports in Table 3.
_PULL_UP_CALIBRATION = 2.8


@dataclass(frozen=True)
class Bitline:
    """One bitline with ``rows`` attached cells in a given technology.

    Attributes:
        tech: Technology node.
        rows: Number of SRAM cells (rows) attached to the bitline.
        ports: Number of cache ports (multiplies leakage paths per column
            but each bitline object models a single physical wire).
        precharge_size_ratio: Precharge device width relative to the cell
            access transistor at the baseline row count.
    """

    tech: TechnologyNode
    rows: int
    ports: int = 1
    precharge_size_ratio: float = DEFAULT_SIZE_RATIO

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError("a bitline needs at least one attached row")
        if self.ports < 1:
            raise ValueError("ports must be >= 1")

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    @cached_property
    def cell(self) -> SRAMCell:
        """The SRAM cell model attached to this bitline."""
        return SRAMCell(tech=self.tech, ports=self.ports)

    @cached_property
    def precharge_device(self) -> PrechargeDevice:
        """The precharge device at the top of this bitline.

        The device is sized to the bitline load: its width grows
        sub-linearly (exponent 0.6) with the number of attached rows so
        that longer bitlines of bigger subarrays are pulled up in a
        comparable, though still longer, time (Table 3).
        """
        scale = (self.rows / BASELINE_ROWS) ** 0.6
        return PrechargeDevice.sized_from_cell(
            tech=self.tech,
            cell_access_width_um=self.cell.access_width_um,
            size_ratio=self.precharge_size_ratio * scale,
        )

    @cached_property
    def wire(self) -> Wire:
        """The bitline metal wire spanning all attached rows."""
        length_um = self.rows * CELL_HEIGHT_IN_FEATURES * self.tech.feature_size_um
        return Wire(tech=self.tech, length_um=length_um)

    # ------------------------------------------------------------------
    # Capacitance and stored energy
    # ------------------------------------------------------------------
    @cached_property
    def capacitance_f(self) -> float:
        """Total bitline capacitance in farads."""
        cell_caps = self.rows * self.cell.drain_cap_ff * 1e-15
        fixed = (
            _FIXED_LOAD_FF_180
            * (self.tech.feature_size_nm / 180.0)
            * 1e-15
        )
        return cell_caps + self.wire.capacitance_f + fixed

    @cached_property
    def stored_energy_j(self) -> float:
        """Energy (J) stored on a fully precharged bitline."""
        vdd = self.tech.supply_voltage
        return 0.5 * self.capacitance_f * vdd * vdd

    # ------------------------------------------------------------------
    # Leakage / discharge
    # ------------------------------------------------------------------
    @cached_property
    def leakage_current_a(self) -> float:
        """Total leakage current (A) drawn from a fully pulled-up bitline."""
        return self.rows * self.cell.bitline_leakage_current_a

    @cached_property
    def static_discharge_power_w(self) -> float:
        """Bitline discharge power (W) under static pull-up.

        This is the continuous waste the paper attacks: the leakage current
        flowing from the supply, through the precharge device, down the
        bitline and through the off cell transistors to ground.
        """
        return self.leakage_current_a * self.tech.supply_voltage

    @cached_property
    def leakage_conductance_s(self) -> float:
        """Effective leakage conductance (Siemens) seen by the bitline."""
        return self.leakage_current_a / self.tech.supply_voltage

    @cached_property
    def decay_time_constant_s(self) -> float:
        """RC time constant (s) of an isolated bitline's voltage decay."""
        return self.capacitance_f / self.leakage_conductance_s

    def voltage_after_isolation(self, elapsed_s: float) -> float:
        """Bitline voltage (V) ``elapsed_s`` seconds after isolation.

        Exponential decay from Vdd towards ground through the cell leakage
        paths (the steady state is approximated as fully discharged, which
        is the worst case the paper also assumes).
        """
        if elapsed_s < 0:
            raise ValueError("elapsed time must be non-negative")
        return self.tech.supply_voltage * exp(-elapsed_s / self.decay_time_constant_s)

    def isolated_discharge_energy_j(self, idle_s: float) -> float:
        """Energy (J) dissipated through an isolated bitline over ``idle_s``.

        Integrates ``G * V(t)^2`` over the idle interval.  For short idle
        intervals this approaches the static-pull-up discharge (no saving);
        for long intervals it is bounded by the charge stored on the
        bitline — this is exactly why the oracle of Section 4 does not
        remove 100% of the discharge.
        """
        if idle_s < 0:
            raise ValueError("idle interval must be non-negative")
        tau = self.decay_time_constant_s
        vdd = self.tech.supply_voltage
        g = self.leakage_conductance_s
        # expm1 keeps the short-interval limit exact: 1 - exp(-x) loses
        # precision for tiny x and can round the integral slightly above
        # the static-pull-up bound g*Vdd^2*t it must never exceed.
        return g * vdd * vdd * (tau / 2.0) * -expm1(-2.0 * idle_s / tau)

    def static_discharge_energy_j(self, interval_s: float) -> float:
        """Energy (J) dissipated under static pull-up over ``interval_s``."""
        if interval_s < 0:
            raise ValueError("interval must be non-negative")
        return self.static_discharge_power_w * interval_s

    # ------------------------------------------------------------------
    # Precharge timing and energy
    # ------------------------------------------------------------------
    @cached_property
    def worst_case_pull_up_s(self) -> float:
        """Time (s) to pull up a fully discharged bitline to Vdd.

        This is the Table 3 "worst-case bitline pull-up": the relevant
        delay when an isolated (hence possibly fully discharged) subarray
        must be precharged on demand.
        """
        raw = self.precharge_device.pull_up_time_s(
            bitline_cap_f=self.capacitance_f,
            swing_v=self.tech.supply_voltage,
        )
        return _PULL_UP_CALIBRATION * raw

    @cached_property
    def active_read_restore_s(self) -> float:
        """Time (s) to restore the small swing left by an active cell read.

        An active read only develops a 0.1-0.2 V differential, so restoring
        it is fast and overlaps with address decode — this is why blind
        static pull-up has no latency cost (Section 5).
        """
        from .sram_cell import READ_DISCHARGE_SWING_V

        raw = self.precharge_device.pull_up_time_s(
            bitline_cap_f=self.capacitance_f,
            swing_v=READ_DISCHARGE_SWING_V,
        )
        return _PULL_UP_CALIBRATION * raw

    def recharge_energy_j(self, idle_s: float) -> float:
        """Energy (J) drawn from the supply to re-precharge after ``idle_s`` idle.

        The bitline decayed by ``Vdd - V(idle_s)``; recharging it draws
        ``C * Vdd * dV`` from the supply.
        """
        dv = self.tech.supply_voltage - self.voltage_after_isolation(idle_s)
        return self.capacitance_f * self.tech.supply_voltage * dv

    @cached_property
    def isolation_toggle_energy_j(self) -> float:
        """Gate-switching energy (J) of one isolate/precharge toggle pair."""
        return 2.0 * self.precharge_device.switching_energy_j
