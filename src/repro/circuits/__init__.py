"""Circuit-level models: technology scaling, SRAM cells, bitlines, decoders.

This package replaces the paper's CACTI 3.2 + SPICE toolchain with
first-order analytical models.  It provides:

* :mod:`~repro.circuits.technology` — the Table 1 technology nodes and the
  Borkar scaling rules (switching x0.5, leakage x3.5 per generation);
* :mod:`~repro.circuits.sram_cell`, :mod:`~repro.circuits.precharge_device`,
  :mod:`~repro.circuits.wires`, :mod:`~repro.circuits.sense_amp` — device
  building blocks;
* :mod:`~repro.circuits.bitline` — bitline capacitance, leakage discharge,
  worst-case pull-up, post-isolation decay;
* :mod:`~repro.circuits.decoder` — the CACTI-style three-stage decoder and
  the partial-decode margin on-demand precharging must fit into (Table 3);
* :mod:`~repro.circuits.transient` — the Figure 2 post-isolation power
  transient;
* :mod:`~repro.circuits.subarray_circuit`, :mod:`~repro.circuits.cacti` —
  subarray- and cache-level aggregation used by the architectural models.
"""

from .bitline import Bitline
from .cacti import CacheOrganization, CacheTiming, cache_organization
from .decoder import DecoderTiming, decoder_timing
from .precharge_device import PrechargeDevice, DEFAULT_SIZE_RATIO
from .sense_amp import SenseAmplifier
from .sram_cell import SRAMCell, READ_DISCHARGE_SWING_V
from .subarray_circuit import SubarrayCircuit, subarray_circuit
from .technology import (
    LEAKAGE_SCALING_PER_GENERATION,
    SWITCHING_SCALING_PER_GENERATION,
    TECHNOLOGY_NODES,
    TechnologyNode,
    available_nodes,
    get_technology,
)
from .transient import IsolationTransient, TransientPoint, isolation_transient
from .wires import Wire

__all__ = [
    "Bitline",
    "CacheOrganization",
    "CacheTiming",
    "cache_organization",
    "DecoderTiming",
    "decoder_timing",
    "PrechargeDevice",
    "DEFAULT_SIZE_RATIO",
    "SenseAmplifier",
    "SRAMCell",
    "READ_DISCHARGE_SWING_V",
    "SubarrayCircuit",
    "subarray_circuit",
    "LEAKAGE_SCALING_PER_GENERATION",
    "SWITCHING_SCALING_PER_GENERATION",
    "TECHNOLOGY_NODES",
    "TechnologyNode",
    "available_nodes",
    "get_technology",
    "IsolationTransient",
    "TransientPoint",
    "isolation_transient",
    "Wire",
]
