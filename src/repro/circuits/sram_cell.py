"""6-T SRAM cell electrical model.

Figure 1 of the paper shows the standard 6-T cell with precharge devices
at the top of each bitline pair.  For the purposes of the reproduction the
cell contributes three quantities:

* the *bitline leakage* it injects into a precharged (pulled-up) bitline —
  the subthreshold current through its off access/pull-down transistor
  stack, which the paper identifies as the dominant waste ("76% of the
  overall leakage dissipation in dual-ported SRAM cells");
* the *read discharge*: the small voltage differential (0.1-0.2 V) an
  active read develops on one bitline, which must be re-charged afterwards;
* the *cell capacitance* it adds to the bitline (drain junction of the
  access transistor), which sets the bitline RC together with the wire.

All quantities are per bitline (i.e. per port side); a cell with ``ports``
read/write ports has ``2 * ports`` bitlines attached.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import TechnologyNode

__all__ = ["SRAMCell", "READ_DISCHARGE_SWING_V"]

#: Differential swing developed on the bitline by an active cell read, in
#: volts.  The paper quotes 0.1-0.2 V; we use the midpoint.
READ_DISCHARGE_SWING_V = 0.15


@dataclass(frozen=True)
class SRAMCell:
    """Electrical model of one 6-T SRAM cell in a given technology.

    Attributes:
        tech: Technology node the cell is drawn in.
        access_width_um: Width of the access (pass) transistor in microns.
        ports: Number of read/write ports (each adds an access device and
            a bitline pair).  The paper's L1 d-cache is dual-ported.
    """

    tech: TechnologyNode
    access_width_um: float = 0.0
    ports: int = 1

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise ValueError("an SRAM cell needs at least one port")
        if self.access_width_um <= 0.0:
            # Default: access transistor drawn at ~1.5x minimum width.
            object.__setattr__(
                self, "access_width_um", 1.5 * self.tech.feature_size_um
            )

    # ------------------------------------------------------------------
    # Leakage
    # ------------------------------------------------------------------
    @property
    def bitline_leakage_current_a(self) -> float:
        """Leakage current (A) drawn from ONE pulled-up bitline by this cell.

        One of the two sides of the cell stores a '0'; the access
        transistor on that side leaks from the precharged bitline into the
        grounded storage node.  Only one side of a pair leaks strongly at
        any time, so this is the per-bitline worst-side current.
        """
        ioff_a_per_um = self.tech.leakage_current_na_per_um * 1e-9
        return ioff_a_per_um * self.access_width_um

    @property
    def cell_leakage_power_w(self) -> float:
        """Static power (W) leaked through bitlines of all ports of the cell."""
        per_bitline = self.bitline_leakage_current_a * self.tech.supply_voltage
        return per_bitline * self.ports

    # ------------------------------------------------------------------
    # Capacitance contributed to the bitline
    # ------------------------------------------------------------------
    @property
    def drain_cap_ff(self) -> float:
        """Drain junction capacitance (fF) one cell adds to one bitline."""
        # Junction cap is of the same order as gate cap for the same width.
        return 0.6 * self.tech.gate_cap_ff_per_um * self.access_width_um

    # ------------------------------------------------------------------
    # Read discharge
    # ------------------------------------------------------------------
    def read_discharge_energy_j(self, bitline_cap_f: float) -> float:
        """Energy (J) to restore one bitline after an active cell read.

        An active read discharges the bitline by ``READ_DISCHARGE_SWING_V``;
        restoring it costs ``C * Vdd * dV`` drawn from the supply.

        Args:
            bitline_cap_f: Total capacitance of the bitline, in farads.
        """
        return bitline_cap_f * self.tech.supply_voltage * READ_DISCHARGE_SWING_V

    @property
    def read_current_a(self) -> float:
        """Cell read current (A) discharging the bitline during a read."""
        ion_a_per_um = self.tech.on_current_ua_per_um * 1e-6
        # The cell pulls through the series access/driver stack; the
        # effective strength is roughly half the access device's Ion.
        return 0.5 * ion_a_per_um * self.access_width_um
