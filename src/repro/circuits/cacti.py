"""CACTI-like cache organisation model.

The paper uses a modified CACTI 3.2 to derive cache access latencies and
per-stage delays for its 32KB 2-way L1 caches.  This module provides the
equivalent *organisation* layer: given a cache's capacity, associativity,
line size and subarray size it derives the subarray count, the per-access
timing budget (decode, bitline, sense, output) and the access latency in
cycles, and exposes the per-subarray circuit characterisation.

Only the quantities the reproduction needs are modelled; CACTI's area and
aspect-ratio optimisation loops are out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import ceil, log2

from .decoder import DecoderTiming, decoder_timing
from .sense_amp import SenseAmplifier
from .subarray_circuit import SubarrayCircuit
from .technology import TechnologyNode, get_technology

__all__ = ["CacheOrganization", "CacheTiming", "cache_organization"]

#: Output-driver latency in FO4 units (drives the read data to the port).
_OUTPUT_DRIVE_FO4 = 2.0

#: Tag comparison latency in FO4 units (overlapped with data read in the
#: paper's set-associative caches).
_TAG_COMPARE_FO4 = 3.0


@dataclass(frozen=True)
class CacheTiming:
    """Per-stage access timing of one cache organisation (seconds)."""

    decode_s: float
    bitline_sense_s: float
    output_drive_s: float

    @property
    def total_s(self) -> float:
        """End-to-end access time in seconds."""
        return self.decode_s + self.bitline_sense_s + self.output_drive_s


@dataclass(frozen=True)
class CacheOrganization:
    """Physical organisation of a cache in a given technology.

    Attributes:
        tech: Technology node.
        capacity_bytes: Total cache capacity.
        line_bytes: Cache line size.
        associativity: Set associativity.
        subarray_bytes: Capacity of one subarray (the precharge-control
            granularity).
        ports: Number of read/write ports.
    """

    tech: TechnologyNode
    capacity_bytes: int
    line_bytes: int
    associativity: int
    subarray_bytes: int
    ports: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("capacity and line size must be positive")
        if self.capacity_bytes % self.line_bytes:
            raise ValueError("capacity must be a multiple of the line size")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.subarray_bytes < self.line_bytes:
            raise ValueError("a subarray must hold at least one line")
        if self.capacity_bytes % self.subarray_bytes:
            raise ValueError("capacity must be a multiple of the subarray size")
        n_lines = self.capacity_bytes // self.line_bytes
        if n_lines % self.associativity:
            raise ValueError("line count must be a multiple of associativity")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def n_lines(self) -> int:
        """Total number of cache lines."""
        return self.capacity_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of cache sets."""
        return self.n_lines // self.associativity

    @property
    def n_subarrays(self) -> int:
        """Number of subarrays (precharge-control units)."""
        return self.capacity_bytes // self.subarray_bytes

    @property
    def lines_per_subarray(self) -> int:
        """Cache lines stored in each subarray."""
        return self.subarray_bytes // self.line_bytes

    @property
    def sets_per_subarray(self) -> int:
        """Number of sets mapped to one subarray.

        Subarrays are interleaved by set index: consecutive sets map to the
        same subarray until it is full, then move to the next.  With the
        paper's 32KB 2-way / 1KB-subarray configuration, both ways of a set
        live in the same subarray, so one access touches one subarray.
        """
        return max(1, self.lines_per_subarray // self.associativity)

    @property
    def set_index_bits(self) -> int:
        """Number of address bits selecting the set."""
        return int(log2(self.n_sets))

    @property
    def offset_bits(self) -> int:
        """Number of address bits selecting the byte within a line."""
        return int(log2(self.line_bytes))

    def subarray_for_set(self, set_index: int) -> int:
        """Subarray index holding ``set_index``."""
        if not 0 <= set_index < self.n_sets:
            raise ValueError(f"set index {set_index} out of range")
        return set_index // self.sets_per_subarray

    def subarray_for_address(self, address: int) -> int:
        """Subarray index accessed by a byte address."""
        set_index = (address >> self.offset_bits) % self.n_sets
        return self.subarray_for_set(set_index)

    # ------------------------------------------------------------------
    # Circuit views
    # ------------------------------------------------------------------
    @property
    def subarray(self) -> SubarrayCircuit:
        """Circuit characterisation of one subarray."""
        return SubarrayCircuit(
            tech=self.tech,
            subarray_bytes=self.subarray_bytes,
            line_bytes=self.line_bytes,
            ports=self.ports,
            n_subarrays=self.n_subarrays,
        )

    @property
    def decoder(self) -> DecoderTiming:
        """Decoder timing for this organisation."""
        return decoder_timing(
            tech=self.tech,
            n_subarrays=self.n_subarrays,
            rows_per_subarray=self.lines_per_subarray,
        )

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def timing(self) -> CacheTiming:
        """Per-stage access timing with statically precharged bitlines."""
        fo4_s = self.tech.fo4_delay_ps * 1e-12
        sense = SenseAmplifier(tech=self.tech)
        bitline_sense = self.subarray.bitline.active_read_restore_s + sense.delay_s
        return CacheTiming(
            decode_s=self.decoder.total_decode_s,
            bitline_sense_s=bitline_sense,
            output_drive_s=(_OUTPUT_DRIVE_FO4 + _TAG_COMPARE_FO4) * fo4_s,
        )

    @property
    def access_latency_cycles(self) -> int:
        """Pipelined access latency in clock cycles (statically precharged)."""
        return max(1, int(ceil(self.timing.total_s / self.tech.cycle_time_s)))

    @property
    def isolated_access_penalty_cycles(self) -> int:
        """Extra cycles when the accessed subarray's bitlines were isolated."""
        return self.subarray.pull_up_cycles

    # ------------------------------------------------------------------
    # Energy shortcuts used by the architectural accounting
    # ------------------------------------------------------------------
    @property
    def static_discharge_energy_per_cycle_j(self) -> float:
        """Bitline discharge (J/cycle) of the WHOLE cache under static pull-up."""
        return (
            self.n_subarrays
            * self.subarray.static_discharge_energy_per_cycle_j
        )

    @property
    def read_access_energy_j(self) -> float:
        """Dynamic energy of one read access (one subarray's worth)."""
        return self.subarray.read_access_energy_j


@lru_cache(maxsize=None)
def cache_organization(
    feature_size_nm: int,
    capacity_bytes: int,
    line_bytes: int,
    associativity: int,
    subarray_bytes: int,
    ports: int = 1,
) -> CacheOrganization:
    """Cached constructor for :class:`CacheOrganization`."""
    return CacheOrganization(
        tech=get_technology(feature_size_nm),
        capacity_bytes=capacity_bytes,
        line_bytes=line_bytes,
        associativity=associativity,
        subarray_bytes=subarray_bytes,
        ports=ports,
    )
