"""Wire (interconnect) RC models used by the bitline and decoder models.

The paper assumes (citing Ho, Mai & Horowitz) that wires which scale in
length track gate-delay scaling between 180nm and 50nm, keeping the
pipeline depth and structure access penalties constant in cycles.  We
model wires with simple distributed-RC expressions; their parameters come
from :class:`repro.circuits.technology.TechnologyNode`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import TechnologyNode

__all__ = ["Wire"]


@dataclass(frozen=True)
class Wire:
    """A wire segment of a given length in a given technology.

    Attributes:
        tech: Technology node.
        length_um: Wire length in microns.
    """

    tech: TechnologyNode
    length_um: float

    def __post_init__(self) -> None:
        if self.length_um < 0:
            raise ValueError("wire length must be non-negative")

    @property
    def capacitance_f(self) -> float:
        """Total wire capacitance in farads."""
        return self.tech.wire_cap_ff_per_um * self.length_um * 1e-15

    @property
    def resistance_ohm(self) -> float:
        """Total wire resistance in ohms."""
        return self.tech.wire_res_ohm_per_um * self.length_um

    @property
    def elmore_delay_s(self) -> float:
        """Distributed-RC (Elmore) delay of the unloaded wire, in seconds."""
        return 0.5 * self.resistance_ohm * self.capacitance_f

    def delay_with_load_s(self, load_cap_f: float, driver_res_ohm: float) -> float:
        """Elmore delay (s) including a lumped load and a resistive driver."""
        r_w = self.resistance_ohm
        c_w = self.capacitance_f
        return (
            driver_res_ohm * (c_w + load_cap_f)
            + r_w * (0.5 * c_w + load_cap_f)
        )
