"""Load/store queue.

The base configuration (Table 2) provides a 64-entry load/store queue.  In
this model the LSQ bounds the number of memory operations in flight
(dispatch stalls when it is full) and provides store-to-load forwarding:
a load whose address matches an older, not-yet-retired store receives its
value without a data-cache access delay (the cache is still accessed for
the subarray/energy bookkeeping by the pipeline, which decides whether to
apply the returned latency).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .rob import InFlightOp

__all__ = ["LoadStoreQueue"]


class LoadStoreQueue:
    """Bounded queue of in-flight memory operations."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("LSQ capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[Tuple[int, str, int]] = deque()  # (sequence, kind, line)
        self.forwarded_loads = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether dispatch of a memory op must stall."""
        return len(self._entries) >= self.capacity

    def insert(self, op: InFlightOp, line_address: int) -> None:
        """Track a dispatched memory op."""
        if self.is_full:
            raise RuntimeError("inserted into a full LSQ")
        kind = op.uop.op_type
        self._entries.append((op.sequence, kind, line_address))

    def can_forward(self, load_sequence: int, line_address: int) -> bool:
        """Whether an older in-flight store to the same line can forward."""
        for sequence, kind, line in self._entries:
            if sequence >= load_sequence:
                break
            if kind == "store" and line == line_address:
                return True
        return False

    def note_forwarded(self) -> None:
        """Record that a load was satisfied by forwarding."""
        self.forwarded_loads += 1

    def retire_older_than(self, sequence: int) -> None:
        """Drop entries for ops that have committed (sequence below bound)."""
        while self._entries and self._entries[0][0] < sequence:
            self._entries.popleft()

    def occupancy(self) -> int:
        """Number of memory ops tracked."""
        return len(self._entries)
