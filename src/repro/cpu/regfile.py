"""Register rename table.

The simulator models ideal register renaming (Table 2's 128-entry physical
register file never limits the 64-register architectural space the
workloads use), so the rename table simply remembers, for every
architectural register, the most recent in-flight producer of its value.
Consumers dispatched later capture a reference to that producer; their
operands are ready once the producer's ``complete_cycle`` has passed.
Because each consumer snapshots its producers at dispatch, later writers
of the same architectural register never create false (WAR/WAW)
dependences.
"""

from __future__ import annotations

from typing import List, Optional

from .rob import InFlightOp

__all__ = ["RenameTable"]


class RenameTable:
    """Maps architectural registers to their latest in-flight producer."""

    def __init__(self, n_registers: int = 64) -> None:
        if n_registers < 1:
            raise ValueError("need at least one register")
        self._writer: List[Optional[InFlightOp]] = [None] * n_registers

    @property
    def n_registers(self) -> int:
        """Number of architectural registers tracked."""
        return len(self._writer)

    def writer(self, register: Optional[int]) -> Optional[InFlightOp]:
        """The in-flight op producing ``register``'s latest value, if any."""
        if register is None:
            return None
        return self._writer[register % len(self._writer)]

    def set_writer(self, register: Optional[int], op: InFlightOp) -> None:
        """Record ``op`` as the latest producer of ``register``."""
        if register is None:
            return
        self._writer[register % len(self._writer)] = op

    def reset(self) -> None:
        """Forget every producer (all registers architecturally ready)."""
        for index in range(len(self._writer)):
            self._writer[index] = None
