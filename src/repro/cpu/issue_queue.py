"""Issue queue (scheduler window).

Dispatched ops wait here until their source operands are ready; each cycle
the oldest ready ops are selected up to the machine's issue width and the
per-class port limits.  Selection is age-ordered, matching the paper's
aggressive 8-wide baseline.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .rob import InFlightOp

__all__ = ["IssueQueue"]


class IssueQueue:
    """Bounded, age-ordered scheduling window."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("issue queue capacity must be positive")
        self.capacity = capacity
        self._entries: List[InFlightOp] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether dispatch must stall."""
        return len(self._entries) >= self.capacity

    def push(self, op: InFlightOp) -> None:
        """Insert a newly dispatched op (entries stay age-ordered)."""
        if self.is_full:
            raise RuntimeError("pushed to a full issue queue")
        self._entries.append(op)

    def reinsert(self, op: InFlightOp) -> None:
        """Put a squashed (replayed) op back into the window.

        Replayed ops keep their age, so they are inserted in sequence
        order; the capacity check is skipped because the op never really
        left the scheduler in a real machine.
        """
        index = len(self._entries)
        for position, entry in enumerate(self._entries):
            if entry.sequence > op.sequence:
                index = position
                break
        self._entries.insert(index, op)

    def select_ready(
        self,
        cycle: int,
        width: int,
        ready_cycle_of: Callable[[InFlightOp], int],
        memory_ports: int,
        is_memory: Callable[[InFlightOp], bool],
    ) -> List[InFlightOp]:
        """Select up to ``width`` ready ops, oldest first.

        Args:
            cycle: Current cycle.
            width: Maximum ops to select.
            ready_cycle_of: Callback giving the cycle an op's operands are
                ready.
            memory_ports: Maximum memory (load/store) ops selectable this
                cycle (the d-cache port limit of Table 2).
            is_memory: Callback identifying memory ops.

        Returns:
            The selected ops, removed from the queue.
        """
        selected: List[InFlightOp] = []
        memory_used = 0
        remaining: List[InFlightOp] = []
        for op in self._entries:
            if len(selected) >= width:
                remaining.append(op)
                continue
            if ready_cycle_of(op) > cycle:
                remaining.append(op)
                continue
            if is_memory(op):
                if memory_used >= memory_ports:
                    remaining.append(op)
                    continue
                memory_used += 1
            selected.append(op)
        self._entries = remaining
        return selected

    def dependents_of(self, producer: Optional[InFlightOp]) -> List[InFlightOp]:
        """Ops in the window whose source value comes from ``producer``."""
        if producer is None:
            return []
        return [
            op
            for op in self._entries
            if op.producer1 is producer or op.producer2 is producer
        ]

    def occupancy(self) -> int:
        """Number of ops waiting in the window."""
        return len(self._entries)
