"""Reorder buffer and in-flight instruction records."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.workloads.trace import MicroOp

__all__ = ["InFlightOp", "ReorderBuffer"]


@dataclass(slots=True)
class InFlightOp:
    """A micro-op travelling through the out-of-order back end.

    Attributes:
        uop: The underlying trace record.
        sequence: Global program-order sequence number.
        dispatched_cycle: Cycle the op entered the ROB / issue queue.
        issued_cycle: Cycle the op was selected for execution (or ``None``).
        complete_cycle: Cycle the op's result is available (or ``None``).
        replayed: Number of times the op was squashed and reissued by load
            hit misspeculation.
        mispredicted_branch: Whether this branch was mispredicted (set at
            dispatch from the predictor outcome).
        producer1: In-flight op producing the first source operand, or
            ``None`` when the value is already architectural.
        producer2: In-flight op producing the second source operand.
    """

    uop: MicroOp
    sequence: int
    dispatched_cycle: int
    issued_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    replayed: int = 0
    mispredicted_branch: bool = False
    producer1: Optional["InFlightOp"] = None
    producer2: Optional["InFlightOp"] = None

    @property
    def issued(self) -> bool:
        """Whether the op has been selected for execution."""
        return self.issued_cycle is not None

    @property
    def completed(self) -> bool:
        """Whether the op's result is available."""
        return self.complete_cycle is not None


class ReorderBuffer:
    """Bounded in-order retirement window."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[InFlightOp] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether dispatch must stall."""
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """Whether nothing is in flight."""
        return not self._entries

    def push(self, op: InFlightOp) -> None:
        """Insert a newly dispatched op at the tail."""
        if self.is_full:
            raise RuntimeError("pushed to a full ROB")
        self._entries.append(op)

    def head(self) -> Optional[InFlightOp]:
        """The oldest in-flight op, if any."""
        return self._entries[0] if self._entries else None

    def commit_ready(self, cycle: int, width: int) -> int:
        """Retire up to ``width`` completed ops from the head at ``cycle``.

        Returns:
            The number of ops retired.
        """
        retired = 0
        while (
            retired < width
            and self._entries
            and self._entries[0].completed
            and self._entries[0].complete_cycle <= cycle
        ):
            self._entries.popleft()
            retired += 1
        return retired

    def occupancy(self) -> int:
        """Number of ops currently in flight."""
        return len(self._entries)
