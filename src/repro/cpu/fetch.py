"""Instruction fetch engine.

Fetches micro-ops from the workload stream through the L1 instruction
cache into a fetch queue that feeds dispatch.  The model captures the
effects the paper's instruction-cache results depend on:

* each new cache line touched by the fetch stream is an L1I access — it
  maps to a subarray and may pay a precharge penalty or miss, which stalls
  the front end and slows the fetch-queue fill rate (Section 6.3);
* a taken branch ends the fetch block for that cycle;
* a mispredicted branch stops fetch entirely until the branch resolves in
  the back end, at which point the front end restarts after a redirect
  penalty representing the deep (16-stage) pipeline's refill.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional, Tuple

from repro.cache.hierarchy import MemoryHierarchy
from repro.workloads.trace import MicroOp

from .branch_predictor import CombinationPredictor
from .stats import PipelineStats

__all__ = ["FetchEngine"]


class FetchEngine:
    """Fetches micro-ops into a bounded fetch queue."""

    def __init__(
        self,
        instruction_stream: Iterator[MicroOp],
        hierarchy: MemoryHierarchy,
        predictor: CombinationPredictor,
        stats: PipelineStats,
        fetch_width: int = 8,
        fetch_queue_size: int = 32,
        redirect_penalty: int = 8,
    ) -> None:
        self._stream = instruction_stream
        self._hierarchy = hierarchy
        self._predictor = predictor
        self._stats = stats
        self.fetch_width = fetch_width
        self.fetch_queue_size = fetch_queue_size
        self.redirect_penalty = redirect_penalty

        #: Entries are (micro-op, branch_was_mispredicted).
        self.queue: Deque[Tuple[MicroOp, bool]] = deque()
        self._pushback: Optional[MicroOp] = None
        self._stall_until = 0
        self._waiting_redirect = False
        self._last_line: Optional[int] = None
        self._exhausted = False
        self._base_latency = hierarchy.l1i.base_latency

    # ------------------------------------------------------------------
    @property
    def stalled_for_redirect(self) -> bool:
        """Whether fetch is parked waiting for a mispredicted branch."""
        return self._waiting_redirect

    @property
    def exhausted(self) -> bool:
        """Whether the workload stream has ended."""
        return self._exhausted

    def redirect(self, resume_cycle: int) -> None:
        """A mispredicted branch resolved; fetch may resume after the refill."""
        self._waiting_redirect = False
        self._stall_until = max(self._stall_until, resume_cycle + self.redirect_penalty)
        self._last_line = None

    # ------------------------------------------------------------------
    def _next_uop(self) -> Optional[MicroOp]:
        if self._pushback is not None:
            uop = self._pushback
            self._pushback = None
            return uop
        try:
            return next(self._stream)
        except StopIteration:
            self._exhausted = True
            return None

    def _line_of(self, pc: int) -> int:
        return pc >> self._hierarchy.l1i.organization.offset_bits

    # ------------------------------------------------------------------
    def fetch_cycle(self, cycle: int) -> int:
        """Fetch up to ``fetch_width`` micro-ops at ``cycle``.

        Returns:
            The number of micro-ops added to the fetch queue.
        """
        if self._waiting_redirect or cycle < self._stall_until:
            return 0

        fetched = 0
        while fetched < self.fetch_width and len(self.queue) < self.fetch_queue_size:
            uop = self._next_uop()
            if uop is None:
                break

            line = self._line_of(uop.pc)
            if line != self._last_line:
                result = self._hierarchy.fetch_instruction(uop.pc, cycle)
                self._last_line = line
                extra = result.latency - self._base_latency
                if result.precharge_penalty > 0:
                    self._stats.delayed_fetches += 1
                if extra > 0:
                    # The i-cache could not deliver the block this cycle:
                    # stall the front end and retry the instruction later.
                    self._stats.icache_fetch_stall_cycles += extra
                    self._stall_until = cycle + extra
                    self._pushback = uop
                    break

            mispredicted = False
            if uop.is_branch:
                self._stats.branches += 1
                correct = self._predictor.update(uop.pc, uop.taken)
                if not correct:
                    mispredicted = True
                    self._stats.branch_mispredictions += 1

            self.queue.append((uop, mispredicted))
            self._stats.fetched_instructions += 1
            fetched += 1

            if uop.is_branch and mispredicted:
                # Fetch down the wrong path is not modelled; the front end
                # simply waits for the branch to resolve.
                self._waiting_redirect = True
                break
            if uop.is_branch and uop.taken:
                # A taken branch ends the fetch block.
                self._last_line = None
                break
        return fetched
