"""Pipeline statistics."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping

__all__ = ["PipelineStats"]


@dataclass
class PipelineStats:
    """Counters accumulated by one processor run.

    Attributes:
        cycles: Total simulated cycles.
        committed_instructions: Micro-ops retired.
        fetched_instructions: Micro-ops fetched (includes none squashed by
            branch redirect in this model, since fetch stalls on a
            mispredicted branch instead of running down the wrong path).
        branch_mispredictions: Mispredicted branches.
        branches: Branches executed.
        icache_fetch_stall_cycles: Cycles the front end stalled waiting on
            the instruction cache (misses and precharge penalties).
        dcache_access_count: Data-cache accesses performed.
        load_replays: Dependent micro-ops squashed by load-hit
            misspeculation.
        delayed_loads: Loads that paid a precharge penalty.
        delayed_fetches: Instruction fetches that paid a precharge penalty.
        dispatch_stall_cycles: Cycles dispatch was blocked (ROB/IQ/LSQ full).
    """

    cycles: int = 0
    committed_instructions: int = 0
    fetched_instructions: int = 0
    branch_mispredictions: int = 0
    branches: int = 0
    icache_fetch_stall_cycles: int = 0
    dcache_access_count: int = 0
    load_replays: int = 0
    delayed_loads: int = 0
    delayed_fetches: int = 0
    dispatch_stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed_instructions / self.cycles

    @property
    def branch_misprediction_rate(self) -> float:
        """Mispredictions per executed branch."""
        if self.branches == 0:
            return 0.0
        return self.branch_mispredictions / self.branches

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.committed_instructions} instructions in {self.cycles} cycles "
            f"(IPC {self.ipc:.2f}), {self.branch_mispredictions} branch mispredicts, "
            f"{self.load_replays} load replays"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineStats":
        """Rebuild the counters from :meth:`to_dict` output."""
        return cls(**data)
