"""Cycle-level out-of-order processor model.

An 8-wide, deeply pipelined (16-stage) out-of-order core in the spirit of
the paper's modified-Wattch baseline (Table 2): 128-entry reorder buffer,
64-entry issue queue, 64-entry load/store queue, combination branch
predictor, load-hit speculation with Pentium-4-style selective replay, and
L1 caches whose subarray precharge behaviour is controlled by pluggable
policies.

The model advances one cycle at a time through commit, issue/execute,
dispatch and fetch.  It is a performance model, not a functional one: the
workload supplies pre-decoded micro-ops with register dependences, memory
addresses and branch outcomes, and the pipeline determines how many cycles
they take — which is exactly what the paper's slowdown numbers require.

This is the *reference* core model.  The batched kernel in
:func:`repro.sim.fastpath._simulate` re-implements these stages over flat
arrays with incremental scheduler wakeup and must stay bit-identical —
change stage semantics here and there together (the differential suite in
``tests/sim/test_fastpath_differential.py`` will catch a mismatch).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterator, Optional

from repro.cache.hierarchy import MemoryHierarchy
from repro.workloads.trace import MicroOp, OP_LOAD, OP_STORE

from .branch_predictor import CombinationPredictor
from .fetch import FetchEngine
from .issue_queue import IssueQueue
from .load_speculation import LoadHitSpeculation
from .lsq import LoadStoreQueue
from .regfile import RenameTable
from .rob import InFlightOp, ReorderBuffer
from .stats import PipelineStats

__all__ = ["PipelineConfig", "OutOfOrderPipeline"]

#: Sentinel ready-cycle for operands whose producer has not issued yet.
_NOT_READY = 1 << 30


@dataclass(frozen=True)
class PipelineConfig:
    """Microarchitectural parameters (defaults follow Table 2).

    Attributes:
        width: Fetch/decode/issue/commit width.
        rob_entries: Reorder buffer capacity.
        issue_queue_entries: Scheduler window capacity.
        lsq_entries: Load/store queue capacity.
        memory_ports: Memory operations issued per cycle (2 RW + 2 R ports).
        fetch_queue_size: Fetch queue capacity.
        dispatch_latency: Front-end stages between fetch and earliest issue.
        redirect_penalty: Front-end refill after a resolved misprediction.
        max_registers: Architectural register count for the scoreboard.
        speculative_extra_latency: Extra cycles the scheduler *expects*
            loads to take beyond the L1D base latency (on-demand
            precharging folds its known +1 cycle in here so that the
            deterministic delay does not masquerade as misspeculation).
        max_cycles_per_instruction: Safety bound against livelock.
    """

    width: int = 8
    rob_entries: int = 128
    issue_queue_entries: int = 64
    lsq_entries: int = 64
    memory_ports: int = 4
    fetch_queue_size: int = 32
    dispatch_latency: int = 3
    redirect_penalty: int = 8
    max_registers: int = 64
    speculative_extra_latency: int = 0
    max_cycles_per_instruction: int = 200

    def to_dict(self) -> dict:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        return cls(**data)


class OutOfOrderPipeline:
    """The simulated processor core."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        instruction_stream: Iterator[MicroOp],
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.hierarchy = hierarchy
        self.stats = PipelineStats()
        self.predictor = CombinationPredictor()
        self.rename_table = RenameTable(self.config.max_registers)
        self.rob = ReorderBuffer(self.config.rob_entries)
        self.issue_queue = IssueQueue(self.config.issue_queue_entries)
        self.lsq = LoadStoreQueue(self.config.lsq_entries)
        self.fetch = FetchEngine(
            instruction_stream=instruction_stream,
            hierarchy=hierarchy,
            predictor=self.predictor,
            stats=self.stats,
            fetch_width=self.config.width,
            fetch_queue_size=self.config.fetch_queue_size,
            redirect_penalty=self.config.redirect_penalty,
        )
        self.load_speculation = LoadHitSpeculation(
            speculative_latency=hierarchy.l1d.base_latency
            + self.config.speculative_extra_latency
        )
        self._cycle = 0
        self._sequence = 0

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Current simulation cycle."""
        return self._cycle

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        retired = self.rob.commit_ready(self._cycle, self.config.width)
        self.stats.committed_instructions += retired
        head = self.rob.head()
        if head is not None:
            self.lsq.retire_older_than(head.sequence)
        else:
            self.lsq.retire_older_than(self._sequence)

    def _operands_ready_cycle(self, op: InFlightOp) -> int:
        earliest = op.dispatched_cycle + self.config.dispatch_latency
        ready = earliest
        for producer in (op.producer1, op.producer2):
            if producer is None:
                continue
            if producer.complete_cycle is None:
                return _NOT_READY
            ready = max(ready, producer.complete_cycle)
        return ready

    def _issue(self) -> None:
        selected = self.issue_queue.select_ready(
            cycle=self._cycle,
            width=self.config.width,
            ready_cycle_of=self._operands_ready_cycle,
            memory_ports=self.config.memory_ports,
            is_memory=lambda op: op.uop.is_memory,
        )
        for op in selected:
            op.issued_cycle = self._cycle
            self._execute(op)

    def _execute(self, op: InFlightOp) -> None:
        uop = op.uop
        if uop.op_type == OP_LOAD:
            self._execute_load(op)
        elif uop.op_type == OP_STORE:
            self._execute_store(op)
        else:
            complete = self._cycle + uop.execution_latency
            op.complete_cycle = complete
            if uop.is_branch and op.mispredicted_branch:
                self.fetch.redirect(complete)

    def _execute_load(self, op: InFlightOp) -> None:
        uop = op.uop
        self.stats.dcache_access_count += 1
        result = self.hierarchy.load(uop.address, self._cycle, base_address=uop.base_address)
        if result.precharge_penalty > 0:
            self.stats.delayed_loads += 1
        line = uop.address >> self.hierarchy.l1d.organization.offset_bits
        latency = result.latency
        if self.lsq.can_forward(op.sequence, line):
            self.lsq.note_forwarded()
            latency = min(latency, self.hierarchy.l1d.base_latency)
        ready = self.load_speculation.resolve_load(
            load=op,
            issue_cycle=self._cycle,
            actual_latency=latency,
            issue_queue=self.issue_queue,
        )
        self.stats.load_replays = self.load_speculation.stats.replayed_uops
        op.complete_cycle = ready

    def _execute_store(self, op: InFlightOp) -> None:
        uop = op.uop
        self.stats.dcache_access_count += 1
        result = self.hierarchy.store(uop.address, self._cycle, base_address=uop.base_address)
        if result.precharge_penalty > 0:
            self.stats.delayed_loads += 0  # stores do not delay dependents
        # Stores complete as soon as their address/data are sent to the LSQ;
        # the write drains in the background.
        op.complete_cycle = self._cycle + uop.execution_latency

    def _dispatch(self) -> None:
        dispatched = 0
        while dispatched < self.config.width and self.fetch.queue:
            if self.rob.is_full or self.issue_queue.is_full:
                self.stats.dispatch_stall_cycles += 1
                return
            uop, mispredicted = self.fetch.queue[0]
            if uop.is_memory and self.lsq.is_full:
                self.stats.dispatch_stall_cycles += 1
                return
            self.fetch.queue.popleft()
            op = InFlightOp(
                uop=uop,
                sequence=self._sequence,
                dispatched_cycle=self._cycle,
                mispredicted_branch=mispredicted,
                producer1=self.rename_table.writer(uop.src1),
                producer2=self.rename_table.writer(uop.src2),
            )
            self._sequence += 1
            if uop.dest is not None:
                self.rename_table.set_writer(uop.dest, op)
            self.rob.push(op)
            self.issue_queue.push(op)
            if uop.is_memory:
                line = uop.address >> self.hierarchy.l1d.organization.offset_bits
                self.lsq.insert(op, line)
            dispatched += 1

    # ------------------------------------------------------------------
    # The main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle."""
        self._commit()
        self._issue()
        self._dispatch()
        self.fetch.fetch_cycle(self._cycle)
        self._cycle += 1
        self.stats.cycles = self._cycle

    def run(self, n_instructions: int) -> PipelineStats:
        """Run until ``n_instructions`` micro-ops have committed.

        Returns:
            The accumulated :class:`~repro.cpu.stats.PipelineStats`.

        Raises:
            RuntimeError: if the core livelocks (safety bound exceeded).
        """
        if n_instructions < 1:
            raise ValueError("must simulate at least one instruction")
        limit = n_instructions * self.config.max_cycles_per_instruction
        while self.stats.committed_instructions < n_instructions:
            if self.fetch.exhausted and self.rob.is_empty and not self.fetch.queue:
                break
            self.step()
            if self._cycle > limit:
                raise RuntimeError(
                    "pipeline exceeded the livelock safety bound "
                    f"({self._cycle} cycles for {n_instructions} instructions)"
                )
        return self.stats
