"""Cycle-level out-of-order processor model (the Wattch-baseline substrate).

An 8-wide, 16-stage out-of-order core with a reorder buffer, issue queue,
load/store queue, combination branch predictor and load-hit speculation
with selective replay — the microarchitectural mechanisms through which
delayed cache accesses (precharge penalties) turn into the slowdown
numbers the paper reports.
"""

from .branch_predictor import CombinationPredictor, PredictorStats, TwoBitCounter
from .fetch import FetchEngine
from .issue_queue import IssueQueue
from .load_speculation import LoadHitSpeculation, ReplayStats
from .lsq import LoadStoreQueue
from .pipeline import OutOfOrderPipeline, PipelineConfig
from .regfile import RenameTable
from .rob import InFlightOp, ReorderBuffer
from .stats import PipelineStats

__all__ = [
    "CombinationPredictor",
    "PredictorStats",
    "TwoBitCounter",
    "FetchEngine",
    "IssueQueue",
    "LoadHitSpeculation",
    "ReplayStats",
    "LoadStoreQueue",
    "OutOfOrderPipeline",
    "PipelineConfig",
    "RenameTable",
    "InFlightOp",
    "ReorderBuffer",
    "PipelineStats",
]
