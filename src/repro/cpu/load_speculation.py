"""Load-hit speculation and selective replay (Section 6.3).

Modern speculative processors issue the dependents of a load before the
load's latency is actually known, assuming it will hit in the L1 with a
fixed latency.  When the load takes longer — an L1 miss, or, with gated
precharging, a subarray whose bitlines had been isolated — the
speculatively issued dependents must be squashed and reissued.  Following
the paper, the Pentium-4-style *selective* replay is modelled: only the
dependents of the mispredicted load (not every younger instruction) are
replayed.

The replay machinery quantifies two costs:

* the dependents' results are delayed until the load's real completion
  (captured by re-scheduling them in the issue queue), and
* issue bandwidth and scheduler energy are wasted on the squashed issue
  slots (captured by counters the energy model and statistics consume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .issue_queue import IssueQueue
from .rob import InFlightOp

__all__ = ["LoadHitSpeculation", "ReplayStats"]


@dataclass
class ReplayStats:
    """Counters describing load-hit misspeculation behaviour."""

    speculative_loads: int = 0
    mispredicted_loads: int = 0
    replayed_uops: int = 0
    wasted_issue_slots: int = 0

    @property
    def misprediction_rate(self) -> float:
        """Fraction of loads whose latency exceeded the speculative assumption."""
        if self.speculative_loads == 0:
            return 0.0
        return self.mispredicted_loads / self.speculative_loads


class LoadHitSpeculation:
    """Implements the latency-speculation contract between loads and dependents."""

    def __init__(self, speculative_latency: int) -> None:
        """Create the speculation model.

        Args:
            speculative_latency: The load-to-use latency the scheduler
                assumes when issuing dependents (the L1 hit latency; a
                design that knows every access pays an extra precharge
                cycle — on-demand precharging — would fold it in here).
        """
        if speculative_latency < 1:
            raise ValueError("speculative latency must be at least one cycle")
        self.speculative_latency = speculative_latency
        self.stats = ReplayStats()

    def resolve_load(
        self,
        load: InFlightOp,
        issue_cycle: int,
        actual_latency: int,
        issue_queue: IssueQueue,
    ) -> int:
        """Resolve a load's true latency and replay dependents if needed.

        Args:
            load: The load being issued.
            issue_cycle: Cycle the load issues.
            actual_latency: The load's true load-to-use latency (base cache
                latency plus any precharge penalty and miss service time).
            issue_queue: The scheduler window, used to find dependents that
                would have issued under the wrong assumption.

        Returns:
            The cycle at which the load's result is genuinely available.
        """
        self.stats.speculative_loads += 1
        actual_ready = issue_cycle + actual_latency
        if actual_latency <= self.speculative_latency:
            return actual_ready

        # Misspeculation: dependents woken at the speculative latency must
        # be squashed and reissued.  Selective (Pentium 4 style) replay
        # touches only the dependents of this load's destination register.
        self.stats.mispredicted_loads += 1
        dependents = issue_queue.dependents_of(load)
        for dependent in dependents:
            dependent.replayed += 1
        self.stats.replayed_uops += len(dependents)
        # Each squashed dependent wasted one issue slot when it issued on
        # the wrong assumption and will consume another when it reissues.
        self.stats.wasted_issue_slots += len(dependents)
        return actual_ready
