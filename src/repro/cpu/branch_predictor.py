"""Combination (tournament) branch predictor.

Table 2 lists a "combination" predictor: a bimodal predictor and a gshare
(global-history) predictor arbitrated by a per-branch chooser, in the
style of the Alpha 21264.  Direction prediction only — the branch target
is assumed to come from a perfect BTB, so a misprediction means the
*direction* was wrong and the front end must be redirected once the branch
resolves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CombinationPredictor",
    "TwoBitCounter",
    "PredictorStats",
    "DEFAULT_TABLE_BITS",
    "DEFAULT_HISTORY_BITS",
]

#: Default predictor table size (log2 entries); the fast-path kernel
#: inlines tables of exactly this size, so share rather than re-type.
DEFAULT_TABLE_BITS = 12

#: Default global-history length in bits.
DEFAULT_HISTORY_BITS = 12


class TwoBitCounter:
    """Classic saturating two-bit counter."""

    __slots__ = ("value",)

    def __init__(self, value: int = 1) -> None:
        if not 0 <= value <= 3:
            raise ValueError("two-bit counter value must be in [0, 3]")
        self.value = value

    @property
    def taken(self) -> bool:
        """Predicted direction."""
        return self.value >= 2

    def update(self, taken: bool) -> None:
        """Train towards the actual outcome."""
        if taken and self.value < 3:
            self.value += 1
        elif not taken and self.value > 0:
            self.value -= 1


@dataclass
class PredictorStats:
    """Prediction counters."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of correct direction predictions."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class CombinationPredictor:
    """Bimodal + gshare with a chooser table."""

    def __init__(
        self,
        table_bits: int = DEFAULT_TABLE_BITS,
        history_bits: int = DEFAULT_HISTORY_BITS,
    ) -> None:
        if table_bits < 4 or history_bits < 1:
            raise ValueError("predictor tables too small")
        self._table_size = 1 << table_bits
        self._history_mask = (1 << history_bits) - 1
        self._bimodal = [1] * self._table_size
        self._gshare = [1] * self._table_size
        # Chooser: >=2 means trust gshare, <2 means trust bimodal.
        self._chooser = [1] * self._table_size
        self._global_history = 0
        self.stats = PredictorStats()

    # ------------------------------------------------------------------
    def _bimodal_index(self, pc: int) -> int:
        return (pc >> 2) & (self._table_size - 1)

    def _gshare_index(self, pc: int) -> int:
        return ((pc >> 2) ^ (self._global_history & self._history_mask)) & (
            self._table_size - 1
        )

    # ------------------------------------------------------------------
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc`` (no state change)."""
        bi = self._bimodal[self._bimodal_index(pc)] >= 2
        gs = self._gshare[self._gshare_index(pc)] >= 2
        use_gshare = self._chooser[self._bimodal_index(pc)] >= 2
        return gs if use_gshare else bi

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train and return whether the prediction was correct."""
        bi_idx = self._bimodal_index(pc)
        gs_idx = self._gshare_index(pc)
        bi_pred = self._bimodal[bi_idx] >= 2
        gs_pred = self._gshare[gs_idx] >= 2
        use_gshare = self._chooser[bi_idx] >= 2
        prediction = gs_pred if use_gshare else bi_pred

        # Train the component counters.
        self._bimodal[bi_idx] = _saturate(self._bimodal[bi_idx], taken)
        self._gshare[gs_idx] = _saturate(self._gshare[gs_idx], taken)

        # Train the chooser only when the components disagree.
        if bi_pred != gs_pred:
            self._chooser[bi_idx] = _saturate(self._chooser[bi_idx], gs_pred == taken)

        self._global_history = ((self._global_history << 1) | int(taken)) & 0xFFFFFFFF

        self.stats.predictions += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        return correct


def _saturate(value: int, increment: bool) -> int:
    """Two-bit saturating update."""
    if increment:
        return min(3, value + 1)
    return max(0, value - 1)
