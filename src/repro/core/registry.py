"""Pluggable precharge-policy registry and declarative policy specs.

The paper evaluates a fixed menu of precharge schemes, but the driver
layer should not hard-code that menu: new policies (drowsy bitlines,
way-predicting gates, hybrid schemes, ...) must be addable without
touching :mod:`repro.sim`.  This module provides the extension point:

* :func:`register_policy` — decorator that publishes a policy factory
  under a short name (plus aliases), recording its parameter defaults
  and any scheduler-visible latency it adds;
* :class:`PolicySpec` — a hashable, serialisable ``(name, params)``
  description of one policy instance.  :class:`~repro.sim.SimulationConfig`
  carries two of these, and the run-memoisation key is derived from the
  spec's canonical form, so registration is the *only* step a new policy
  needs.

Example::

    from repro.core.registry import PolicySpec, register_policy

    @register_policy("drowsy", aliases=("drowsy-bitline",))
    def make_drowsy(wake_cycles: int = 2):
        return DrowsyBitlinePolicy(wake_cycles=wake_cycles)

    spec = PolicySpec("drowsy", {"wake_cycles": 3})
    policy = spec.build()
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Tuple, Union

__all__ = [
    "PolicyInfo",
    "PolicySpec",
    "register_policy",
    "unregister_policy",
    "get_policy_info",
    "policy_names",
    "create_policy",
]


@dataclass(frozen=True)
class PolicyInfo:
    """One registered precharge policy.

    Attributes:
        name: Canonical short name (lower-case).
        factory: Callable building a policy instance from keyword params.
        defaults: Parameter names and default values, from the factory
            signature (parameters without defaults map to ``None``).
        aliases: Alternative names resolving to this policy.
        scheduler_extra_latency: Deterministic extra cycles the scheduler
            should expect on every data-cache access under this policy
            (on-demand precharging declares 1; most policies declare 0).
        description: One-line human-readable summary.
    """

    name: str
    factory: Callable[..., Any]
    defaults: Mapping[str, Any]
    aliases: Tuple[str, ...] = ()
    scheduler_extra_latency: int = 0
    description: str = ""


_REGISTRY: Dict[str, PolicyInfo] = {}
_ALIASES: Dict[str, str] = {}


def _normalise(name: str) -> str:
    return name.strip().lower()


def _signature_defaults(factory: Callable[..., Any]) -> Dict[str, Any]:
    defaults: Dict[str, Any] = {}
    for param in inspect.signature(factory).parameters.values():
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            continue
        defaults[param.name] = (
            None if param.default is inspect.Parameter.empty else param.default
        )
    return defaults


def register_policy(
    name: str,
    *,
    aliases: Tuple[str, ...] = (),
    scheduler_extra_latency: int = 0,
    description: str = "",
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Publish a policy factory under ``name``.

    Usable on a factory function or directly on a policy class; the
    factory's keyword parameters become the spec's accepted params.
    Re-registering a name replaces the previous entry (so tests can
    shadow and restore policies).
    """
    canonical = _normalise(name)

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        owner = _ALIASES.get(canonical)
        if owner is not None and owner != canonical:
            # get_policy_info resolves aliases before exact names, so a
            # policy registered under another policy's alias would be
            # unreachable; refuse instead of registering it silently.
            raise ValueError(
                f"policy name {canonical!r} is already an alias of {owner!r}"
            )
        info = PolicyInfo(
            name=canonical,
            factory=factory,
            defaults=_signature_defaults(factory),
            aliases=tuple(_normalise(a) for a in aliases),
            scheduler_extra_latency=scheduler_extra_latency,
            description=description or (inspect.getdoc(factory) or "").split("\n")[0],
        )
        for alias in info.aliases:
            owner = _ALIASES.get(alias)
            if alias in _REGISTRY or (owner is not None and owner != canonical):
                raise ValueError(
                    f"alias {alias!r} for policy {canonical!r} collides with "
                    "an existing policy name or alias"
                )
        replaced = _REGISTRY.get(canonical)
        if replaced is not None:
            # Drop the replaced entry's alias mappings so a shadowing
            # registration is reachable only under the names it declared.
            for alias in replaced.aliases:
                if _ALIASES.get(alias) == canonical:
                    _ALIASES.pop(alias, None)
        _REGISTRY[canonical] = info
        for alias in info.aliases:
            _ALIASES[alias] = canonical
        return factory

    return decorator


def unregister_policy(name: str) -> None:
    """Remove a registered policy, by name or alias (for test isolation)."""
    canonical = _normalise(name)
    canonical = _ALIASES.get(canonical, canonical)
    info = _REGISTRY.pop(canonical, None)
    if info is not None:
        for alias in info.aliases:
            _ALIASES.pop(alias, None)


def get_policy_info(name: str) -> PolicyInfo:
    """Look up a policy by canonical name or alias.

    Raises:
        ValueError: for an unknown policy name.
    """
    canonical = _normalise(name)
    canonical = _ALIASES.get(canonical, canonical)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValueError(f"unknown policy {name!r}; choose from: {known}") from None


def policy_names() -> Tuple[str, ...]:
    """Canonical names of every registered policy, sorted."""
    return tuple(sorted(_REGISTRY))


def create_policy(name: str, **params: Any) -> Any:
    """Instantiate a registered policy with keyword parameters."""
    return PolicySpec(name, params).build()


def _freeze_params(
    params: Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...], None]
) -> Tuple[Tuple[str, Any], ...]:
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = tuple(params)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class PolicySpec:
    """Declarative description of one policy instance.

    ``params`` may be given as a mapping (the natural spelling) and is
    stored as a sorted tuple of pairs so specs are hashable and usable
    inside frozen configs and memoisation keys.

    Attributes:
        name: Registered policy name (or alias).
        params: Constructor overrides as ``((key, value), ...)``.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", _normalise(self.name))
        object.__setattr__(self, "params", _freeze_params(self.params))
        try:
            hash(self.params)
        except TypeError:
            raise ValueError(
                f"policy parameters must be hashable (ints, floats, bools, "
                f"strings, tuples); got {dict(self.params)!r}"
            ) from None

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """The value of one parameter override, or ``default``."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    def asdict(self) -> Dict[str, Any]:
        """Parameter overrides as a plain dictionary."""
        return dict(self.params)

    def with_params(self, **overrides: Any) -> "PolicySpec":
        """A copy of this spec with some parameters changed."""
        merged = self.asdict()
        merged.update(overrides)
        return PolicySpec(self.name, merged)

    # ------------------------------------------------------------------
    def info(self) -> PolicyInfo:
        """The registry entry this spec refers to."""
        return get_policy_info(self.name)

    def validated_params(self) -> Dict[str, Any]:
        """Parameter overrides, checked against the factory signature.

        Raises:
            ValueError: for a parameter the factory does not accept.
        """
        info = self.info()
        params = self.asdict()
        unknown = sorted(set(params) - set(info.defaults))
        if unknown:
            allowed = ", ".join(sorted(info.defaults)) or "<none>"
            raise ValueError(
                f"policy {info.name!r} does not accept parameter(s) "
                f"{unknown}; allowed: {allowed}"
            )
        return params

    def canonical(self) -> "PolicySpec":
        """This spec with its canonical name and *all* defaults filled in.

        Two specs that build identical policies canonicalise identically,
        which is what makes spec-derived memoisation keys safe.
        """
        info = self.info()
        params = dict(info.defaults)
        params.update(self.validated_params())
        return PolicySpec(info.name, params)

    def cache_key(self) -> Tuple:
        """Hashable memo-key component derived from the canonical form."""
        canonical = self.canonical()
        return (canonical.name, canonical.params)

    def build(self) -> Any:
        """Instantiate the policy this spec describes."""
        info = self.info()
        return info.factory(**self.validated_params())

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation."""
        return {"name": self.name, "params": self.asdict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(data["name"], dict(data.get("params") or {}))

    @classmethod
    def parse(cls, text: str) -> "PolicySpec":
        """Parse a CLI-style spec: ``"gated:threshold=150,predecode_lead_cycles=3"``.

        Values are interpreted as ``int``, ``float`` or ``bool`` when they
        look like one, and kept as strings otherwise.
        """
        name, _, rest = text.partition(":")
        params: Dict[str, Any] = {}
        if rest:
            for chunk in rest.split(","):
                if not chunk.strip():
                    continue
                key, sep, raw = chunk.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed policy parameter {chunk!r} in {text!r} "
                        "(expected key=value)"
                    )
                params[key.strip()] = _parse_value(raw.strip())
        return cls(name, params)


def _parse_value(raw: str) -> Any:
    lowered = raw.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    for converter in (int, float):
        try:
            return converter(raw)
        except ValueError:
            continue
    return raw
