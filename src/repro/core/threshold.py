"""Threshold selection for gated precharging.

The adaptivity knob of gated precharging is the decay threshold: a small
threshold isolates subarrays aggressively (more discharge saved) but
delays more accesses.  The paper evaluates two settings (Section 6.4):

* a *per-benchmark optimum* found statically from profiling, defined as
  the most aggressive threshold whose performance degradation stays within
  1%, and
* a *constant* threshold of 100 cycles applied across the board.

The profiling-based search here mirrors that methodology: a profiling run
records every subarray's inter-access gap distribution, and the expected
slowdown of a candidate threshold is estimated from the number of gaps
that exceed it (each such gap is one delayed access) weighted by an
effective cost per delayed access.  The most aggressive candidate whose
estimate stays within the budget is returned; the choice can then be
validated with a full timing simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

__all__ = [
    "ThresholdProfile",
    "select_threshold",
    "CANDIDATE_THRESHOLDS",
    "CONSTANT_THRESHOLD",
    "PERFORMANCE_BUDGET",
]

#: Candidate thresholds spanning the range the paper reports ("on the
#: order of 10 to 1000, with most clustered around 100"), bounded by what
#: a 10-bit decay counter can represent.
CANDIDATE_THRESHOLDS: Sequence[int] = (10, 20, 50, 100, 200, 500, 1000)

#: The across-the-board constant threshold used as a reference.
CONSTANT_THRESHOLD = 100

#: The performance-degradation budget the per-benchmark optimum must respect.
PERFORMANCE_BUDGET = 0.01


@dataclass(frozen=True)
class ThresholdProfile:
    """Profiling data needed to estimate a threshold's cost.

    Attributes:
        gaps: Every observed subarray inter-access gap, in cycles.
        total_cycles: Length of the profiling run in cycles.
        penalty_cycles: Pipeline cycles lost per delayed access (the
            bitline pull-up itself is one cycle; data caches suffer an
            additional replay cost, captured by ``replay_factor``).
        replay_factor: Multiplier on the penalty modelling load-hit
            speculation replays (Section 6.3); ~1 for instruction caches,
            larger for data caches.
        predecode_coverage: Fraction of would-be delayed accesses hidden by
            predecoding (0 when predecoding is disabled).
    """

    gaps: Sequence[int]
    total_cycles: int
    penalty_cycles: int = 1
    replay_factor: float = 1.0
    predecode_coverage: float = 0.0

    def delayed_accesses(self, threshold: int) -> int:
        """Number of accesses that would find their subarray isolated."""
        return sum(1 for gap in self.gaps if gap > threshold)

    def estimated_slowdown(self, threshold: int) -> float:
        """Estimated execution-time increase for a candidate threshold."""
        if self.total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        delayed = self.delayed_accesses(threshold)
        effective = delayed * (1.0 - self.predecode_coverage)
        lost_cycles = effective * self.penalty_cycles * self.replay_factor
        return lost_cycles / self.total_cycles


def select_threshold(
    profile: ThresholdProfile,
    budget: float = PERFORMANCE_BUDGET,
    candidates: Iterable[int] = CANDIDATE_THRESHOLDS,
) -> int:
    """Pick the most aggressive threshold within the performance budget.

    Args:
        profile: Profiling data from a baseline (static pull-up) run.
        budget: Allowed estimated slowdown (the paper uses 1%).
        candidates: Threshold values to consider, in any order.

    Returns:
        The smallest candidate whose estimated slowdown is within budget;
        if none qualifies, the largest candidate (the most conservative).
    """
    ordered = sorted(set(int(c) for c in candidates))
    if not ordered:
        raise ValueError("need at least one candidate threshold")
    for candidate in ordered:
        if candidate < 1:
            raise ValueError("thresholds must be positive")
        if profile.estimated_slowdown(candidate) <= budget:
            return candidate
    return ordered[-1]
