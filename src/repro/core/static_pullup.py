"""Blind static pull-up: the conventional high-performance baseline.

Every subarray's bitlines are statically connected to the supply at all
times (Section 2).  No access ever pays a precharge penalty, and the
bitline discharge of every subarray accrues on every cycle — this is the
normalisation baseline for all the paper's relative-discharge figures.
"""

from __future__ import annotations

from typing import Optional

from .policies import BasePrechargePolicy
from .registry import register_policy

__all__ = ["StaticPullUpPolicy"]


class StaticPullUpPolicy(BasePrechargePolicy):
    """Keep every subarray precharged for the entire run."""

    def _on_access(
        self,
        subarray: int,
        cycle: int,
        gap: Optional[int],
        base_address: Optional[int] = None,
        address: Optional[int] = None,
    ) -> int:
        assert self.ledger is not None
        if gap is not None and gap > 0:
            self.ledger.note_precharged_interval(subarray, gap)
        return 0

    def _on_finalize_subarray(
        self, subarray: int, remaining_cycles: int, never_accessed: bool
    ) -> None:
        assert self.ledger is not None
        if remaining_cycles > 0:
            self.ledger.note_precharged_interval(subarray, remaining_cycles)
        if never_accessed:
            return

    def _is_precharged(self, subarray: int, cycle: int) -> bool:
        return True


@register_policy("static", description="Conventional blind static pull-up baseline")
def _make_static() -> StaticPullUpPolicy:
    return StaticPullUpPolicy()
