"""Precharge-control policies: the paper's contribution and its baselines.

* :class:`~repro.core.static_pullup.StaticPullUpPolicy` — conventional
  blind static pull-up (the normalisation baseline);
* :class:`~repro.core.oracle.OraclePrechargePolicy` — the Section 4
  potential study (perfect, zero-delay subarray identification);
* :class:`~repro.core.on_demand.OnDemandPrechargePolicy` — Section 5
  partial-address-decode precharging (+1 cycle on every access);
* :class:`~repro.core.gated.GatedPrechargePolicy` — Section 6 gated
  precharging with decay counters and optional predecoding;
* :class:`~repro.core.resizable.ResizableCachePolicy` — the prior-work
  resizable-cache baseline compared against in Figure 9;
* :mod:`~repro.core.registry` — the pluggable policy registry:
  :func:`~repro.core.registry.register_policy` publishes a factory under
  a short name and :class:`~repro.core.registry.PolicySpec` describes one
  policy instance declaratively (this is how the driver layer stays
  closed while the policy menu stays open);
* :mod:`~repro.core.threshold` — per-benchmark optimum / constant
  threshold selection;
* :mod:`~repro.core.decay_counter` — the Figure 7 hardware structure;
* :mod:`~repro.core.predecode` — base-register subarray prediction.
"""

from .decay_counter import (
    DEFAULT_COUNTER_BITS,
    DecayCounter,
    DecayCounterBank,
    counter_energy_fraction,
)
from .gated import DEFAULT_THRESHOLD, GatedPrechargePolicy
from .registry import (
    PolicyInfo,
    PolicySpec,
    create_policy,
    get_policy_info,
    policy_names,
    register_policy,
    unregister_policy,
)
from .on_demand import OnDemandPrechargePolicy
from .oracle import OraclePrechargePolicy
from .policies import BasePrechargePolicy, PolicyStats
from .predecode import Predecoder, PredecodeStats
from .resizable import ResizableCachePolicy
from .static_pullup import StaticPullUpPolicy
from .threshold import (
    CANDIDATE_THRESHOLDS,
    CONSTANT_THRESHOLD,
    PERFORMANCE_BUDGET,
    ThresholdProfile,
    select_threshold,
)

__all__ = [
    "DEFAULT_COUNTER_BITS",
    "DecayCounter",
    "DecayCounterBank",
    "counter_energy_fraction",
    "DEFAULT_THRESHOLD",
    "GatedPrechargePolicy",
    "OnDemandPrechargePolicy",
    "OraclePrechargePolicy",
    "BasePrechargePolicy",
    "PolicyStats",
    "PolicyInfo",
    "PolicySpec",
    "create_policy",
    "get_policy_info",
    "policy_names",
    "register_policy",
    "unregister_policy",
    "Predecoder",
    "PredecodeStats",
    "ResizableCachePolicy",
    "StaticPullUpPolicy",
    "CANDIDATE_THRESHOLDS",
    "CONSTANT_THRESHOLD",
    "PERFORMANCE_BUDGET",
    "ThresholdProfile",
    "select_threshold",
]
