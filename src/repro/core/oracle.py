"""Oracle precharging: the potential study of Section 4.

On every access an oracle identifies the accessed subarray with *no* delay
and precharges only that subarray; once the access completes the bitlines
are isolated again.  Because identification is free and perfectly
accurate, no access pays a latency penalty — the oracle measures the
maximum discharge reduction bitline isolation can deliver.

The residual discharge the oracle cannot remove comes from two places
(Section 4): bitlines re-accessed soon after isolation have not decayed
far, and every access toggles the precharge devices (negligible at 70nm,
dominant at 180nm).
"""

from __future__ import annotations

from typing import Optional

from .policies import BasePrechargePolicy
from .registry import register_policy

__all__ = ["OraclePrechargePolicy"]


class OraclePrechargePolicy(BasePrechargePolicy):
    """Precharge exactly the accessed subarray, exactly when needed."""

    def __init__(self, hold_cycles: int = 1) -> None:
        """Create an oracle policy.

        Args:
            hold_cycles: How many cycles the accessed subarray stays
                precharged around each access (the access itself).
        """
        super().__init__()
        if hold_cycles < 1:
            raise ValueError("hold_cycles must be at least 1")
        self.hold_cycles = hold_cycles

    def _on_access(
        self,
        subarray: int,
        cycle: int,
        gap: Optional[int],
        base_address: Optional[int] = None,
        address: Optional[int] = None,
    ) -> int:
        interval = gap if gap is not None else cycle
        ledger = self.ledger
        assert ledger is not None
        # Fused accounting call (same arithmetic and order as the
        # note_precharged/note_isolated/note_toggle sequence).
        if ledger.note_gated_interval(subarray, interval, self.hold_cycles):
            self.stats.toggles += 1
        return 0

    def _on_finalize_subarray(
        self, subarray: int, remaining_cycles: int, never_accessed: bool
    ) -> None:
        self._account_gated_interval(subarray, remaining_cycles, self.hold_cycles)

    def _is_precharged(self, subarray: int, cycle: int) -> bool:
        last = self._last_access[subarray]
        if last is None:
            return cycle < self.hold_cycles
        return (cycle - last) < self.hold_cycles


@register_policy("oracle", description="Perfect zero-delay subarray identification (Section 4)")
def _make_oracle(hold_cycles: int = 1) -> OraclePrechargePolicy:
    return OraclePrechargePolicy(hold_cycles=hold_cycles)
