"""Gated precharging: the paper's proposed technique (Section 6).

Each subarray carries a decay counter (Figure 7) that is reset on an
access and compared against a threshold every cycle.  While the counter is
below the threshold the subarray is *hot* and its bitlines stay
precharged; once it exceeds the threshold the bitlines are isolated.  The
next access to an isolated subarray pays the bitline pull-up penalty
(one cycle, Table 3) — a *misprediction* — unless, for data caches,
predecoding identified the subarray early from the load/store base
register and it was re-precharged in time.

Gated precharging therefore exploits subarray reference locality: most
accesses fall on a small set of recently used subarrays (Figures 5 and 6),
so keeping just those precharged captures nearly all of the oracle's
potential savings while delaying almost no accesses.
"""

from __future__ import annotations

from typing import Optional

from .decay_counter import DEFAULT_COUNTER_BITS, DecayCounterBank
from .policies import BasePrechargePolicy
from .registry import register_policy
from .predecode import Predecoder

__all__ = ["GatedPrechargePolicy", "DEFAULT_THRESHOLD"]

#: The constant threshold the paper uses as its across-the-board reference
#: (Section 6.4: "a constant threshold (100)").
DEFAULT_THRESHOLD = 100


class GatedPrechargePolicy(BasePrechargePolicy):
    """Keep recently accessed (hot) subarrays precharged; isolate the rest."""

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        use_predecode: bool = False,
        predecode_lead_cycles: int = 2,
    ) -> None:
        """Create a gated-precharging policy.

        Args:
            threshold: Decay-counter threshold in cycles.  A subarray is
                isolated once it has gone ``threshold`` cycles without an
                access.  Smaller thresholds isolate more aggressively but
                mispredict more.
            use_predecode: Enable the Section 6.3 predecoding heuristic
                (meaningful for data caches, where the base-register value
                is available early).
            predecode_lead_cycles: How many cycles before the effective
                address the base register is available; a correct
                prediction re-precharges the subarray this early, hiding
                the pull-up.
        """
        super().__init__()
        if threshold < 1:
            raise ValueError("threshold must be at least one cycle")
        if predecode_lead_cycles < 1:
            raise ValueError("predecode_lead_cycles must be at least 1")
        self.threshold = threshold
        self.use_predecode = use_predecode
        self.predecode_lead_cycles = predecode_lead_cycles
        self.predecoder: Optional[Predecoder] = None

    # ------------------------------------------------------------------
    def _on_attach(self) -> None:
        assert self.organization is not None
        if self.use_predecode:
            self.predecoder = Predecoder(self.organization)
        else:
            self.predecoder = None

    def _on_access(
        self,
        subarray: int,
        cycle: int,
        gap: Optional[int],
        base_address: Optional[int] = None,
        address: Optional[int] = None,
    ) -> int:
        interval = gap if gap is not None else cycle
        ledger = self.ledger
        assert ledger is not None
        # note_gated_interval fuses the precharged/isolated/toggle
        # accounting (same arithmetic, same order) for this hot path.
        if not ledger.note_gated_interval(subarray, interval, self.threshold):
            return 0
        self.stats.toggles += 1

        # The subarray had been isolated: normally the access is delayed by
        # the pull-up.  With predecoding, a correct early identification
        # re-precharges it in time and hides the delay.
        if self.predecoder is not None and base_address is not None:
            self.stats.predecode_attempts += 1
            if self.predecoder.predicts_correctly(base_address, subarray):
                self.stats.predecode_hits += 1
                return 0
        return self.penalty_cycles_per_delayed_access

    def _on_finalize_subarray(
        self, subarray: int, remaining_cycles: int, never_accessed: bool
    ) -> None:
        self._account_gated_interval(subarray, remaining_cycles, self.threshold)

    def _is_precharged(self, subarray: int, cycle: int) -> bool:
        last = self._last_access[subarray]
        reference = 0 if last is None else last
        return (cycle - reference) < self.threshold

    # ------------------------------------------------------------------
    def counter_bank(self, cycle: int) -> DecayCounterBank:
        """The Figure 7 counter bank's state at ``cycle``.

        The simulation evaluates decay lazily from last-access cycles;
        this materialises the equivalent hardware state — every counter
        ticked once per cycle (batched, saturating) and reset by its
        subarray's accesses — for inspection and reporting.  Counter
        width grows beyond the paper's 10 bits when the threshold needs
        it, so ``is_hot`` always agrees with the lazy evaluation.
        """
        self._require_attached()
        bits = max(DEFAULT_COUNTER_BITS, self.threshold.bit_length())
        saturation = (1 << bits) - 1
        values = []
        for last in self._last_access:
            start = 0 if last is None else last
            elapsed = cycle - start
            values.append(min(max(0, elapsed), saturation))
        return DecayCounterBank.from_values(
            values, threshold=self.threshold, bits=bits
        )

    def precharged_subarrays(self, cycle: int) -> int:
        """Number of subarrays precharged at ``cycle`` (hot counters)."""
        return self.counter_bank(cycle).hot_count()

    @property
    def misprediction_rate(self) -> float:
        """Fraction of accesses that found their subarray isolated."""
        if self.stats.accesses == 0:
            return 0.0
        return self.stats.delayed_accesses / self.stats.accesses


@register_policy(
    "gated",
    aliases=("gated_precharge",),
    description="Gated precharging with decay counters (Section 6)",
)
def _make_gated(
    threshold: int = DEFAULT_THRESHOLD, predecode_lead_cycles: int = 2
) -> GatedPrechargePolicy:
    return GatedPrechargePolicy(
        threshold=threshold,
        use_predecode=False,
        predecode_lead_cycles=predecode_lead_cycles,
    )


@register_policy(
    "gated-predecode",
    aliases=("gated_predecode",),
    description="Gated precharging with base-register predecoding (Section 6.3)",
)
def _make_gated_predecode(
    threshold: int = DEFAULT_THRESHOLD, predecode_lead_cycles: int = 2
) -> GatedPrechargePolicy:
    return GatedPrechargePolicy(
        threshold=threshold,
        use_predecode=True,
        predecode_lead_cycles=predecode_lead_cycles,
    )
