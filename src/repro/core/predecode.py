"""Predecoding: early subarray identification from the base register.

Section 6.3 observes that most memory instructions use displacement
addressing (address = base + displacement) and that the displacement is
usually small enough not to change which subarray is accessed.  The base
register value is known right after register read — several pipeline
stages before the effective address — so the subarray it points at can be
precharged early, hiding the pull-up latency.

The paper measures predecoding accuracy at ~80% for 1KB subarrays and
~61% for cache-line-sized (64B here: two lines of 32B) subarrays; the
accuracy in this reproduction is *computed*, not assumed: a prediction is
correct exactly when the base address and the effective address fall into
the same subarray, which depends on the workload's displacement
distribution and the subarray size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.cacti import CacheOrganization

__all__ = ["Predecoder", "PredecodeStats"]


@dataclass
class PredecodeStats:
    """Prediction counters for a predecoder."""

    attempts: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that named the right subarray."""
        if self.attempts == 0:
            return 0.0
        return self.correct / self.attempts


class Predecoder:
    """Predicts the accessed subarray from the base-register value."""

    def __init__(self, organization: CacheOrganization) -> None:
        self.organization = organization
        self.stats = PredecodeStats()

    def predict(self, base_address: int) -> int:
        """Subarray the base register points at."""
        return self.organization.subarray_for_address(base_address)

    def predicts_correctly(
        self, base_address: Optional[int], actual_subarray: int
    ) -> bool:
        """Run one prediction and record whether it was correct.

        Args:
            base_address: Base-register value, or ``None`` when the access
                does not use displacement addressing (no prediction made).
            actual_subarray: Subarray the effective address actually maps to.

        Returns:
            ``True`` when a prediction was made and named the right
            subarray; ``False`` otherwise.
        """
        if base_address is None:
            return False
        predicted = self.predict(base_address)
        self.stats.attempts += 1
        correct = predicted == actual_subarray
        if correct:
            self.stats.correct += 1
        return correct
