"""Per-subarray decay counter (Figure 7).

Gated precharging attaches one small saturating counter to every subarray.
The counter is reset on an access and incremented every cycle; while its
value is below the threshold the subarray is considered *hot* and is kept
precharged, otherwise its bitlines are isolated.  The paper finds 10-bit
counters sufficient and estimates the added hardware at under 0.02% of one
base cache access's energy.

The architectural simulator never ticks these counters cycle-by-cycle —
the policy evaluates them lazily from the last-access cycle, which is
mathematically identical — but this module models the hardware structure
itself so its behaviour, saturation and energy estimate can be tested and
reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

try:  # numpy accelerates the bank's batched ticks when present
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = [
    "DecayCounter",
    "DecayCounterBank",
    "DEFAULT_COUNTER_BITS",
    "counter_energy_fraction",
]

#: Counter width the paper found sufficient.
DEFAULT_COUNTER_BITS = 10

#: Paper estimate: the counters + comparators dissipate less than 0.02% of
#: the energy of one base cache access, per subarray, per cycle.
_COUNTER_ENERGY_FRACTION_OF_ACCESS = 0.0002


@dataclass
class DecayCounter:
    """A saturating up-counter compared against a threshold every cycle.

    Attributes:
        threshold: Hot/cold boundary; the subarray is hot while the
            counter value is strictly below the threshold.
        bits: Counter width; the counter saturates at ``2**bits - 1``.
    """

    threshold: int
    bits: int = DEFAULT_COUNTER_BITS
    value: int = 0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("counter needs at least one bit")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.threshold > self.saturation_value:
            raise ValueError(
                f"threshold {self.threshold} does not fit in {self.bits} bits"
            )

    @property
    def saturation_value(self) -> int:
        """Maximum representable counter value."""
        return (1 << self.bits) - 1

    def tick(self) -> None:
        """Advance one cycle (saturating increment)."""
        if self.value < self.saturation_value:
            self.value += 1

    def reset(self) -> None:
        """An access occurred: the counter returns to zero."""
        self.value = 0

    @property
    def is_hot(self) -> bool:
        """Whether the subarray should currently be kept precharged."""
        return self.value < self.threshold

    def advance(self, cycles: int) -> None:
        """Advance many cycles at once (used in tests and lazy evaluation)."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.value = min(self.saturation_value, self.value + cycles)


class DecayCounterBank:
    """All of one cache's decay counters, advanced in batch.

    The hardware has one counter per subarray, all ticking every cycle;
    modelling that structure one :class:`DecayCounter` at a time costs a
    Python call per counter per step.  The bank stores the values as one
    vector (numpy when available, a plain list otherwise) and applies a
    whole interval of ticks as a single saturating add — the batched
    analogue of the fast path's run-length accounting, and exactly
    equivalent to ticking every counter ``cycles`` times.
    """

    def __init__(
        self,
        n_counters: int,
        threshold: int,
        bits: int = DEFAULT_COUNTER_BITS,
    ) -> None:
        if n_counters < 1:
            raise ValueError("need at least one counter")
        # Reuse DecayCounter's validation so bank and scalar counters
        # accept exactly the same (threshold, bits) space.
        DecayCounter(threshold=threshold, bits=bits)
        self.threshold = threshold
        self.bits = bits
        self.saturation_value = (1 << bits) - 1
        self._use_numpy = _np is not None
        if self._use_numpy:
            self._values = _np.zeros(n_counters, dtype=_np.int64)
        else:
            self._values = [0] * n_counters

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[int]:
        """Current counter values (a copy, index-aligned with subarrays)."""
        return [int(value) for value in self._values]

    def advance(self, cycles: int) -> None:
        """Tick every counter ``cycles`` times (vectorised, saturating)."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if cycles == 0:
            return
        if self._use_numpy:
            _np.minimum(self._values + cycles, self.saturation_value,
                        out=self._values)
        else:
            saturation = self.saturation_value
            self._values = [
                value + cycles if value + cycles < saturation else saturation
                for value in self._values
            ]

    def reset(self, index: int) -> None:
        """An access touched counter ``index``: it returns to zero."""
        self._values[index] = 0

    def is_hot(self, index: int) -> bool:
        """Whether subarray ``index`` should currently stay precharged."""
        return self._values[index] < self.threshold

    def hot_count(self) -> int:
        """Number of counters currently below the threshold."""
        if self._use_numpy:
            return int((self._values < self.threshold).sum())
        threshold = self.threshold
        return sum(1 for value in self._values if value < threshold)

    def counters(self) -> Sequence[DecayCounter]:
        """Materialise the bank as scalar counters (tests, inspection)."""
        return [
            DecayCounter(threshold=self.threshold, bits=self.bits, value=int(value))
            for value in self._values
        ]

    @classmethod
    def from_values(
        cls,
        values: Sequence[int],
        threshold: int,
        bits: int = DEFAULT_COUNTER_BITS,
    ) -> "DecayCounterBank":
        """Build a bank holding the given per-counter values."""
        bank = cls(len(values), threshold=threshold, bits=bits)
        saturation = bank.saturation_value
        for index, value in enumerate(values):
            if not 0 <= value <= saturation:
                raise ValueError(
                    f"counter value {value} does not fit in {bits} bits"
                )
            bank._values[index] = value
        return bank


def counter_energy_fraction(n_subarrays: int) -> float:
    """Energy of the gated-precharging hardware relative to one cache access.

    Args:
        n_subarrays: Number of subarrays (one counter + comparator each).

    Returns:
        The fraction of a single base cache access's energy dissipated per
        cycle by all the counters together.
    """
    if n_subarrays < 1:
        raise ValueError("n_subarrays must be positive")
    return _COUNTER_ENERGY_FRACTION_OF_ACCESS * n_subarrays
