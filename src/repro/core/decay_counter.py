"""Per-subarray decay counter (Figure 7).

Gated precharging attaches one small saturating counter to every subarray.
The counter is reset on an access and incremented every cycle; while its
value is below the threshold the subarray is considered *hot* and is kept
precharged, otherwise its bitlines are isolated.  The paper finds 10-bit
counters sufficient and estimates the added hardware at under 0.02% of one
base cache access's energy.

The architectural simulator never ticks these counters cycle-by-cycle —
the policy evaluates them lazily from the last-access cycle, which is
mathematically identical — but this module models the hardware structure
itself so its behaviour, saturation and energy estimate can be tested and
reported.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DecayCounter", "DEFAULT_COUNTER_BITS", "counter_energy_fraction"]

#: Counter width the paper found sufficient.
DEFAULT_COUNTER_BITS = 10

#: Paper estimate: the counters + comparators dissipate less than 0.02% of
#: the energy of one base cache access, per subarray, per cycle.
_COUNTER_ENERGY_FRACTION_OF_ACCESS = 0.0002


@dataclass
class DecayCounter:
    """A saturating up-counter compared against a threshold every cycle.

    Attributes:
        threshold: Hot/cold boundary; the subarray is hot while the
            counter value is strictly below the threshold.
        bits: Counter width; the counter saturates at ``2**bits - 1``.
    """

    threshold: int
    bits: int = DEFAULT_COUNTER_BITS
    value: int = 0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("counter needs at least one bit")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.threshold > self.saturation_value:
            raise ValueError(
                f"threshold {self.threshold} does not fit in {self.bits} bits"
            )

    @property
    def saturation_value(self) -> int:
        """Maximum representable counter value."""
        return (1 << self.bits) - 1

    def tick(self) -> None:
        """Advance one cycle (saturating increment)."""
        if self.value < self.saturation_value:
            self.value += 1

    def reset(self) -> None:
        """An access occurred: the counter returns to zero."""
        self.value = 0

    @property
    def is_hot(self) -> bool:
        """Whether the subarray should currently be kept precharged."""
        return self.value < self.threshold

    def advance(self, cycles: int) -> None:
        """Advance many cycles at once (used in tests and lazy evaluation)."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.value = min(self.saturation_value, self.value + cycles)


def counter_energy_fraction(n_subarrays: int) -> float:
    """Energy of the gated-precharging hardware relative to one cache access.

    Args:
        n_subarrays: Number of subarrays (one counter + comparator each).

    Returns:
        The fraction of a single base cache access's energy dissipated per
        cycle by all the counters together.
    """
    if n_subarrays < 1:
        raise ValueError("n_subarrays must be positive")
    return _COUNTER_ENERGY_FRACTION_OF_ACCESS * n_subarrays
