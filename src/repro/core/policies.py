"""Precharge-control policy base class.

Every precharge scheme the paper studies — blind static pull-up, the
oracle potential study, on-demand (partial-address-decode) precharging,
gated precharging and the resizable-cache baseline — is expressed as a
policy object plugged into a :class:`repro.cache.SetAssociativeCache`.

The cache notifies the policy of every access (subarray index, cycle, and
optionally the base-register address for predecoding); the policy answers
with the extra latency that access pays and keeps the cache's
:class:`~repro.cache.energy_accounting.EnergyLedger` informed of how long
each subarray spent pulled up or isolated and how often its precharge
devices were toggled.

Accounting is performed lazily, per inter-access gap, which is exact for
all the policies implemented here and avoids a per-cycle, per-subarray
simulation loop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from repro.cache.energy_accounting import EnergyLedger
from repro.circuits.cacti import CacheOrganization

__all__ = ["BasePrechargePolicy", "PolicyStats"]


class PolicyStats:
    """Counters shared by every precharge policy."""

    def __init__(self) -> None:
        self.accesses = 0
        self.delayed_accesses = 0
        self.penalty_cycles = 0
        self.toggles = 0
        self.predecode_hits = 0
        self.predecode_attempts = 0

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of accesses that found their subarray precharged."""
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.delayed_accesses / self.accesses

    @property
    def predecode_accuracy(self) -> float:
        """Fraction of predecode attempts that identified the right subarray."""
        if self.predecode_attempts == 0:
            return 0.0
        return self.predecode_hits / self.predecode_attempts


class BasePrechargePolicy(ABC):
    """Common machinery for precharge-control policies.

    Subclasses implement :meth:`_on_access`, which receives the subarray,
    the current cycle and the gap since that subarray's previous access,
    performs the residency accounting for the elapsed gap and returns the
    extra latency the access pays.
    """

    def __init__(self) -> None:
        self.organization: Optional[CacheOrganization] = None
        self.ledger: Optional[EnergyLedger] = None
        self.stats = PolicyStats()
        self._last_access: List[Optional[int]] = []
        self._penalty_cycles_per_miss = 1
        self._finalized = False

    # ------------------------------------------------------------------
    # PrechargeController protocol
    # ------------------------------------------------------------------
    def attach(self, organization: CacheOrganization, ledger: EnergyLedger) -> None:
        """Bind the policy to a cache organisation and its energy ledger."""
        self.organization = organization
        self.ledger = ledger
        self._last_access = [None] * organization.n_subarrays
        self._penalty_cycles_per_miss = max(
            1, organization.isolated_access_penalty_cycles
        )
        self._finalized = False
        self._on_attach()

    def access(
        self,
        subarray: int,
        cycle: int,
        base_address: Optional[int] = None,
        address: Optional[int] = None,
    ) -> int:
        """Record an access and return the extra latency it pays (cycles)."""
        try:
            previous = self._last_access[subarray]
        except (IndexError, TypeError):
            # Unattached policies keep the documented RuntimeError with
            # stats untouched; an out-of-range subarray on an attached
            # policy re-raises after counting, as it always did.
            self._require_attached()
            self.stats.accesses += 1
            raise
        stats = self.stats
        stats.accesses += 1
        # A subarray that has never been accessed has been sitting in its
        # reset state (precharged, with the policy applied) since cycle 0;
        # treat the elapsed time as a normal inter-access gap.
        if previous is None:
            gap = cycle
        else:
            gap = cycle - previous
            if gap < 0:
                gap = 0
        penalty = self._on_access(
            subarray, cycle, gap, base_address=base_address, address=address
        )
        self._last_access[subarray] = cycle
        if penalty > 0:
            stats.delayed_accesses += 1
            stats.penalty_cycles += penalty
        return penalty

    def note_outcome(self, hit: bool, cycle: int) -> None:
        """Hit/miss feedback; only the resizable baseline uses it."""
        return None

    def remap_set(self, set_index: int, n_sets: int) -> int:
        """Set-index remapping hook; identity for every policy but resizable."""
        return set_index

    def finalize(self, end_cycle: int) -> None:
        """Close every subarray's open residency interval at ``end_cycle``."""
        self._require_attached()
        if self._finalized:
            return
        self._finalized = True
        assert self.organization is not None
        for subarray in range(self.organization.n_subarrays):
            last = self._last_access[subarray]
            start = 0 if last is None else last
            remaining = max(0, end_cycle - start)
            self._on_finalize_subarray(subarray, remaining, last is None)

    def precharged_subarrays(self, cycle: int) -> int:
        """Number of subarrays precharged at ``cycle`` (policy-specific)."""
        self._require_attached()
        assert self.organization is not None
        count = 0
        for subarray in range(self.organization.n_subarrays):
            if self._is_precharged(subarray, cycle):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _on_attach(self) -> None:
        """Extra per-attach initialisation for subclasses."""
        return None

    @abstractmethod
    def _on_access(
        self,
        subarray: int,
        cycle: int,
        gap: Optional[int],
        base_address: Optional[int] = None,
        address: Optional[int] = None,
    ) -> int:
        """Account for the elapsed gap and return the access's extra latency."""

    @abstractmethod
    def _on_finalize_subarray(
        self, subarray: int, remaining_cycles: int, never_accessed: bool
    ) -> None:
        """Account for the residency between the last access and the run's end."""

    @abstractmethod
    def _is_precharged(self, subarray: int, cycle: int) -> bool:
        """Whether the subarray is precharged at ``cycle``."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _require_attached(self) -> None:
        if self.organization is None or self.ledger is None:
            raise RuntimeError(
                f"{type(self).__name__} must be attached to a cache before use"
            )

    def _account_gated_interval(
        self, subarray: int, interval: int, hold_cycles: int
    ) -> bool:
        """Account an interval where the subarray stays precharged ``hold_cycles``.

        Returns ``True`` when the interval ended with the subarray isolated
        (i.e. the precharge devices were toggled during the interval).
        """
        ledger = self.ledger
        assert ledger is not None
        if ledger.note_gated_interval(subarray, interval, hold_cycles):
            self.stats.toggles += 1
            return True
        return False

    @property
    def penalty_cycles_per_delayed_access(self) -> int:
        """Extra cycles paid when an access finds its subarray isolated."""
        return self._penalty_cycles_per_miss
