"""Resizable-cache baseline (Yang et al., HPCA 2002).

Resizable caches exploit the variability in cache-size demand across and
within applications: every interval (the paper quotes roughly one million
instructions) the cache's miss ratio is examined and the number of
*active* subarrays is grown or shrunk; inactive subarrays have their
bitlines isolated.  Because the active subarrays use plain static pull-up
and the precharge devices toggle only at interval boundaries, the
switching overhead is amortised and accesses never pay a pull-up penalty —
but the coarse granularity leaves most of the potential savings untouched
(Section 6.4 / Figure 9), and downsizing introduces extra misses because
data must be remapped into fewer sets.

Resizing is implemented by masking high-order set-index bits, exactly the
"vary the number of cache sets" scheme of the original proposal: with
``k`` of ``n`` subarrays active, the set index is taken modulo
``n_sets * k / n``.
"""

from __future__ import annotations

from typing import List, Optional

from .policies import BasePrechargePolicy
from .registry import register_policy

__all__ = ["ResizableCachePolicy"]


class ResizableCachePolicy(BasePrechargePolicy):
    """Interval-based cache resizing with bitline isolation of inactive subarrays."""

    def __init__(
        self,
        interval_accesses: int = 50_000,
        miss_ratio_slack: float = 0.02,
        min_active_fraction: float = 0.125,
    ) -> None:
        """Create a resizable-cache policy.

        Args:
            interval_accesses: Number of cache accesses per resizing
                interval.  The paper uses ~1M instructions; this default is
                scaled to the shorter synthetic runs used here.
            miss_ratio_slack: Additional absolute miss ratio tolerated when
                downsizing (the performance-protection bound that keeps the
                slowdown near 1%).
            min_active_fraction: Smallest fraction of subarrays the cache
                may shrink to.
        """
        super().__init__()
        if interval_accesses < 1:
            raise ValueError("interval_accesses must be positive")
        if not 0.0 < min_active_fraction <= 1.0:
            raise ValueError("min_active_fraction must be in (0, 1]")
        if miss_ratio_slack < 0:
            raise ValueError("miss_ratio_slack must be non-negative")
        self.interval_accesses = interval_accesses
        self.miss_ratio_slack = miss_ratio_slack
        self.min_active_fraction = min_active_fraction

        self._active_subarrays = 0
        self._last_resize_cycle = 0
        self._interval_hits = 0
        self._interval_misses = 0
        self._full_size_miss_ratio: Optional[float] = None
        self._interval_count = 0
        self.resize_events = 0
        self.size_history: List[int] = []

    # ------------------------------------------------------------------
    def _on_attach(self) -> None:
        assert self.organization is not None
        self._active_subarrays = self.organization.n_subarrays
        self._last_resize_cycle = 0
        self._interval_hits = 0
        self._interval_misses = 0
        self._full_size_miss_ratio = None
        self._interval_count = 0
        self.resize_events = 0
        self.size_history = [self._active_subarrays]

    # ------------------------------------------------------------------
    # Set remapping: only the active portion of the cache is indexable.
    # ------------------------------------------------------------------
    def remap_set(self, set_index: int, n_sets: int) -> int:
        self._require_attached()
        assert self.organization is not None
        total = self.organization.n_subarrays
        active_sets = max(1, n_sets * self._active_subarrays // total)
        return set_index % active_sets

    # ------------------------------------------------------------------
    # Access path: active subarrays are statically pulled up, so no access
    # is ever delayed; residency is accounted at resize boundaries.
    # ------------------------------------------------------------------
    def _on_access(
        self,
        subarray: int,
        cycle: int,
        gap: Optional[int],
        base_address: Optional[int] = None,
        address: Optional[int] = None,
    ) -> int:
        self._maybe_resize(cycle)
        return 0

    def note_outcome(self, hit: bool, cycle: int) -> None:
        if hit:
            self._interval_hits += 1
        else:
            self._interval_misses += 1

    def _maybe_resize(self, cycle: int) -> None:
        interval_total = self._interval_hits + self._interval_misses
        if interval_total < self.interval_accesses:
            return
        miss_ratio = self._interval_misses / interval_total
        self._interval_count += 1

        # The first interval runs at full size and establishes the
        # reference miss ratio against which downsizing is judged.
        if self._full_size_miss_ratio is None:
            self._full_size_miss_ratio = miss_ratio
            self._apply_resize(self._propose_size(miss_ratio), cycle)
        else:
            self._apply_resize(self._propose_size(miss_ratio), cycle)
        self._interval_hits = 0
        self._interval_misses = 0

    def _propose_size(self, miss_ratio: float) -> int:
        assert self.organization is not None
        total = self.organization.n_subarrays
        minimum = max(1, int(total * self.min_active_fraction))
        reference = self._full_size_miss_ratio or 0.0
        if miss_ratio > reference + self.miss_ratio_slack:
            # Performance bound violated: grow back towards full size.
            return min(total, self._active_subarrays * 2)
        # Performance acceptable: try shrinking.
        return max(minimum, self._active_subarrays // 2)

    def _apply_resize(self, new_size: int, cycle: int) -> None:
        assert self.organization is not None
        assert self.ledger is not None
        if new_size == self._active_subarrays:
            self.size_history.append(new_size)
            return
        elapsed = max(0, cycle - self._last_resize_cycle)
        self._account_interval(elapsed)
        toggled = abs(new_size - self._active_subarrays)
        for _ in range(toggled):
            self.ledger.note_toggle(0)
            self.stats.toggles += 1
        self._active_subarrays = new_size
        self._last_resize_cycle = cycle
        self.resize_events += 1
        self.size_history.append(new_size)

    def _account_interval(self, elapsed_cycles: int) -> None:
        """Charge the elapsed interval: active subarrays pulled up, rest isolated."""
        assert self.organization is not None
        assert self.ledger is not None
        if elapsed_cycles <= 0:
            return
        total = self.organization.n_subarrays
        for subarray in range(total):
            if subarray < self._active_subarrays:
                self.ledger.note_precharged_interval(subarray, elapsed_cycles)
            else:
                self.ledger.note_isolated_interval(subarray, elapsed_cycles)

    # ------------------------------------------------------------------
    def finalize(self, end_cycle: int) -> None:
        self._require_attached()
        if self._finalized:
            return
        self._finalized = True
        elapsed = max(0, end_cycle - self._last_resize_cycle)
        self._account_interval(elapsed)

    def _on_finalize_subarray(
        self, subarray: int, remaining_cycles: int, never_accessed: bool
    ) -> None:  # pragma: no cover - finalize() is overridden wholesale
        return None

    def _is_precharged(self, subarray: int, cycle: int) -> bool:
        return subarray < self._active_subarrays

    # ------------------------------------------------------------------
    @property
    def active_subarrays(self) -> int:
        """Number of subarrays currently powered and indexable."""
        return self._active_subarrays


@register_policy(
    "resizable",
    description="Interval-based resizable-cache baseline (Figure 9)",
)
def _make_resizable(
    interval_accesses: int = 50_000,
    miss_ratio_slack: float = 0.02,
    min_active_fraction: float = 0.125,
) -> ResizableCachePolicy:
    return ResizableCachePolicy(
        interval_accesses=interval_accesses,
        miss_ratio_slack=miss_ratio_slack,
        min_active_fraction=min_active_fraction,
    )
