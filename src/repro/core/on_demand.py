"""On-demand precharging via partial address decode (Section 5).

All bitlines are normally isolated.  On an access, the first two decoder
stages identify the accessed subarray and its bitlines are pulled up.
Identification is perfectly accurate, but Table 3 shows the worst-case
pull-up never fits in the remaining decode time, so *every* access pays
the pull-up penalty (one cycle for the studied technologies).  The paper
measures the resulting slowdown at ~9% for data caches and ~7% for
instruction caches, which is why it rejects on-demand precharging for L1.
"""

from __future__ import annotations

from typing import Optional

from .policies import BasePrechargePolicy
from .registry import register_policy

__all__ = ["OnDemandPrechargePolicy"]


class OnDemandPrechargePolicy(BasePrechargePolicy):
    """Precharge the accessed subarray on demand, paying the pull-up delay."""

    def __init__(self, hold_cycles: int = 1) -> None:
        """Create an on-demand policy.

        Args:
            hold_cycles: Cycles the subarray stays precharged per access.
        """
        super().__init__()
        if hold_cycles < 1:
            raise ValueError("hold_cycles must be at least 1")
        self.hold_cycles = hold_cycles

    def _on_access(
        self,
        subarray: int,
        cycle: int,
        gap: Optional[int],
        base_address: Optional[int] = None,
        address: Optional[int] = None,
    ) -> int:
        interval = gap if gap is not None else cycle
        ledger = self.ledger
        assert ledger is not None
        # Fused accounting call (same arithmetic and order as the
        # note_precharged/note_isolated/note_toggle sequence).
        if ledger.note_gated_interval(subarray, interval, self.hold_cycles):
            self.stats.toggles += 1
        return self._penalty_cycles_per_miss

    def _on_finalize_subarray(
        self, subarray: int, remaining_cycles: int, never_accessed: bool
    ) -> None:
        self._account_gated_interval(subarray, remaining_cycles, self.hold_cycles)

    def _is_precharged(self, subarray: int, cycle: int) -> bool:
        last = self._last_access[subarray]
        if last is None:
            return False
        return (cycle - last) < self.hold_cycles


@register_policy(
    "on-demand",
    aliases=("ondemand", "on_demand"),
    scheduler_extra_latency=1,
    description="Partial-address-decode precharging; +1 cycle on every access (Section 5)",
)
def _make_on_demand(hold_cycles: int = 1) -> OnDemandPrechargePolicy:
    return OnDemandPrechargePolicy(hold_cycles=hold_cycles)
