"""The ``repro bench`` performance harness.

Measures the fast-path kernel and the sweep runtime against the
reference cycle loop and writes a ``BENCH_*.json`` artifact (the
committed ``BENCH_pr6.json`` at the repository root is this harness's
output at the default size).  The ad-hoc ``benchmarks/perf_prN.py``
scripts from earlier PRs are superseded: ``benchmarks/perf_pr4.py`` is a
thin wrapper over this module.

Three sections:

* ``sweep_benchmarks`` — the sixteen-benchmark sweep with gated L1s and
  a gated L2, timed end-to-end on the reference loop and on the fast
  path, serially, with a result-equality check.  The fast path is timed
  twice: *cold* (in-memory and on-disk trace caches cleared — every
  trace compiled from its generator) and *warm* (on-disk ``.npz`` trace
  cache populated — the steady state any second invocation enjoys).
* ``l2_grid`` — a benchmark x L2-policy grid timed one run at a time.
  The in-memory trace cache is cleared per benchmark; the on-disk cache
  stays warm, mirroring how the runtime actually serves a policy grid.
  Fast rows take the best of ``--repeats`` passes (wall-clock noise on
  shared machines otherwise dominates the single-run numbers).  When a
  previous ``BENCH_pr3.json`` is available its fast times are embedded
  per row (``pr3_fast_s`` / ``vs_pr3``).
* ``l2_grid`` rows embed the previous artifact's fast times per row
  (``compare_fast_s`` / ``vs_compare``) when ``--compare`` points at a
  readable artifact measured at the same instruction count.
* ``service`` (``--service``) — the job-queue service measured end to
  end: a live in-process :class:`~repro.service.server.ServiceServer`
  takes a duplicate-heavy grid of run jobs from ``--clients`` concurrent
  clients over real HTTP, against the same configurations executed
  directly on the engine.  Reports jobs/sec, p50/p95 job latency, the
  coalesce rate, and the service overhead per unique unit.
* ``loadgen`` (with ``--service``) — a small open-loop saturation curve
  measured by :mod:`repro.loadgen` against a live in-process server:
  offered vs achieved jobs/sec, latency percentiles and 429 counts per
  offered rate, with sampled results byte-checked against a local
  engine.  This is what makes service traffic a regression-gated
  workload.
* ``summary`` — geometric-mean speedups, the identity verdict, and the
  ``vs_compare`` geomean.

Regression gating: ``--baseline PATH --tolerance F`` compares this
run's summary speedups against a committed baseline's and fails (exit
status 3) when they fall below ``baseline * F`` — CI runs a reduced
``--smoke`` bench against ``benchmarks/perf_smoke_baseline.json`` with a
generous tolerance, so only real regressions trip it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.registry import PolicySpec
from repro.experiments.l2sweep import L2_POLICY_MENU, _policy_label as _label
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, execute_run, execute_run_fast
from repro.sim.fastpath import clear_trace_cache, trace_cache_dir
from repro.sim.metrics import RunResult, geometric_mean
from repro.workloads.characteristics import benchmark_names

__all__ = [
    "add_bench_arguments",
    "build_parser",
    "main",
    "run_bench",
    "run_from_args",
    "GRID_BENCHMARKS",
    "SMOKE_GRID_BENCHMARKS",
]

#: Schema tag of the emitted artifact.
SCHEMA = "repro-bench/pr6"

#: Benchmark subset for the per-run grid (the full sixteen are covered
#: by the sweep entry; the grid shows per-L2-policy behaviour).  Same
#: grid as BENCH_pr3, so the two artifacts compare row for row.
GRID_BENCHMARKS = ("gcc", "mcf", "art", "equake")

#: Reduced grid for the CI perf-smoke job.
SMOKE_GRID_BENCHMARKS = ("gcc", "art")

#: L2 policies timed in the grid: the l2sweep experiment's axis,
#: imported so the bench and the experiment can never drift apart.
L2_GRID_POLICIES = L2_POLICY_MENU


def _base_config(instructions: int, benchmark: str = "gcc",
                 l2: Optional[PolicySpec] = None) -> SimulationConfig:
    return SimulationConfig(
        benchmark=benchmark,
        dcache="gated",
        icache="gated",
        l2=l2 or PolicySpec("gated", {"threshold": 500}),
        n_instructions=instructions,
    )


def _time_sweep(instructions: int, repeats: int, echo) -> dict:
    base = _base_config(instructions)

    clear_trace_cache()
    start = time.perf_counter()
    reference = SimEngine().sweep(base)
    reference_s = time.perf_counter() - start

    fast_cold_s = float("inf")
    fast_warm_s = float("inf")
    fast_cold = fast_warm = None
    for _ in range(max(1, repeats)):
        clear_trace_cache()  # cold: every trace compiled from its generator
        start = time.perf_counter()
        fast_cold = SimEngine(fast=True).sweep(base)
        fast_cold_s = min(fast_cold_s, time.perf_counter() - start)

        clear_trace_cache(disk=False)  # warm: traces load from the .npz cache
        start = time.perf_counter()
        fast_warm = SimEngine(fast=True).sweep(base)
        fast_warm_s = min(fast_warm_s, time.perf_counter() - start)

    identical = all(
        fast_cold[name].to_dict() == reference[name].to_dict() == fast_warm[name].to_dict()
        for name in reference
    )
    entry = {
        "benchmarks": len(reference),
        "l2_policy": _label(base.l2),
        "reference_s": round(reference_s, 4),
        "fast_s": round(fast_warm_s, 4),
        "fast_cold_s": round(fast_cold_s, 4),
        "speedup": round(reference_s / fast_warm_s, 3),
        "speedup_cold": round(reference_s / fast_cold_s, 3),
        "identical": identical,
    }
    echo(
        f"  reference {reference_s:.2f}s  fast {fast_warm_s:.2f}s "
        f"({entry['speedup']:.2f}x warm, {entry['speedup_cold']:.2f}x cold)  "
        f"identical={identical}"
    )
    return entry


def _load_compare_grid(
    path: Optional[Path], instructions: int
) -> Dict[Tuple[str, str], float]:
    """Per-(benchmark, policy-label) fast times from a previous artifact.

    Rows are only comparable at matching instruction counts, so a
    compare artifact measured at a different size is ignored.
    """
    if path is None or not path.is_file():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if int(payload.get("instructions", -1)) != instructions:
            return {}
        return {
            (row["benchmark"], row["l2_policy"]): float(row["fast_s"])
            for row in payload.get("l2_grid", [])
        }
    except (OSError, ValueError, KeyError, TypeError):
        # The compare artifact is optional; an unreadable one must not
        # take the harness down.
        return {}


def _time_grid(
    instructions: int,
    grid_benchmarks: Sequence[str],
    repeats: int,
    compare_times: Dict[Tuple[str, str], float],
    echo,
) -> List[dict]:
    rows = []
    for benchmark in grid_benchmarks:
        reference_results: Dict[str, RunResult] = {}
        reference_times: Dict[str, float] = {}
        for l2_spec in L2_GRID_POLICIES:
            config = _base_config(instructions, benchmark=benchmark, l2=l2_spec)
            start = time.perf_counter()
            reference_results[_label(l2_spec)] = execute_run(config)
            reference_times[_label(l2_spec)] = time.perf_counter() - start
        fast_times: Dict[str, float] = {}
        fast_results: Dict[str, RunResult] = {}
        for _ in range(max(1, repeats)):
            # Per-benchmark cold in-memory cache; the on-disk cache stays
            # warm, as in any real second invocation of a grid.
            clear_trace_cache(disk=False)
            for l2_spec in L2_GRID_POLICIES:
                label = _label(l2_spec)
                config = _base_config(instructions, benchmark=benchmark, l2=l2_spec)
                start = time.perf_counter()
                result = execute_run_fast(config)
                elapsed = time.perf_counter() - start
                fast_results[label] = result
                if label not in fast_times or elapsed < fast_times[label]:
                    fast_times[label] = elapsed
        for l2_spec in L2_GRID_POLICIES:
            label = _label(l2_spec)
            reference_s = reference_times[label]
            fast_s = fast_times[label]
            row = {
                "benchmark": benchmark,
                "l2_policy": label,
                "reference_s": round(reference_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": round(reference_s / fast_s, 3),
                "identical": fast_results[label].to_dict()
                == reference_results[label].to_dict(),
            }
            compare_fast = compare_times.get((benchmark, label))
            if compare_fast is not None:
                row["compare_fast_s"] = compare_fast
                row["vs_compare"] = round(compare_fast / fast_s, 3)
            rows.append(row)
            echo(
                f"  {benchmark:8s} L2={label:16s} {reference_s:7.3f}s -> "
                f"{fast_s:7.3f}s  {row['speedup']:5.2f}x"
                + (f"  (prev fast {compare_fast:.3f}s, {row['vs_compare']:.2f}x)"
                   if compare_fast is not None else "")
            )
    return rows


#: Per-client job list for the service bench: benchmarks x thresholds.
SERVICE_BENCHMARKS = ("gcc", "art")
SERVICE_THRESHOLDS = (100, 150, 200, 250)


def _service_configs(instructions: int) -> List[SimulationConfig]:
    return [
        SimulationConfig(
            benchmark=benchmark,
            dcache=PolicySpec("gated", {"threshold": threshold}),
            icache="gated",
            n_instructions=instructions,
        )
        for benchmark in SERVICE_BENCHMARKS
        for threshold in SERVICE_THRESHOLDS
    ]


def _time_service(instructions: int, clients: int, echo) -> dict:
    """Measure the job service end to end against the in-process engine.

    Every client submits the same duplicate-heavy grid of run jobs over
    real HTTP (so with ``clients`` concurrent clients, all but the first
    arrival of each configuration coalesces or hits the result LRU) and
    blocks on each job.  The baseline runs the unique configurations
    directly on a fresh engine.
    """
    import threading

    from repro.service.client import ServiceClient
    from repro.service.server import ServiceServer
    from repro.service.telemetry import percentile

    unique = _service_configs(instructions)

    clear_trace_cache(disk=False)
    engine = SimEngine(fast=True)
    start = time.perf_counter()
    baseline_results = engine.run_many(unique)
    baseline_s = time.perf_counter() - start
    engine.close()

    server = ServiceServer(engine=SimEngine(fast=True)).start()
    try:
        latencies: List[float] = []
        errors: List[str] = []
        lock = threading.Lock()

        def storm() -> None:
            client = ServiceClient(server.url)
            try:
                for config in unique:
                    begin = time.perf_counter()
                    receipt = client.submit_run(config)
                    client.wait(receipt["id"], poll_s=0.01)
                    elapsed = time.perf_counter() - begin
                    with lock:
                        latencies.append(elapsed)
            except Exception as error:  # noqa: BLE001 - report, don't hang
                with lock:
                    errors.append(f"{type(error).__name__}: {error}")

        threads = [threading.Thread(target=storm) for _ in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - start
        if errors:
            raise RuntimeError(f"service bench clients failed: {errors[:3]}")

        checker = ServiceClient(server.url)
        receipt = checker.submit_batch(unique)
        job = checker.wait(receipt["id"])
        remote = checker.collect(receipt, job)
        identical = all(
            payload == result.to_dict()
            for payload, result in zip(remote, baseline_results)
        )
        metrics = checker.metrics()
    finally:
        server.stop()

    total_jobs = clients * len(unique)
    entry = {
        "clients": clients,
        "jobs": total_jobs,
        "unique_units": len(unique),
        "wall_s": round(wall_s, 4),
        "jobs_per_s": round(total_jobs / wall_s, 3),
        "job_latency_p50_s": round(percentile(latencies, 0.50), 5),
        "job_latency_p95_s": round(percentile(latencies, 0.95), 5),
        "baseline_s": round(baseline_s, 4),
        "baseline_unit_s": round(baseline_s / len(unique), 5),
        "coalesce_rate": metrics.get("coalesce_rate"),
        "identical": identical,
    }
    echo(
        f"  {clients} clients x {len(unique)} jobs: {entry['jobs_per_s']:.1f} jobs/s, "
        f"p50 {entry['job_latency_p50_s'] * 1000:.1f}ms, "
        f"p95 {entry['job_latency_p95_s'] * 1000:.1f}ms "
        f"(in-process unit {entry['baseline_unit_s'] * 1000:.1f}ms, "
        f"coalesce rate {entry['coalesce_rate']})  identical={identical}"
    )
    return entry


def _check_baseline(summary: dict, baseline_path: Path, tolerance: float, echo) -> List[str]:
    """Compare summary speedups against a baseline artifact's."""
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))["summary"]
    except (OSError, ValueError, KeyError) as error:
        return [f"cannot read baseline {baseline_path}: {error}"]
    failures = []
    for field in ("grid_geomean_speedup", "sweep_speedup"):
        reference = baseline.get(field)
        measured = summary.get(field)
        if reference is None or measured is None:
            continue
        floor = reference * tolerance
        verdict = "ok" if measured >= floor else "REGRESSION"
        echo(f"  {field}: {measured:.2f} vs baseline {reference:.2f} "
             f"(floor {floor:.2f}) {verdict}")
        if measured < floor:
            failures.append(
                f"{field} regressed: {measured:.2f} < {floor:.2f} "
                f"(baseline {reference:.2f} x tolerance {tolerance})"
            )
    return failures


def run_bench(
    instructions: int = 30_000,
    output: str = "BENCH_pr6.json",
    grid_benchmarks: Sequence[str] = GRID_BENCHMARKS,
    repeats: int = 2,
    compare: Optional[str] = "BENCH_pr5.json",
    baseline: Optional[str] = None,
    tolerance: float = 0.5,
    service_clients: Optional[int] = None,
    echo=print,
) -> Tuple[dict, int]:
    """Run the harness; returns ``(payload, exit_status)``.

    Exit status: ``0`` on success, ``1`` when the fast path (or the
    service) diverged from the reference loop, ``3`` on a baseline
    regression.  ``service_clients`` enables the service section with
    that many concurrent clients.
    """
    echo(f"timing sweep_benchmarks with gated L2 ({len(benchmark_names())} "
         f"benchmarks, {instructions} ops each, fast best of {max(1, repeats)})...")
    sweep = _time_sweep(instructions, repeats, echo)

    echo("timing benchmark x L2-policy grid "
         f"(best of {max(1, repeats)} fast passes, disk cache warm)...")
    compare_times = _load_compare_grid(Path(compare) if compare else None, instructions)
    rows = _time_grid(instructions, grid_benchmarks, repeats, compare_times, echo)

    service = None
    loadgen = None
    if service_clients:
        echo(f"timing the job service at {service_clients} concurrent clients...")
        service = _time_service(instructions, service_clients, echo)

        from repro.loadgen.report import bench_loadgen_section

        echo("measuring the loadgen saturation curve (open loop, Poisson)...")
        loadgen = bench_loadgen_section(instructions, echo=echo)

    speedups = [row["speedup"] for row in rows]
    vs_compare = [row["vs_compare"] for row in rows if "vs_compare" in row]
    summary = {
        "grid_geomean_speedup": round(geometric_mean(speedups), 3),
        "grid_min_speedup": min(speedups),
        "grid_max_speedup": max(speedups),
        "sweep_speedup": sweep["speedup"],
        "sweep_speedup_cold": sweep["speedup_cold"],
        "all_identical": sweep["identical"] and all(r["identical"] for r in rows),
    }
    if vs_compare:
        summary["vs_compare_grid_geomean"] = round(geometric_mean(vs_compare), 3)
    if service is not None:
        summary["all_identical"] = summary["all_identical"] and service["identical"]
        summary["service_jobs_per_s"] = service["jobs_per_s"]
        summary["service_p95_s"] = service["job_latency_p95_s"]
    if loadgen is not None:
        summary["all_identical"] = summary["all_identical"] and loadgen["identical"]
        summary["loadgen_peak_achieved_per_s"] = loadgen["peak_achieved_per_s"]
    payload = {
        "schema": SCHEMA,
        "instructions": instructions,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "trace_cache": {
            "dir": str(trace_cache_dir()) if trace_cache_dir() else None,
        },
        "sweep_benchmarks": sweep,
        "l2_grid": rows,
        "summary": summary,
    }
    if service is not None:
        payload["service"] = service
    if loadgen is not None:
        payload["loadgen"] = loadgen
    Path(output).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    echo(f"wrote {output}")

    status = 0
    if baseline:
        echo(f"checking against baseline {baseline} (tolerance {tolerance})...")
        failures = _check_baseline(summary, Path(baseline), tolerance, echo)
        if failures:
            for failure in failures:
                echo(f"ERROR: {failure}")
            status = 3
    if not summary["all_identical"]:
        echo("ERROR: fast path (or service) diverged from the reference path")
        status = 1
    return payload, status


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the harness's options (shared with the ``repro`` CLI)."""
    parser.add_argument(
        "--instructions", type=int, default=None,
        help="micro-ops per run (default: 30000, the experiments' "
             "default; 6000 under --smoke)",
    )
    parser.add_argument(
        "--output", default="BENCH_pr6.json", metavar="PATH",
        help="destination JSON (default: BENCH_pr6.json)",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="also measure the job-queue service (jobs/sec, p50/p95 "
             "latency at --clients concurrent clients) end to end",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent clients for --service (default: 4)",
    )
    parser.add_argument(
        "--grid-benchmarks", default=None, metavar="A,B,...",
        help=f"grid benchmark subset (default: {','.join(GRID_BENCHMARKS)})",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="fast-path passes per section, best taken (default: 2; "
             "1 under --smoke)",
    )
    parser.add_argument(
        "--compare", default="BENCH_pr5.json", metavar="PATH",
        help="previous bench artifact for per-row vs_compare ratios "
             "(default: BENCH_pr5.json; missing file is fine)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline BENCH json; exit 3 when summary speedups fall "
             "below baseline x tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="baseline tolerance factor (default: 0.5 — generous, for "
             "noisy CI machines)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced settings for CI (fewer instructions, smaller grid, "
             "one fast pass)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench", description=__doc__.splitlines()[0]
    )
    add_bench_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute the harness from parsed arguments (CLI integration point)."""
    if args.service and args.clients < 1:
        raise ValueError("--clients must be at least 1")
    # --smoke only fills in values the user did not give explicitly.
    if args.smoke:
        if args.instructions is None:
            args.instructions = 6_000
        if args.grid_benchmarks is None:
            args.grid_benchmarks = ",".join(SMOKE_GRID_BENCHMARKS)
        if args.repeats is None:
            args.repeats = 1
    if args.instructions is None:
        args.instructions = 30_000
    if args.repeats is None:
        args.repeats = 2
    grid = (
        tuple(name.strip() for name in args.grid_benchmarks.split(",") if name.strip())
        if args.grid_benchmarks
        else GRID_BENCHMARKS
    )
    _, status = run_bench(
        instructions=args.instructions,
        output=args.output,
        grid_benchmarks=grid,
        repeats=args.repeats,
        compare=args.compare,
        baseline=args.baseline,
        tolerance=args.tolerance,
        service_clients=args.clients if args.service else None,
    )
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (used by ``repro bench`` and ``benchmarks/perf_pr4.py``)."""
    return run_from_args(build_parser().parse_args(argv))
