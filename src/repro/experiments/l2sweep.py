"""L2 precharge-policy sweep: the half of the leakage the paper left on.

The paper's Table 2 hierarchy carries a 512KB unified L2 — sixteen times
the capacity of one L1 and therefore the larger share of the cache
leakage budget — yet only the L1s are precharge-controlled.  This
experiment applies each precharge scheme to the L2 (with the L1s fixed
at the paper's near-optimal gated configuration) and reports, per
benchmark and policy: the L2 bitline discharge relative to static
pull-up, the time-averaged fraction of L2 subarrays kept precharged, the
L2 whole-cache energy savings and the slowdown against the same system
with a conventional (static) L2.

L2 traffic is L1-miss traffic, so inter-access gaps are orders of
magnitude longer than in the L1s: decay thresholds that would thrash an
L1 are conservative at the L2, and even on-demand precharging — ruinous
on the L1 critical path — only taxes miss latencies here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, default_engine
from repro.sim.metrics import RunResult, arithmetic_mean, slowdown
from repro.workloads.characteristics import benchmark_names

from .report import format_percent, format_table

__all__ = [
    "L2_POLICY_MENU",
    "L2PolicyRow",
    "L2SweepResult",
    "l2_policy_sweep",
    "format_l2_sweep",
]

#: The L2 policy axis: every studied scheme, with decay thresholds scaled
#: to L2 inter-access gaps (L1-miss traffic arrives orders of magnitude
#: more sparsely than L1 accesses, so useful thresholds are larger).
L2_POLICY_MENU: Tuple[PolicySpec, ...] = (
    PolicySpec("static"),
    PolicySpec("on-demand"),
    PolicySpec("oracle"),
    PolicySpec("gated", {"threshold": 500}),
    PolicySpec("gated", {"threshold": 2000}),
)


def _policy_label(spec: PolicySpec) -> str:
    """Compact display label for one L2 policy spec."""
    threshold = spec.get("threshold")
    if threshold is not None:
        return f"{spec.name}@{threshold}"
    return spec.name


@dataclass(frozen=True)
class L2PolicyRow:
    """One (L2 policy, benchmark) cell of the sweep.

    Attributes:
        policy: Display label of the L2 policy (e.g. ``"gated@500"``).
        benchmark: Benchmark name.
        l2_relative_discharge: L2 bitline discharge relative to the
            static pull-up baseline.
        l2_precharged_fraction: Time-averaged fraction of L2 subarrays
            kept precharged.
        l2_overall_savings: L2 whole-cache energy savings.
        l2_miss_ratio: L2 misses per access.
        slowdown: Execution-time increase against the static-L2 system.
    """

    policy: str
    benchmark: str
    l2_relative_discharge: float
    l2_precharged_fraction: float
    l2_overall_savings: float
    l2_miss_ratio: float
    slowdown: float


@dataclass(frozen=True)
class L2SweepResult:
    """Sweep outcome: per-policy per-benchmark rows plus averages.

    Attributes:
        rows: Every (policy, benchmark) cell, grouped by policy label in
            menu order.
        policies: Policy labels in menu order.
        feature_size_nm: Technology node.
    """

    rows: List[L2PolicyRow]
    policies: List[str]
    feature_size_nm: int

    def for_policy(self, policy: str) -> List[L2PolicyRow]:
        """The rows of one policy label."""
        return [row for row in self.rows if row.policy == policy]

    def average(self, policy: str, field: str) -> float:
        """Arithmetic mean of one field over a policy's benchmarks."""
        return arithmetic_mean(
            getattr(row, field) for row in self.for_policy(policy)
        )


def l2_policy_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[PolicySpec]] = None,
    feature_size_nm: int = 70,
    n_instructions: int = 15_000,
    l1_threshold: int = 100,
    engine: Optional[SimEngine] = None,
) -> L2SweepResult:
    """Sweep precharge policies over the unified L2.

    Args:
        benchmarks: Benchmark subset (default: all sixteen).
        policies: L2 policy axis (default: :data:`L2_POLICY_MENU`); a
            static entry is prepended when missing, because it is the
            slowdown baseline.
        feature_size_nm: Technology node.
        n_instructions: Micro-ops per run.
        l1_threshold: Decay threshold of the fixed L1 gated policies.
        engine: Engine to run on; defaults to the process-wide engine.

    Returns:
        An :class:`L2SweepResult` with one row per (policy, benchmark).
    """
    engine = default_engine() if engine is None else engine
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    axis = list(policies) if policies is not None else list(L2_POLICY_MENU)
    static = PolicySpec("static")
    if not any(spec.cache_key() == static.cache_key() for spec in axis):
        axis.insert(0, static)

    base = SimulationConfig(
        dcache=PolicySpec("gated-predecode", {"threshold": l1_threshold}),
        icache=PolicySpec("gated", {"threshold": l1_threshold}),
        feature_size_nm=feature_size_nm,
        n_instructions=n_instructions,
    )
    # One batched fan-out over the full policy x benchmark cross-product.
    configs = [
        replace(base, benchmark=name, l2=spec) for spec in axis for name in names
    ]
    results = engine.run_many(configs)
    by_cell: Dict[Tuple[str, str], RunResult] = {
        (_policy_label(spec), name): result
        for (spec, name), result in zip(
            ((spec, name) for spec in axis for name in names), results
        )
    }

    rows: List[L2PolicyRow] = []
    labels = [_policy_label(spec) for spec in axis]
    for label in labels:
        for name in names:
            run = by_cell[(label, name)]
            baseline = by_cell[(_policy_label(static), name)]
            rows.append(
                L2PolicyRow(
                    policy=label,
                    benchmark=name,
                    l2_relative_discharge=run.energy.l2_relative_discharge,
                    l2_precharged_fraction=(
                        run.energy.l2.precharged_fraction
                        if run.energy.l2 is not None
                        else 1.0
                    ),
                    l2_overall_savings=run.energy.l2_overall_savings,
                    l2_miss_ratio=run.l2_miss_ratio,
                    slowdown=slowdown(run, baseline),
                )
            )
    return L2SweepResult(
        rows=rows, policies=labels, feature_size_nm=feature_size_nm
    )


def format_l2_sweep(result: L2SweepResult) -> str:
    """Render the L2 policy sweep as a per-policy average table."""
    rows = []
    for policy in result.policies:
        rows.append(
            [
                policy,
                f"{result.average(policy, 'l2_relative_discharge'):.3f}",
                format_percent(result.average(policy, "l2_precharged_fraction")),
                format_percent(result.average(policy, "l2_overall_savings")),
                format_percent(result.average(policy, "slowdown")),
            ]
        )
    table = format_table(
        headers=[
            "L2 policy",
            "L2 rel. discharge",
            "L2 precharged",
            "L2 energy savings",
            "Slowdown",
        ],
        rows=rows,
        title=(
            "L2 precharge-policy sweep "
            f"({result.feature_size_nm}nm, L1s gated at the paper's configuration)"
        ),
    )
    best = min(
        (p for p in result.policies),
        key=lambda p: result.average(p, "l2_relative_discharge"),
    )
    summary = (
        f"Lowest average L2 discharge: {best} "
        f"({result.average(best, 'l2_relative_discharge'):.3f} of static pull-up, "
        f"{format_percent(result.average(best, 'slowdown'))} slowdown)"
    )
    return table + "\n" + summary


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "l2sweep",
    title="L2 precharge-policy sweep",
    formatter=format_l2_sweep,
    consumes=("benchmarks", "n_instructions", "feature_size_nm", "l2_policy"),
)
def _l2sweep_experiment(engine, options: ExperimentOptions):
    """Apply every precharge scheme to the unified L2, L1s held at gated."""
    policies = None
    if options.l2_policy is not None:
        # A forced spec narrows the axis to itself (static is re-added as
        # the slowdown baseline by l2_policy_sweep).
        policies = [options.resolved_l2()]
    return l2_policy_sweep(
        benchmarks=options.benchmarks,
        policies=policies,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(15_000),
        engine=engine,
    )
