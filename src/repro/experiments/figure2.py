"""Figure 2: power dissipation through bitlines after isolation.

For each technology node, the post-isolation bitline power of a 1KB
subarray is plotted over time, normalised to the static pull-up power of
the same node.  The paper's findings, which this experiment regenerates:
the isolation overhead peaks at ~195% of the static power in 180nm and
takes hundreds of nanoseconds to die out, while by 70nm the switching
spike is insignificant and the transient settles quickly — so aggressive,
frequent bitline isolation only becomes attractive in nanoscale nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.circuits.technology import available_nodes, get_technology
from repro.circuits.transient import IsolationTransient, isolation_transient

from .report import format_series, format_table

__all__ = ["Figure2Result", "figure2", "format_figure2"]


@dataclass(frozen=True)
class Figure2Result:
    """Transient curves for every technology node.

    Attributes:
        transients: Per-node transients keyed by feature size (nm).
        subarray_bytes: Subarray size the curves were computed for.
    """

    transients: Dict[int, IsolationTransient]
    subarray_bytes: int

    def peak_overhead_percent(self, feature_size_nm: int) -> float:
        """Peak normalised power (in % of static pull-up) for one node."""
        return self.transients[feature_size_nm].peak_normalized_power * 100.0

    def settling_time_ns(self, feature_size_nm: int) -> float:
        """Settling time (ns) of the transient for one node."""
        return self.transients[feature_size_nm].settling_time_s * 1e9

    def series(self, feature_size_nm: int) -> List[Tuple[float, float]]:
        """The (time ns, normalised power) series for one node."""
        transient = self.transients[feature_size_nm]
        return [(p.time_s * 1e9, p.normalized_power) for p in transient.samples]


def figure2(
    subarray_bytes: int = 1024,
    duration_s: float = 600e-9,
    samples: int = 121,
) -> Figure2Result:
    """Regenerate the Figure 2 transients for every technology node."""
    transients = {
        nm: isolation_transient(
            get_technology(nm),
            subarray_bytes=subarray_bytes,
            duration_s=duration_s,
            samples=samples,
        )
        for nm in available_nodes()
    }
    return Figure2Result(transients=transients, subarray_bytes=subarray_bytes)


def format_figure2(result: Figure2Result) -> str:
    """Render the Figure 2 summary (peak overhead and settling time)."""
    rows = []
    for nm in sorted(result.transients, reverse=True):
        rows.append(
            [
                nm,
                f"{result.peak_overhead_percent(nm):.0f}%",
                f"{result.settling_time_ns(nm):.1f}",
            ]
        )
    table = format_table(
        headers=["Feature size (nm)", "Peak power vs static pull-up", "Settling time (ns)"],
        rows=rows,
        title="Figure 2: Power dissipation through bitlines after isolation",
    )
    series_lines = [
        format_series(
            f"{nm}nm",
            result.series(nm)[:: max(1, len(result.series(nm)) // 8)],
            value_format="{:.2f}",
        )
        for nm in sorted(result.transients, reverse=True)
    ]
    return table + "\n" + "\n".join(series_lines)


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "figure2",
    title="Figure 2 - post-isolation bitline power transient",
    formatter=format_figure2,
    uses_engine=False,
    consumes=(),
)
def _figure2_experiment(engine, options: ExperimentOptions):
    return figure2()
