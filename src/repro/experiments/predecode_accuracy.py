"""Section 6.3: predecoding accuracy.

Predecoding predicts the accessed subarray from the load/store base
register.  The paper measures ~80% accuracy for 1KB subarrays and ~61%
for cache-line-sized subarrays.  This experiment replays every memory
reference of each benchmark through a :class:`~repro.core.predecode.Predecoder`
for a range of subarray sizes and reports the measured accuracy, which is
purely a function of the workloads' displacement distribution and the
subarray geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.circuits.cacti import cache_organization
from repro.core.predecode import Predecoder
from repro.sim.metrics import arithmetic_mean
from repro.workloads.characteristics import benchmark_names
from repro.workloads.synthetic import make_workload

from .report import format_percent, format_table

__all__ = ["PredecodeAccuracyResult", "predecode_accuracy", "format_predecode_accuracy"]


@dataclass(frozen=True)
class PredecodeAccuracyResult:
    """Measured predecoding accuracy.

    Attributes:
        accuracy: benchmark -> {subarray size (bytes) -> accuracy}.
        subarray_sizes: The subarray sizes evaluated.
    """

    accuracy: Dict[str, Dict[int, float]]
    subarray_sizes: Tuple[int, ...]

    def average_accuracy(self, subarray_bytes: int) -> float:
        """Mean accuracy across benchmarks for one subarray size."""
        return arithmetic_mean(
            per_bench[subarray_bytes] for per_bench in self.accuracy.values()
        )


def predecode_accuracy(
    benchmarks: Optional[Sequence[str]] = None,
    subarray_sizes: Sequence[int] = (1024, 64),
    feature_size_nm: int = 70,
    n_instructions: int = 20_000,
    cache_bytes: int = 32 * 1024,
    line_bytes: int = 32,
    associativity: int = 2,
) -> PredecodeAccuracyResult:
    """Measure predecoding accuracy for every benchmark and subarray size."""
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    accuracy: Dict[str, Dict[int, float]] = {}
    for name in names:
        workload = make_workload(name)
        ops = workload.generate(n_instructions)
        memory_ops = [op for op in ops if op.is_memory and op.base_address is not None]
        per_size: Dict[int, float] = {}
        for subarray_bytes in subarray_sizes:
            org = cache_organization(
                feature_size_nm, cache_bytes, line_bytes, associativity, subarray_bytes
            )
            predecoder = Predecoder(org)
            for op in memory_ops:
                actual = org.subarray_for_address(op.address)
                predecoder.predicts_correctly(op.base_address, actual)
            per_size[subarray_bytes] = predecoder.stats.accuracy
        accuracy[name] = per_size
    return PredecodeAccuracyResult(
        accuracy=accuracy, subarray_sizes=tuple(subarray_sizes)
    )


def format_predecode_accuracy(result: PredecodeAccuracyResult) -> str:
    """Render the Section 6.3 predecoding accuracies."""
    headers = ["Benchmark"] + [
        f"{size // 1024}KB" if size >= 1024 else f"{size}B"
        for size in result.subarray_sizes
    ]
    rows = []
    for name, per_size in result.accuracy.items():
        rows.append([name] + [format_percent(per_size[s]) for s in result.subarray_sizes])
    rows.append(
        ["AVG"]
        + [format_percent(result.average_accuracy(s)) for s in result.subarray_sizes]
    )
    return format_table(
        headers=headers,
        rows=rows,
        title="Section 6.3: Predecoding subarray-prediction accuracy",
    )


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "predecode",
    title="Section 6.3 - predecoding accuracy",
    formatter=format_predecode_accuracy,
    uses_engine=False,
)
def _predecode_experiment(engine, options: ExperimentOptions):
    return predecode_accuracy(
        benchmarks=options.benchmarks,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(20_000),
    )
