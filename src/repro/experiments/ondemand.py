"""Section 5: the performance cost of on-demand precharging.

On-demand precharging identifies the accessed subarray by partial address
decode, but Table 3 shows the bitline pull-up cannot be hidden in the
remaining decode time, so every access is delayed by a cycle.  This
experiment measures the resulting slowdown separately for the data cache
and the instruction cache (the paper reports ~9% and ~7% respectively) by
comparing against the static pull-up baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.metrics import arithmetic_mean, slowdown
from repro.sim.sweep import sweep_benchmarks

from .report import format_percent, format_table

__all__ = ["OnDemandResult", "ondemand_slowdown", "format_ondemand"]


@dataclass(frozen=True)
class OnDemandResult:
    """Per-benchmark slowdowns of on-demand precharging.

    Attributes:
        dcache_slowdown: Slowdown with on-demand precharging on the L1D
            only (L1I stays statically pulled up).
        icache_slowdown: Slowdown with on-demand precharging on the L1I
            only.
    """

    dcache_slowdown: Dict[str, float]
    icache_slowdown: Dict[str, float]

    @property
    def average_dcache_slowdown(self) -> float:
        """Mean slowdown caused by on-demand precharging in the data cache."""
        return arithmetic_mean(self.dcache_slowdown.values())

    @property
    def average_icache_slowdown(self) -> float:
        """Mean slowdown caused by on-demand precharging in the instruction cache."""
        return arithmetic_mean(self.icache_slowdown.values())


def ondemand_slowdown(
    benchmarks: Optional[Sequence[str]] = None,
    feature_size_nm: int = 70,
    n_instructions: int = 20_000,
    engine: Optional["SimEngine"] = None,
    l2: Union[PolicySpec, str] = "static",
) -> OnDemandResult:
    """Measure the Section 5 on-demand precharging slowdowns.

    Args:
        benchmarks: Benchmark subset (default: all sixteen).
        feature_size_nm: Technology node.
        n_instructions: Micro-ops per run.
        engine: Engine to run on; defaults to the process-wide engine.
        l2: L2 precharge policy applied to every run (baseline included).
    """
    baseline_cfg = SimulationConfig(
        dcache=PolicySpec("static"),
        icache=PolicySpec("static"),
        feature_size_nm=feature_size_nm,
        n_instructions=n_instructions,
        l2=l2,
    )
    dcache_cfg = baseline_cfg.with_policies("on-demand", "static")
    icache_cfg = baseline_cfg.with_policies("static", "on-demand")

    baselines = sweep_benchmarks(baseline_cfg, benchmarks, engine=engine)
    dcache_runs = sweep_benchmarks(dcache_cfg, benchmarks, engine=engine)
    icache_runs = sweep_benchmarks(icache_cfg, benchmarks, engine=engine)

    return OnDemandResult(
        dcache_slowdown={
            name: slowdown(dcache_runs[name], baselines[name]) for name in baselines
        },
        icache_slowdown={
            name: slowdown(icache_runs[name], baselines[name]) for name in baselines
        },
    )


def format_ondemand(result: OnDemandResult) -> str:
    """Render the Section 5 slowdowns as a text table."""
    rows = [
        [
            name,
            format_percent(result.dcache_slowdown[name]),
            format_percent(result.icache_slowdown[name]),
        ]
        for name in result.dcache_slowdown
    ]
    rows.append(
        [
            "AVG",
            format_percent(result.average_dcache_slowdown),
            format_percent(result.average_icache_slowdown),
        ]
    )
    return format_table(
        headers=["Benchmark", "Data-cache slowdown", "Instr-cache slowdown"],
        rows=rows,
        title="Section 5: Performance impact of on-demand precharging",
    )


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "ondemand",
    title="Section 5 - on-demand precharging slowdown",
    formatter=format_ondemand,
    consumes=("benchmarks", "n_instructions", "feature_size_nm", "l2_policy"),
)
def _ondemand_experiment(engine, options: ExperimentOptions):
    """Per-benchmark slowdown of on-demand (partial-decode) precharging."""
    return ondemand_slowdown(
        benchmarks=options.benchmarks,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(20_000),
        engine=engine,
        l2=options.resolved_l2(),
    )
