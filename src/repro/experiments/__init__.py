"""Experiment modules, one per table/figure of the paper's evaluation.

| Module | Paper artefact |
|---|---|
| :mod:`~repro.experiments.table1` | Table 1 — circuit parameters |
| :mod:`~repro.experiments.table2` | Table 2 — base system configuration |
| :mod:`~repro.experiments.figure2` | Figure 2 — post-isolation bitline power transient |
| :mod:`~repro.experiments.figure3` | Figure 3 — oracle potential discharge savings |
| :mod:`~repro.experiments.table3` | Table 3 — decode vs precharge delays |
| :mod:`~repro.experiments.ondemand` | Section 5 — on-demand precharging slowdown |
| :mod:`~repro.experiments.figure5` | Figure 5 — cumulative accesses vs access frequency |
| :mod:`~repro.experiments.figure6` | Figure 6 — fraction of hot subarrays |
| :mod:`~repro.experiments.predecode_accuracy` | Section 6.3 — predecoding accuracy |
| :mod:`~repro.experiments.figure8` | Figure 8 — gated precharging results |
| :mod:`~repro.experiments.figure9` | Figure 9 — gated precharging vs resizable caches |
| :mod:`~repro.experiments.figure10` | Figure 10 — effect of subarray size |

Two hierarchy experiments extend the paper's evaluation to the
policy-controlled L2:

| Module | Artefact |
|---|---|
| :mod:`~repro.experiments.l2sweep` | L2 precharge-policy sweep |
| :mod:`~repro.experiments.frontier` | L1/L2 energy-delay frontier |

Every module registers its artefact with
:mod:`~repro.experiments.registry` under a common
``run(engine, options) -> result`` / ``format(result) -> str`` protocol,
which backs the ``python -m repro experiment <name>`` CLI.
"""

from .figure2 import Figure2Result, figure2, format_figure2
from .figure3 import Figure3Result, figure3, format_figure3
from .figure5 import ACCESS_FREQUENCY_THRESHOLDS, Figure5Result, figure5, format_figure5
from .figure6 import Figure6Result, figure6, format_figure6
from .figure8 import Figure8Benchmark, Figure8Result, figure8, format_figure8
from .figure9 import Figure9Result, figure9, format_figure9
from .figure10 import SUBARRAY_SIZES, Figure10Result, figure10, format_figure10
from .frontier import (
    FrontierPoint,
    FrontierResult,
    energy_delay_frontier,
    format_frontier,
)
from .l2sweep import (
    L2_POLICY_MENU,
    L2PolicyRow,
    L2SweepResult,
    format_l2_sweep,
    l2_policy_sweep,
)
from .ondemand import OnDemandResult, format_ondemand, ondemand_slowdown
from .predecode_accuracy import (
    PredecodeAccuracyResult,
    format_predecode_accuracy,
    predecode_accuracy,
)
from .registry import (
    Experiment,
    ExperimentOptions,
    experiment_names,
    get_experiment,
    register_experiment,
)
from .report import format_percent, format_series, format_table
from .table1 import Table1Row, format_table1, table1_rows
from .table2 import format_table2, table2_rows
from .table3 import Table3Row, format_table3, table3_rows

__all__ = [
    "Figure2Result", "figure2", "format_figure2",
    "Figure3Result", "figure3", "format_figure3",
    "ACCESS_FREQUENCY_THRESHOLDS", "Figure5Result", "figure5", "format_figure5",
    "Figure6Result", "figure6", "format_figure6",
    "Figure8Benchmark", "Figure8Result", "figure8", "format_figure8",
    "Figure9Result", "figure9", "format_figure9",
    "SUBARRAY_SIZES", "Figure10Result", "figure10", "format_figure10",
    "FrontierPoint", "FrontierResult", "energy_delay_frontier", "format_frontier",
    "L2_POLICY_MENU", "L2PolicyRow", "L2SweepResult",
    "format_l2_sweep", "l2_policy_sweep",
    "OnDemandResult", "format_ondemand", "ondemand_slowdown",
    "PredecodeAccuracyResult", "format_predecode_accuracy", "predecode_accuracy",
    "Experiment", "ExperimentOptions", "experiment_names",
    "get_experiment", "register_experiment",
    "format_percent", "format_series", "format_table",
    "Table1Row", "format_table1", "table1_rows",
    "format_table2", "table2_rows",
    "Table3Row", "format_table3", "table3_rows",
]
