"""Table 2: base system configuration."""

from __future__ import annotations

from typing import List, Tuple

from repro.cache.hierarchy import HierarchyConfig
from repro.cpu.pipeline import PipelineConfig

from .report import format_table

__all__ = ["table2_rows", "format_table2"]


def table2_rows(
    hierarchy: HierarchyConfig = None,
    pipeline: PipelineConfig = None,
) -> List[Tuple[str, str]]:
    """The configuration rows of Table 2 as (parameter, value) pairs."""
    hierarchy = hierarchy or HierarchyConfig()
    pipeline = pipeline or PipelineConfig()
    kb = 1024
    return [
        ("Issue & decode", f"{pipeline.width} instructions per cycle"),
        ("Reorder buffer", f"{pipeline.rob_entries} entries"),
        ("Issue queue", f"{pipeline.issue_queue_entries} entries"),
        ("Load/Store queue", f"{pipeline.lsq_entries} entries"),
        ("Branch predictor", "combination"),
        ("Register file", f"{pipeline.max_registers * 2} registers; 16R/8W ports"),
        (
            "L1 i-cache",
            f"{hierarchy.l1i_bytes // kb}K; {hierarchy.l1i_assoc}-way; "
            f"{hierarchy.l1i_latency}-cycle; {hierarchy.l1i_ports}RW ports",
        ),
        (
            "L1 d-cache",
            f"{hierarchy.l1d_bytes // kb}K; {hierarchy.l1d_assoc}-way; "
            f"{hierarchy.l1d_latency}-cycle; {hierarchy.l1d_ports}RW/2R ports",
        ),
        (
            "L2 unified cache",
            f"{hierarchy.l2_bytes // kb}K; {hierarchy.l2_assoc}-way; "
            f"{hierarchy.l2_latency}-cycle latency",
        ),
        (
            "Memory",
            f"{hierarchy.memory_latency} cycles + "
            f"{hierarchy.memory_cycles_per_8_bytes} cycles per 8 bytes",
        ),
        ("MSHRs", f"{hierarchy.mshr_entries} entries"),
    ]


def format_table2() -> str:
    """Render Table 2 in the paper's layout."""
    return format_table(
        headers=["Parameter", "Value"],
        rows=table2_rows(),
        title="Table 2: Base system configuration",
    )


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "table2",
    title="Table 2 - base system configuration",
    formatter=lambda rows: format_table2(),
    uses_engine=False,
    consumes=(),
)
def _table2_experiment(engine, options: ExperimentOptions):
    return table2_rows()
