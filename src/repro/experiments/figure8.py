"""Figure 8: gated precharging — precharged subarrays and bitline discharge.

Every benchmark runs with gated precharging on both L1 caches (with
predecoding on the data cache), using the statically-found per-benchmark
optimum threshold (the most aggressive threshold whose estimated slowdown
stays within 1%, Section 6.4), and again with the constant threshold of
100 cycles.  Reported per benchmark and on average: the time-averaged
fraction of subarrays kept precharged, the bitline discharge relative to
conventional static pull-up, and the measured slowdown against the static
baseline.

Paper targets: ~10% (data) / ~6% (instruction) of subarrays precharged,
~83%/87% discharge reduction at the per-benchmark optimum, ~78%/81% with
the constant threshold, all within ~1% slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, default_engine
from repro.sim.metrics import RunResult, arithmetic_mean, slowdown
from repro.sim.sweep import select_benchmark_thresholds
from repro.workloads.characteristics import benchmark_names

from .report import format_percent, format_table

__all__ = ["Figure8Benchmark", "Figure8Result", "figure8", "format_figure8"]


@dataclass(frozen=True)
class Figure8Benchmark:
    """Gated-precharging results for one benchmark.

    All discharge/precharged values are relative to conventional caches.
    """

    benchmark: str
    dcache_threshold: int
    icache_threshold: int
    dcache_precharged_fraction: float
    icache_precharged_fraction: float
    dcache_relative_discharge: float
    icache_relative_discharge: float
    dcache_overall_savings: float
    icache_overall_savings: float
    slowdown: float


@dataclass(frozen=True)
class Figure8Result:
    """Per-benchmark and average gated-precharging results.

    Attributes:
        optimum: Results with the per-benchmark optimum thresholds.
        constant: Results with the constant threshold (100 cycles).
        feature_size_nm: Technology node.
    """

    optimum: Dict[str, Figure8Benchmark]
    constant: Dict[str, Figure8Benchmark]
    feature_size_nm: int

    # ------------------------------------------------------------------
    def _average(self, table: Dict[str, Figure8Benchmark], field: str) -> float:
        return arithmetic_mean(getattr(row, field) for row in table.values())

    @property
    def average_dcache_precharged(self) -> float:
        """Mean fraction of data-cache subarrays kept precharged (optimum)."""
        return self._average(self.optimum, "dcache_precharged_fraction")

    @property
    def average_icache_precharged(self) -> float:
        """Mean fraction of instruction-cache subarrays kept precharged (optimum)."""
        return self._average(self.optimum, "icache_precharged_fraction")

    @property
    def average_dcache_discharge_reduction(self) -> float:
        """Mean data-cache bitline-discharge reduction (optimum thresholds)."""
        return 1.0 - self._average(self.optimum, "dcache_relative_discharge")

    @property
    def average_icache_discharge_reduction(self) -> float:
        """Mean instruction-cache bitline-discharge reduction (optimum thresholds)."""
        return 1.0 - self._average(self.optimum, "icache_relative_discharge")

    @property
    def average_dcache_discharge_reduction_constant(self) -> float:
        """Mean data-cache discharge reduction with the constant threshold."""
        return 1.0 - self._average(self.constant, "dcache_relative_discharge")

    @property
    def average_icache_discharge_reduction_constant(self) -> float:
        """Mean instruction-cache discharge reduction with the constant threshold."""
        return 1.0 - self._average(self.constant, "icache_relative_discharge")

    @property
    def average_slowdown(self) -> float:
        """Mean slowdown at the per-benchmark optimum thresholds."""
        return self._average(self.optimum, "slowdown")

    @property
    def average_dcache_overall_savings(self) -> float:
        """Mean whole-cache (L1D) energy reduction at the optimum thresholds."""
        return self._average(self.optimum, "dcache_overall_savings")

    @property
    def average_icache_overall_savings(self) -> float:
        """Mean whole-cache (L1I) energy reduction at the optimum thresholds."""
        return self._average(self.optimum, "icache_overall_savings")


def _gated_config(
    benchmark: str,
    dcache_threshold: int,
    icache_threshold: int,
    feature_size_nm: int,
    n_instructions: int,
    l2: Union[PolicySpec, str] = "static",
) -> SimulationConfig:
    return SimulationConfig(
        benchmark=benchmark,
        dcache=PolicySpec("gated-predecode", {"threshold": dcache_threshold}),
        icache=PolicySpec("gated", {"threshold": icache_threshold}),
        feature_size_nm=feature_size_nm,
        n_instructions=n_instructions,
        l2=l2,
    )


def _gated_row(
    benchmark: str,
    dcache_threshold: int,
    icache_threshold: int,
    gated: "RunResult",
    baseline: "RunResult",
) -> Figure8Benchmark:
    return Figure8Benchmark(
        benchmark=benchmark,
        dcache_threshold=dcache_threshold,
        icache_threshold=icache_threshold,
        dcache_precharged_fraction=gated.energy.dcache.precharged_fraction,
        icache_precharged_fraction=gated.energy.icache.precharged_fraction,
        dcache_relative_discharge=gated.energy.dcache_relative_discharge,
        icache_relative_discharge=gated.energy.icache_relative_discharge,
        dcache_overall_savings=gated.energy.dcache_overall_savings,
        icache_overall_savings=gated.energy.icache_overall_savings,
        slowdown=slowdown(gated, baseline),
    )


def figure8(
    benchmarks: Optional[Sequence[str]] = None,
    feature_size_nm: int = 70,
    n_instructions: int = 20_000,
    constant_threshold: int = 100,
    engine: Optional[SimEngine] = None,
    l2: Union[PolicySpec, str] = "static",
) -> Figure8Result:
    """Regenerate Figure 8 (gated precharging, optimum and constant thresholds).

    Runs in three batched phases so the engine can fan each out over its
    workers: the static profiling/baseline runs, then every gated run
    (optimum and constant thresholds), then row assembly from the cached
    results.  ``l2`` forces an L2 precharge policy onto every run
    (baselines included), so the reported slowdowns stay relative to the
    same hierarchy.
    """
    engine = default_engine() if engine is None else engine
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    base = SimulationConfig(
        feature_size_nm=feature_size_nm, n_instructions=n_instructions, l2=l2
    )

    # Phase 1: one static run per benchmark — the threshold-selection
    # profile and the slowdown baseline are the same configuration.
    baselines = engine.sweep(base, benchmarks=names)
    thresholds = {
        name: select_benchmark_thresholds(name, base, engine=engine)
        for name in names
    }

    # Phase 2: every gated run (per-benchmark optimum + constant), batched.
    optimum_cfgs = [
        _gated_config(
            name,
            thresholds[name].dcache_threshold,
            thresholds[name].icache_threshold,
            feature_size_nm,
            n_instructions,
            l2=l2,
        )
        for name in names
    ]
    constant_cfgs = [
        _gated_config(
            name, constant_threshold, constant_threshold, feature_size_nm,
            n_instructions, l2=l2,
        )
        for name in names
    ]
    gated_runs = engine.run_many(optimum_cfgs + constant_cfgs)
    optimum_runs = gated_runs[: len(names)]
    constant_runs = gated_runs[len(names):]

    optimum: Dict[str, Figure8Benchmark] = {}
    constant: Dict[str, Figure8Benchmark] = {}
    for index, name in enumerate(names):
        optimum[name] = _gated_row(
            name,
            thresholds[name].dcache_threshold,
            thresholds[name].icache_threshold,
            optimum_runs[index],
            baselines[name],
        )
        constant[name] = _gated_row(
            name,
            constant_threshold,
            constant_threshold,
            constant_runs[index],
            baselines[name],
        )
    return Figure8Result(
        optimum=optimum, constant=constant, feature_size_nm=feature_size_nm
    )


def format_figure8(result: Figure8Result) -> str:
    """Render the Figure 8 bars as a text table."""
    rows = []
    for name, row in result.optimum.items():
        rows.append(
            [
                name,
                row.dcache_threshold,
                format_percent(row.dcache_precharged_fraction),
                f"{row.dcache_relative_discharge:.3f}",
                row.icache_threshold,
                format_percent(row.icache_precharged_fraction),
                f"{row.icache_relative_discharge:.3f}",
                format_percent(row.slowdown),
            ]
        )
    rows.append(
        [
            "AVG",
            "-",
            format_percent(result.average_dcache_precharged),
            f"{1.0 - result.average_dcache_discharge_reduction:.3f}",
            "-",
            format_percent(result.average_icache_precharged),
            f"{1.0 - result.average_icache_discharge_reduction:.3f}",
            format_percent(result.average_slowdown),
        ]
    )
    table = format_table(
        headers=[
            "Benchmark",
            "D thr",
            "D precharged",
            "D rel. discharge",
            "I thr",
            "I precharged",
            "I rel. discharge",
            "Slowdown",
        ],
        rows=rows,
        title=(
            "Figure 8: Gated precharging — precharged subarrays and bitline "
            f"discharge ({result.feature_size_nm}nm, per-benchmark optimum thresholds)"
        ),
    )
    summary = (
        "Average discharge reduction (optimum): "
        f"data {format_percent(result.average_dcache_discharge_reduction)}, "
        f"instruction {format_percent(result.average_icache_discharge_reduction)}; "
        "(constant threshold 100): "
        f"data {format_percent(result.average_dcache_discharge_reduction_constant)}, "
        f"instruction {format_percent(result.average_icache_discharge_reduction_constant)}; "
        f"overall cache energy reduction: data {format_percent(result.average_dcache_overall_savings)}, "
        f"instruction {format_percent(result.average_icache_overall_savings)}"
    )
    return table + "\n" + summary


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "figure8",
    title="Figure 8 - gated precharging results",
    formatter=format_figure8,
    consumes=("benchmarks", "n_instructions", "feature_size_nm", "l2_policy"),
)
def _figure8_experiment(engine, options: ExperimentOptions):
    """Gated precharging: precharged subarrays, discharge and slowdown."""
    return figure8(
        benchmarks=options.benchmarks,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(20_000),
        engine=engine,
        l2=options.resolved_l2(),
    )
