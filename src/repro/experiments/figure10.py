"""Figure 10: effect of subarray size on gated precharging.

Gated precharging runs with subarray sizes of 4KB, 1KB, 256B and 64B at
70nm; the benchmark-averaged fraction of precharged subarrays is reported
for each size.  The paper's findings: smaller subarrays give finer control
and a smaller precharged fraction (28%/10%/8%/7% for data caches and
18%/8%/6%/5% for instruction caches from 4KB down to 64B), with clearly
diminishing returns below 256B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.metrics import arithmetic_mean
from repro.sim.sweep import sweep_benchmarks

from .report import format_percent, format_table

__all__ = ["Figure10Result", "figure10", "format_figure10", "SUBARRAY_SIZES"]

#: The subarray sizes on Figure 10's x-axis.
SUBARRAY_SIZES: Tuple[int, ...] = (4096, 1024, 256, 64)


@dataclass(frozen=True)
class Figure10Result:
    """Benchmark-averaged precharged fractions per subarray size.

    Attributes:
        dcache_precharged: subarray size (bytes) -> average precharged
            fraction of the data cache.
        icache_precharged: subarray size (bytes) -> average precharged
            fraction of the instruction cache.
        per_benchmark_dcache: benchmark -> {size -> precharged fraction}.
        per_benchmark_icache: benchmark -> {size -> precharged fraction}.
    """

    dcache_precharged: Dict[int, float]
    icache_precharged: Dict[int, float]
    per_benchmark_dcache: Dict[str, Dict[int, float]]
    per_benchmark_icache: Dict[str, Dict[int, float]]

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Subarray sizes evaluated, largest first."""
        return tuple(sorted(self.dcache_precharged, reverse=True))

    def monotonic_improvement(self, cache: str = "dcache") -> bool:
        """Whether the precharged fraction shrinks as subarrays shrink."""
        table = self.dcache_precharged if cache == "dcache" else self.icache_precharged
        ordered = [table[size] for size in sorted(table, reverse=True)]
        return all(later <= earlier + 1e-9 for earlier, later in zip(ordered, ordered[1:]))


def figure10(
    benchmarks: Optional[Sequence[str]] = None,
    subarray_sizes: Sequence[int] = SUBARRAY_SIZES,
    feature_size_nm: int = 70,
    n_instructions: int = 15_000,
    threshold: int = 100,
    engine: Optional["SimEngine"] = None,
    l2: Union[PolicySpec, str] = "static",
) -> Figure10Result:
    """Regenerate Figure 10 (gated precharging vs subarray size).

    Args:
        benchmarks: Benchmark subset (default: all sixteen).
        subarray_sizes: L1 subarray sizes to sweep.
        feature_size_nm: Technology node.
        n_instructions: Micro-ops per run.
        threshold: Gated-precharging decay threshold.
        engine: Engine to run on; defaults to the process-wide engine.
        l2: L2 precharge policy applied to every run.
    """
    dcache_avg: Dict[int, float] = {}
    icache_avg: Dict[int, float] = {}
    per_bench_d: Dict[str, Dict[int, float]] = {}
    per_bench_i: Dict[str, Dict[int, float]] = {}
    for size in subarray_sizes:
        config = SimulationConfig(
            dcache=PolicySpec("gated-predecode", {"threshold": threshold}),
            icache=PolicySpec("gated", {"threshold": threshold}),
            feature_size_nm=feature_size_nm,
            subarray_bytes=size,
            n_instructions=n_instructions,
            l2=l2,
        )
        runs = sweep_benchmarks(config, benchmarks, engine=engine)
        dcache_avg[size] = arithmetic_mean(
            r.energy.dcache.precharged_fraction for r in runs.values()
        )
        icache_avg[size] = arithmetic_mean(
            r.energy.icache.precharged_fraction for r in runs.values()
        )
        for name, run in runs.items():
            per_bench_d.setdefault(name, {})[size] = run.energy.dcache.precharged_fraction
            per_bench_i.setdefault(name, {})[size] = run.energy.icache.precharged_fraction
    return Figure10Result(
        dcache_precharged=dcache_avg,
        icache_precharged=icache_avg,
        per_benchmark_dcache=per_bench_d,
        per_benchmark_icache=per_bench_i,
    )


def format_figure10(result: Figure10Result) -> str:
    """Render the Figure 10 series as a text table."""

    def label(size: int) -> str:
        return f"{size // 1024}KB" if size >= 1024 else f"{size}B"

    rows = [
        [
            label(size),
            format_percent(result.dcache_precharged[size]),
            format_percent(result.icache_precharged[size]),
        ]
        for size in result.sizes
    ]
    return format_table(
        headers=["Subarray size", "Data cache precharged", "Instr cache precharged"],
        rows=rows,
        title="Figure 10: Relative number of precharged subarrays vs subarray size",
    )


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "figure10",
    title="Figure 10 - effect of subarray size",
    formatter=format_figure10,
    consumes=("benchmarks", "n_instructions", "feature_size_nm", "l2_policy"),
)
def _figure10_experiment(engine, options: ExperimentOptions):
    """Precharged-subarray fraction as the L1 subarray size varies."""
    return figure10(
        benchmarks=options.benchmarks,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(15_000),
        engine=engine,
        l2=options.resolved_l2(),
    )
