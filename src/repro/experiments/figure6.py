"""Figure 6: fraction of hot subarrays vs access-frequency threshold.

For each benchmark, the time-averaged fraction of cache subarrays that are
"hot" — accessed within the last T cycles — as a function of T.  The
paper's observation: with a 100-cycle threshold only ~22% of subarrays are
hot on average, and even with a 1000-cycle threshold at most ~40% are,
which is what lets gated precharging isolate most of the cache most of the
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cache.hierarchy import MemoryHierarchy
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.metrics import arithmetic_mean
from repro.workloads.characteristics import benchmark_names
from repro.workloads.synthetic import make_workload

from .figure5 import ACCESS_FREQUENCY_THRESHOLDS
from .report import format_series

__all__ = ["Figure6Result", "figure6", "format_figure6"]


@dataclass(frozen=True)
class Figure6Result:
    """Hot-subarray fractions per benchmark.

    Attributes:
        dcache: benchmark -> {interval threshold -> hot fraction}.
        icache: benchmark -> {interval threshold -> hot fraction}.
        thresholds: The interval thresholds (cycles).
    """

    dcache: Dict[str, Dict[int, float]]
    icache: Dict[str, Dict[int, float]]
    thresholds: Tuple[int, ...]

    def average_hot_fraction(self, cache: str = "dcache", threshold: int = 100) -> float:
        """Mean hot-subarray fraction across benchmarks at one threshold."""
        table = self.dcache if cache == "dcache" else self.icache
        return arithmetic_mean(series[threshold] for series in table.values())


def figure6(
    benchmarks: Optional[Sequence[str]] = None,
    feature_size_nm: int = 70,
    n_instructions: int = 20_000,
    thresholds: Sequence[int] = ACCESS_FREQUENCY_THRESHOLDS,
) -> Figure6Result:
    """Regenerate Figure 6 from baseline (static pull-up) runs.

    The hot-subarray fraction needs the subarray trackers themselves (not
    just the gap lists), so this experiment drives the simulator directly
    rather than going through the memoised runner.
    """
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    dcache: Dict[str, Dict[int, float]] = {}
    icache: Dict[str, Dict[int, float]] = {}
    for name in names:
        config = SimulationConfig(
            benchmark=name,
            dcache=PolicySpec("static"),
            icache=PolicySpec("static"),
            feature_size_nm=feature_size_nm,
            n_instructions=n_instructions,
        )
        workload = make_workload(name, seed=config.seed)
        hierarchy = MemoryHierarchy(
            config=config.hierarchy_config(),
            icache_controller=config.icache_controller(),
            dcache_controller=config.dcache_controller(),
        )
        pipeline = OutOfOrderPipeline(
            hierarchy=hierarchy,
            instruction_stream=workload.instructions(),
            config=config.pipeline_config(),
        )
        pipeline.run(config.n_instructions)
        total_cycles = max(1, pipeline.cycle)
        dcache[name] = hierarchy.l1d.tracker.hot_subarray_fraction(
            thresholds, total_cycles
        )
        icache[name] = hierarchy.l1i.tracker.hot_subarray_fraction(
            thresholds, total_cycles
        )
    return Figure6Result(dcache=dcache, icache=icache, thresholds=tuple(thresholds))


def format_figure6(result: Figure6Result) -> str:
    """Render the Figure 6 series, one line per benchmark and cache."""
    lines = ["Figure 6: Fraction of hot subarrays vs access-frequency threshold"]
    lines.append("(a) Data cache")
    for name, series in result.dcache.items():
        lines.append(format_series(f"  {name}", sorted(series.items())))
    lines.append("(b) Instruction cache")
    for name, series in result.icache.items():
        lines.append(format_series(f"  {name}", sorted(series.items())))
    lines.append(
        "Average hot fraction at a 100-cycle threshold: "
        f"data {result.average_hot_fraction('dcache', 100):.2f}, "
        f"instruction {result.average_hot_fraction('icache', 100):.2f}"
    )
    return "\n".join(lines)


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "figure6",
    title="Figure 6 - fraction of hot subarrays",
    formatter=format_figure6,
    uses_engine=False,
)
def _figure6_experiment(engine, options: ExperimentOptions):
    # figure6 needs the subarray trackers themselves, so it drives the
    # simulator directly rather than going through the engine cache.
    return figure6(
        benchmarks=options.benchmarks,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(20_000),
    )
