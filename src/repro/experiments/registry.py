"""Experiment registry: every table/figure behind one protocol.

Each experiment module registers a runner under the name of the paper
artefact it reproduces (``table1`` ... ``figure10``).  A registered
experiment is a pair of callables:

* ``run(engine, options) -> result`` — regenerate the artefact, driving
  every simulation through the supplied
  :class:`~repro.sim.engine.SimEngine` (so caching, persistence and
  parallelism are the caller's choice);
* ``format(result) -> str`` — render the artefact as the text table the
  module has always produced.

The registry backs the ``python -m repro experiment <name>`` CLI and lets
sweep drivers iterate "every artefact of the paper" without hard-coding
the module list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.engine import SimEngine

__all__ = [
    "ExperimentOptions",
    "Experiment",
    "register_experiment",
    "get_experiment",
    "experiment_names",
]


@dataclass(frozen=True)
class ExperimentOptions:
    """Common knobs every experiment runner understands.

    Attributes:
        benchmarks: Benchmark subset, or ``None`` for each experiment's
            default (usually all sixteen).
        n_instructions: Per-run instruction budget, or ``None`` for the
            experiment's default.
        feature_size_nm: Technology node, or ``None`` for the
            experiment's default (single-node experiments use 70; the
            cross-node figure9 sweeps every node unless one is forced).
    """

    benchmarks: Optional[Tuple[str, ...]] = None
    n_instructions: Optional[int] = None
    feature_size_nm: Optional[int] = None

    def resolved_instructions(self, default: int) -> int:
        """The instruction budget, falling back to ``default``."""
        return self.n_instructions if self.n_instructions is not None else default

    def resolved_feature_size(self, default: int = 70) -> int:
        """The technology node, falling back to ``default``."""
        return self.feature_size_nm if self.feature_size_nm is not None else default


@dataclass(frozen=True)
class Experiment:
    """One registered paper artefact."""

    name: str
    title: str
    run: Callable[[SimEngine, ExperimentOptions], Any]
    format: Callable[[Any], str]
    #: Whether ``run`` drives its simulations through the supplied engine
    #: (False for static tables and experiments that bypass the engine, so
    #: callers know --workers/--store have no effect and no runs accrue).
    uses_engine: bool = True
    #: Which :class:`ExperimentOptions` fields the runner honours; the CLI
    #: warns when an option outside this set is supplied.
    consumes: Tuple[str, ...] = ("benchmarks", "n_instructions", "feature_size_nm")


_REGISTRY: Dict[str, Experiment] = {}


def register_experiment(
    name: str,
    title: str,
    formatter: Callable[[Any], str],
    uses_engine: bool = True,
    consumes: Tuple[str, ...] = ("benchmarks", "n_instructions", "feature_size_nm"),
) -> Callable[[Callable[[SimEngine, ExperimentOptions], Any]], Callable]:
    """Publish ``run(engine, options)`` for one table/figure."""

    def decorator(run: Callable[[SimEngine, ExperimentOptions], Any]) -> Callable:
        _REGISTRY[name.lower()] = Experiment(
            name=name.lower(),
            title=title,
            run=run,
            format=formatter,
            uses_engine=uses_engine,
            consumes=consumes,
        )
        return run

    return decorator


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment.

    Raises:
        ValueError: for an unknown experiment name.
    """
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValueError(f"unknown experiment {name!r}; choose from: {known}") from None


def experiment_names() -> Tuple[str, ...]:
    """Names of every registered experiment, sorted."""
    return tuple(sorted(_REGISTRY))
