"""Experiment registry: every table/figure behind one protocol.

Each experiment module registers a runner under the name of the paper
artefact it reproduces (``table1`` ... ``figure10``).  A registered
experiment is a pair of callables:

* ``run(engine, options) -> result`` — regenerate the artefact, driving
  every simulation through the supplied
  :class:`~repro.sim.engine.SimEngine` (so caching, persistence and
  parallelism are the caller's choice);
* ``format(result) -> str`` — render the artefact as the text table the
  module has always produced.

The registry backs the ``python -m repro experiment <name>`` CLI and lets
sweep drivers iterate "every artefact of the paper" without hard-coding
the module list.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.registry import PolicySpec
from repro.sim.engine import SimEngine

__all__ = [
    "ExperimentOptions",
    "Experiment",
    "register_experiment",
    "get_experiment",
    "experiment_names",
]


@dataclass(frozen=True)
class ExperimentOptions:
    """Common knobs every experiment runner understands.

    Attributes:
        benchmarks: Benchmark subset, or ``None`` for each experiment's
            default (usually all sixteen).
        n_instructions: Per-run instruction budget, or ``None`` for the
            experiment's default.
        feature_size_nm: Technology node, or ``None`` for the
            experiment's default (single-node experiments use 70; the
            cross-node figure9 sweeps every node unless one is forced).
        l2_policy: CLI-style L2 precharge-policy spec (e.g.
            ``"gated:threshold=500"``) forced onto every simulated
            configuration, or ``None`` for the experiment's default
            (the conventional static L2 for the paper's artefacts; the
            hierarchy experiments sweep their own L2 axis).
    """

    benchmarks: Optional[Tuple[str, ...]] = None
    n_instructions: Optional[int] = None
    feature_size_nm: Optional[int] = None
    l2_policy: Optional[str] = None

    def resolved_instructions(self, default: int) -> int:
        """The instruction budget, falling back to ``default``."""
        return self.n_instructions if self.n_instructions is not None else default

    def resolved_feature_size(self, default: int = 70) -> int:
        """The technology node, falling back to ``default``."""
        return self.feature_size_nm if self.feature_size_nm is not None else default

    def resolved_l2(self, default: str = "static") -> PolicySpec:
        """The forced L2 policy spec, falling back to ``default``.

        Raises:
            ValueError: when the spec names an unregistered policy or
                passes a parameter its factory does not accept — checked
                here so option errors surface before any simulation runs.
        """
        spec = PolicySpec.parse(self.l2_policy if self.l2_policy else default)
        spec.validated_params()
        return spec


@dataclass(frozen=True)
class Experiment:
    """One registered paper artefact."""

    name: str
    title: str
    run: Callable[[SimEngine, ExperimentOptions], Any]
    format: Callable[[Any], str]
    #: Whether ``run`` drives its simulations through the supplied engine
    #: (False for static tables and experiments that bypass the engine, so
    #: callers know --workers/--store have no effect and no runs accrue).
    uses_engine: bool = True
    #: Which :class:`ExperimentOptions` fields the runner honours; the CLI
    #: warns when an option outside this set is supplied.
    consumes: Tuple[str, ...] = ("benchmarks", "n_instructions", "feature_size_nm")
    #: One-line human-readable summary, surfaced by ``repro experiment
    #: --list``; defaults to the first line of the runner's docstring.
    description: str = ""


_REGISTRY: Dict[str, Experiment] = {}


def register_experiment(
    name: str,
    title: str,
    formatter: Callable[[Any], str],
    uses_engine: bool = True,
    consumes: Tuple[str, ...] = ("benchmarks", "n_instructions", "feature_size_nm"),
    description: str = "",
) -> Callable[[Callable[[SimEngine, ExperimentOptions], Any]], Callable]:
    """Publish ``run(engine, options)`` for one table/figure.

    Args:
        name: Registry name (lower-cased); also the CLI argument.
        title: Short display title (the paper artefact).
        formatter: ``format(result) -> str`` rendering the text table.
        uses_engine: Whether the runner drives the supplied engine.
        consumes: The :class:`ExperimentOptions` fields the runner honours.
        description: One-line summary for ``repro experiment --list``;
            defaults to the first line of the runner's docstring (or the
            experiment module's docstring when the runner has none).
    """

    def decorator(run: Callable[[SimEngine, ExperimentOptions], Any]) -> Callable:
        summary = description
        if not summary:
            doc = inspect.getdoc(run) or ""
            if not doc:
                module = inspect.getmodule(run)
                doc = inspect.getdoc(module) or "" if module else ""
            summary = doc.split("\n")[0].strip()
        _REGISTRY[name.lower()] = Experiment(
            name=name.lower(),
            title=title,
            run=run,
            format=formatter,
            uses_engine=uses_engine,
            consumes=consumes,
            description=summary,
        )
        return run

    return decorator


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment.

    Raises:
        ValueError: for an unknown experiment name.
    """
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ValueError(f"unknown experiment {name!r}; choose from: {known}") from None


def experiment_names() -> Tuple[str, ...]:
    """Names of every registered experiment, sorted."""
    return tuple(sorted(_REGISTRY))
