"""Figure 5: cumulative distribution of cache accesses vs access frequency.

For each benchmark, the fraction of L1 data- and instruction-cache
accesses that fall on a subarray whose previous access was at most T
cycles earlier (access frequency at least 1/T), for T spanning 1 to 10000
cycles.  The paper's observation: outside the three high-miss-rate
applications (ammp, art, health), ~95% of data-cache accesses hit
subarrays with an access frequency of at least one per 100 cycles — i.e.
accesses concentrate on hot subarrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.subarray import SubarrayTracker
from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.metrics import RunResult
from repro.sim.sweep import sweep_benchmarks

from .report import format_series

__all__ = [
    "Figure5Result",
    "figure5",
    "format_figure5",
    "ACCESS_FREQUENCY_THRESHOLDS",
]

#: The access-interval thresholds (cycles) on Figure 5/6's x-axis:
#: frequencies 1, 1/10, 1/100, 1/1000, 1/10000 accesses per cycle.
ACCESS_FREQUENCY_THRESHOLDS: Tuple[int, ...] = (1, 10, 100, 1000, 10000)


def _cumulative_from_gaps(gaps: Sequence[int], thresholds: Sequence[int]) -> Dict[int, float]:
    ordered = sorted(gaps)
    total = len(ordered)
    result: Dict[int, float] = {}
    for threshold in thresholds:
        if total == 0:
            result[threshold] = 0.0
            continue
        count = 0
        for gap in ordered:
            if gap <= threshold:
                count += 1
            else:
                break
        result[threshold] = count / total
    return result


@dataclass(frozen=True)
class Figure5Result:
    """Cumulative access distributions per benchmark.

    Attributes:
        dcache: benchmark -> {interval threshold -> cumulative fraction}.
        icache: benchmark -> {interval threshold -> cumulative fraction}.
        thresholds: The interval thresholds (cycles).
    """

    dcache: Dict[str, Dict[int, float]]
    icache: Dict[str, Dict[int, float]]
    thresholds: Tuple[int, ...]

    def hot_access_fraction(self, benchmark: str, cache: str = "dcache",
                            threshold: int = 100) -> float:
        """Fraction of accesses to subarrays hotter than ``1/threshold``."""
        table = self.dcache if cache == "dcache" else self.icache
        return table[benchmark][threshold]


def figure5(
    benchmarks: Optional[Sequence[str]] = None,
    feature_size_nm: int = 70,
    n_instructions: int = 20_000,
    thresholds: Sequence[int] = ACCESS_FREQUENCY_THRESHOLDS,
    engine: Optional["SimEngine"] = None,
) -> Figure5Result:
    """Regenerate Figure 5 from baseline (static pull-up) runs."""
    base = SimulationConfig(
        dcache=PolicySpec("static"),
        icache=PolicySpec("static"),
        feature_size_nm=feature_size_nm,
        n_instructions=n_instructions,
    )
    runs = sweep_benchmarks(base, benchmarks, engine=engine)
    dcache = {
        name: _cumulative_from_gaps(run.dcache_gaps, thresholds)
        for name, run in runs.items()
    }
    icache = {
        name: _cumulative_from_gaps(run.icache_gaps, thresholds)
        for name, run in runs.items()
    }
    return Figure5Result(dcache=dcache, icache=icache, thresholds=tuple(thresholds))


def format_figure5(result: Figure5Result) -> str:
    """Render the Figure 5 series, one line per benchmark and cache."""
    lines = ["Figure 5: Cumulative distribution of cache accesses vs access frequency",
             "(values are the fraction of accesses to subarrays accessed within T cycles)"]
    lines.append("(a) Data cache")
    for name, series in result.dcache.items():
        lines.append(format_series(f"  {name}", sorted(series.items())))
    lines.append("(b) Instruction cache")
    for name, series in result.icache.items():
        lines.append(format_series(f"  {name}", sorted(series.items())))
    return "\n".join(lines)


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "figure5",
    title="Figure 5 - cumulative accesses vs access frequency",
    formatter=format_figure5,
)
def _figure5_experiment(engine, options: ExperimentOptions):
    return figure5(
        benchmarks=options.benchmarks,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(20_000),
        engine=engine,
    )
