"""Figure 3: potential bitline-discharge savings under oracle precharging.

Every benchmark runs with the oracle policy on both L1 caches at 70nm; the
remaining (relative) bitline discharge per benchmark and the average are
reported, plus the corresponding overall cache-energy saving opportunity.
The paper finds the oracle removes ~89% (data) and ~90% (instruction) of
the bitline discharge, corresponding to ~46%/41% of the cache energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.metrics import arithmetic_mean
from repro.sim.sweep import sweep_benchmarks
from repro.workloads.characteristics import benchmark_names

from .report import format_percent, format_table

__all__ = ["Figure3Result", "figure3", "format_figure3"]


@dataclass(frozen=True)
class Figure3Result:
    """Per-benchmark oracle results.

    Attributes:
        relative_discharge_dcache: Remaining L1D discharge per benchmark.
        relative_discharge_icache: Remaining L1I discharge per benchmark.
        overall_savings_dcache: Whole-cache energy savings per benchmark.
        overall_savings_icache: Whole-cache energy savings per benchmark.
        feature_size_nm: Technology node.
    """

    relative_discharge_dcache: Dict[str, float]
    relative_discharge_icache: Dict[str, float]
    overall_savings_dcache: Dict[str, float]
    overall_savings_icache: Dict[str, float]
    feature_size_nm: int

    @property
    def average_discharge_savings_dcache(self) -> float:
        """Average fraction of L1D bitline discharge eliminated."""
        return 1.0 - arithmetic_mean(self.relative_discharge_dcache.values())

    @property
    def average_discharge_savings_icache(self) -> float:
        """Average fraction of L1I bitline discharge eliminated."""
        return 1.0 - arithmetic_mean(self.relative_discharge_icache.values())

    @property
    def average_overall_savings_dcache(self) -> float:
        """Average whole-cache energy saving opportunity (data cache)."""
        return arithmetic_mean(self.overall_savings_dcache.values())

    @property
    def average_overall_savings_icache(self) -> float:
        """Average whole-cache energy saving opportunity (instruction cache)."""
        return arithmetic_mean(self.overall_savings_icache.values())


def figure3(
    benchmarks: Optional[Sequence[str]] = None,
    feature_size_nm: int = 70,
    n_instructions: int = 20_000,
    engine: Optional["SimEngine"] = None,
    l2: Union[PolicySpec, str] = "static",
) -> Figure3Result:
    """Regenerate Figure 3 (oracle potential savings).

    Args:
        benchmarks: Benchmark subset (default: all sixteen).
        feature_size_nm: Technology node.
        n_instructions: Micro-ops per run.
        engine: Engine to run on; defaults to the process-wide engine.
        l2: L2 precharge policy applied to every run (the paper's
            configuration keeps the L2 statically pulled up).
    """
    base = SimulationConfig(
        dcache=PolicySpec("oracle"),
        icache=PolicySpec("oracle"),
        feature_size_nm=feature_size_nm,
        n_instructions=n_instructions,
        l2=l2,
    )
    results = sweep_benchmarks(base, benchmarks, engine=engine)
    return Figure3Result(
        relative_discharge_dcache={
            name: r.energy.dcache_relative_discharge for name, r in results.items()
        },
        relative_discharge_icache={
            name: r.energy.icache_relative_discharge for name, r in results.items()
        },
        overall_savings_dcache={
            name: r.energy.dcache_overall_savings for name, r in results.items()
        },
        overall_savings_icache={
            name: r.energy.icache_overall_savings for name, r in results.items()
        },
        feature_size_nm=feature_size_nm,
    )


def format_figure3(result: Figure3Result) -> str:
    """Render the Figure 3 bars as a text table."""
    rows = []
    for name in result.relative_discharge_dcache:
        rows.append(
            [
                name,
                f"{result.relative_discharge_dcache[name]:.3f}",
                f"{result.relative_discharge_icache[name]:.3f}",
            ]
        )
    rows.append(
        [
            "AVG",
            f"{arithmetic_mean(result.relative_discharge_dcache.values()):.3f}",
            f"{arithmetic_mean(result.relative_discharge_icache.values()):.3f}",
        ]
    )
    table = format_table(
        headers=["Benchmark", "Data cache rel. discharge", "Instr cache rel. discharge"],
        rows=rows,
        title=f"Figure 3: Potential bitline discharge savings (oracle, {result.feature_size_nm}nm)",
    )
    summary = (
        f"Average discharge eliminated: data {format_percent(result.average_discharge_savings_dcache)}, "
        f"instruction {format_percent(result.average_discharge_savings_icache)}; "
        f"overall cache energy opportunity: data {format_percent(result.average_overall_savings_dcache)}, "
        f"instruction {format_percent(result.average_overall_savings_icache)}"
    )
    return table + "\n" + summary


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "figure3",
    title="Figure 3 - oracle potential discharge savings",
    formatter=format_figure3,
    consumes=("benchmarks", "n_instructions", "feature_size_nm", "l2_policy"),
)
def _figure3_experiment(engine, options: ExperimentOptions):
    """Oracle-policy potential: remaining L1 bitline discharge per benchmark."""
    return figure3(
        benchmarks=options.benchmarks,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(20_000),
        engine=engine,
        l2=options.resolved_l2(),
    )
