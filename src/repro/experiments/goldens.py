"""Golden-result snapshots for every registered experiment.

Each of the paper's tables and figures is captured, on a small fixed
configuration (:data:`GOLDEN_BENCHMARKS` / :data:`GOLDEN_INSTRUCTIONS`),
as a JSON snapshot under ``tests/experiments/goldens/``.  The snapshot
test recomputes every experiment and compares against the stored files,
so a refactor that silently drifts the paper's numbers fails tier-1
instead of shipping.

Snapshots are computed on the fast-path kernel by default — the
differential suite separately pins fast == reference, so the goldens
guard the *model*, not the execution path; ``python -m repro
regen-goldens --reference`` cross-checks on the reference loop.

The comparison is byte-exact, which assumes a correctly-rounded libm
(``exp``/``expm1``/``pow`` feed the energy numbers): glibc >= 2.28 —
i.e. the committed snapshots and CI — agrees bit-for-bit, but other
libms (musl, Apple) can differ in the last ulp.  A golden failure on a
non-glibc platform with no model change is that, not drift; regenerate
and compare on a glibc machine.

Regenerate after an intentional model change::

    python -m repro regen-goldens
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.sim.engine import SimEngine

from .registry import ExperimentOptions, experiment_names, get_experiment
from .report import jsonify

__all__ = [
    "GOLDEN_BENCHMARKS",
    "GOLDEN_INSTRUCTIONS",
    "golden_options",
    "compute_golden",
    "write_goldens",
]

#: Benchmark subset every engine-driven experiment is snapshotted on.
GOLDEN_BENCHMARKS = ("gcc", "mcf")

#: Instruction budget per snapshot run (small: the goldens guard
#: numerical identity, not steady-state behaviour).
GOLDEN_INSTRUCTIONS = 1500


def golden_options() -> ExperimentOptions:
    """The fixed options every golden snapshot is computed with."""
    return ExperimentOptions(
        benchmarks=GOLDEN_BENCHMARKS,
        n_instructions=GOLDEN_INSTRUCTIONS,
    )


def compute_golden(name: str, fast: bool = True) -> Dict[str, Any]:
    """Compute one experiment's golden payload (a JSON-safe dict)."""
    experiment = get_experiment(name)
    engine = SimEngine(fast=fast)
    result = experiment.run(engine, golden_options())
    return {
        "experiment": experiment.name,
        "title": experiment.title,
        "options": jsonify(golden_options()),
        "result": jsonify(result),
        "formatted": experiment.format(result),
    }


def write_goldens(directory: Union[str, Path], fast: bool = True) -> List[Path]:
    """Recompute and write every experiment's snapshot; returns the paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in experiment_names():
        payload = compute_golden(name, fast=fast)
        path = target / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        written.append(path)
    return written
