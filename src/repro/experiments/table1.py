"""Table 1: circuit parameters across the studied technology nodes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.circuits.technology import TechnologyNode, available_nodes, get_technology

from .report import format_table

__all__ = ["Table1Row", "table1_rows", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One technology node's headline parameters (a Table 1 column)."""

    feature_size_nm: int
    supply_voltage: float
    clock_frequency_ghz: float

    @classmethod
    def from_node(cls, node: TechnologyNode) -> "Table1Row":
        """Build a row from a :class:`TechnologyNode`."""
        return cls(
            feature_size_nm=node.feature_size_nm,
            supply_voltage=node.supply_voltage,
            clock_frequency_ghz=node.clock_frequency_ghz,
        )


def table1_rows() -> List[Table1Row]:
    """The four technology nodes of Table 1, oldest first."""
    return [Table1Row.from_node(get_technology(nm)) for nm in available_nodes()]


def format_table1() -> str:
    """Render Table 1 in the paper's layout."""
    rows = table1_rows()
    return format_table(
        headers=["Feature size (nm)", "Supply voltage (V)", "Clock frequency (GHz)"],
        rows=[
            [row.feature_size_nm, f"{row.supply_voltage:.1f}", f"{row.clock_frequency_ghz:.1f}"]
            for row in rows
        ],
        title="Table 1: Circuit parameters",
    )


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "table1",
    title="Table 1 - circuit parameters per technology node",
    formatter=lambda rows: format_table1(),
    uses_engine=False,
    consumes=(),
)
def _table1_experiment(engine, options: ExperimentOptions):
    return table1_rows()
