"""Figure 9: gated precharging versus resizable caches across technologies.

For each technology node the benchmark-averaged relative bitline discharge
is computed for gated precharging and for the resizable-cache baseline.
The paper's finding: resizable caches achieve a roughly constant, modest
discharge reduction across CMOS generations (their savings are limited by
coarse granularity, not by the isolation overhead), while gated
precharging improves dramatically towards 70nm as the precharge-device
switching overhead vanishes — ending far ahead of resizable caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.circuits.technology import available_nodes
from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.metrics import arithmetic_mean
from repro.sim.sweep import sweep_benchmarks

from .report import format_table

__all__ = ["Figure9Result", "figure9", "format_figure9"]


@dataclass(frozen=True)
class Figure9Result:
    """Benchmark-averaged relative discharge per technology and policy.

    Attributes:
        gated_dcache: node (nm) -> average relative L1D discharge (gated).
        gated_icache: node (nm) -> average relative L1I discharge (gated).
        resizable_dcache: node (nm) -> average relative L1D discharge
            (resizable cache).
        resizable_icache: node (nm) -> average relative L1I discharge
            (resizable cache).
    """

    gated_dcache: Dict[int, float]
    gated_icache: Dict[int, float]
    resizable_dcache: Dict[int, float]
    resizable_icache: Dict[int, float]

    @property
    def nodes(self) -> Tuple[int, ...]:
        """The technology nodes evaluated, oldest first."""
        return tuple(sorted(self.gated_dcache, reverse=True))

    def gated_beats_resizable_at(self, feature_size_nm: int) -> bool:
        """Whether gated precharging removes more discharge at a node."""
        return (
            self.gated_dcache[feature_size_nm] < self.resizable_dcache[feature_size_nm]
        )


def figure9(
    benchmarks: Optional[Sequence[str]] = None,
    nodes: Optional[Sequence[int]] = None,
    n_instructions: int = 15_000,
    threshold: int = 100,
    engine: Optional["SimEngine"] = None,
    l2: Union[PolicySpec, str] = "static",
) -> Figure9Result:
    """Regenerate Figure 9 (gated precharging vs resizable caches).

    Args:
        benchmarks: Benchmark subset (default: all sixteen).
        nodes: Technology nodes to sweep (default: every modelled node).
        n_instructions: Micro-ops per run.
        threshold: Gated-precharging decay threshold.
        engine: Engine to run on; defaults to the process-wide engine.
        l2: L2 precharge policy applied to every run.
    """
    nodes = list(nodes) if nodes is not None else available_nodes()
    gated_d: Dict[int, float] = {}
    gated_i: Dict[int, float] = {}
    resize_d: Dict[int, float] = {}
    resize_i: Dict[int, float] = {}
    for nm in nodes:
        gated_cfg = SimulationConfig(
            dcache=PolicySpec("gated-predecode", {"threshold": threshold}),
            icache=PolicySpec("gated", {"threshold": threshold}),
            feature_size_nm=nm,
            n_instructions=n_instructions,
            l2=l2,
        )
        resizable_cfg = SimulationConfig(
            dcache=PolicySpec("resizable"),
            icache=PolicySpec("resizable"),
            feature_size_nm=nm,
            n_instructions=n_instructions,
            l2=l2,
        )
        gated_runs = sweep_benchmarks(gated_cfg, benchmarks, engine=engine)
        resizable_runs = sweep_benchmarks(resizable_cfg, benchmarks, engine=engine)
        gated_d[nm] = arithmetic_mean(
            r.energy.dcache_relative_discharge for r in gated_runs.values()
        )
        gated_i[nm] = arithmetic_mean(
            r.energy.icache_relative_discharge for r in gated_runs.values()
        )
        resize_d[nm] = arithmetic_mean(
            r.energy.dcache_relative_discharge for r in resizable_runs.values()
        )
        resize_i[nm] = arithmetic_mean(
            r.energy.icache_relative_discharge for r in resizable_runs.values()
        )
    return Figure9Result(
        gated_dcache=gated_d,
        gated_icache=gated_i,
        resizable_dcache=resize_d,
        resizable_icache=resize_i,
    )


def format_figure9(result: Figure9Result) -> str:
    """Render the Figure 9 series as a text table."""
    rows = []
    for nm in result.nodes:
        rows.append(
            [
                nm,
                f"{result.gated_dcache[nm]:.3f}",
                f"{result.resizable_dcache[nm]:.3f}",
                f"{result.gated_icache[nm]:.3f}",
                f"{result.resizable_icache[nm]:.3f}",
            ]
        )
    return format_table(
        headers=[
            "Feature (nm)",
            "Gated D rel. discharge",
            "Resizable D rel. discharge",
            "Gated I rel. discharge",
            "Resizable I rel. discharge",
        ],
        rows=rows,
        title="Figure 9: Bitline discharge — gated precharging vs resizable caches",
    )


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "figure9",
    title="Figure 9 - gated precharging vs resizable caches",
    formatter=format_figure9,
    consumes=("benchmarks", "n_instructions", "feature_size_nm", "l2_policy"),
)
def _figure9_experiment(engine, options: ExperimentOptions):
    """Gated precharging vs the resizable-cache baseline across nodes."""
    nodes = None if options.feature_size_nm is None else [options.feature_size_nm]
    return figure9(
        benchmarks=options.benchmarks,
        nodes=nodes,
        n_instructions=options.resolved_instructions(15_000),
        engine=engine,
        l2=options.resolved_l2(),
    )
