"""Table 3: address-decode stage delays versus worst-case bitline pull-up.

For 1KB and 4KB subarrays across the four technology nodes, the three
decode-stage delays and the worst-case bitline pull-up time are computed
from the circuit models.  The paper's conclusion, which this experiment
verifies, is that the pull-up always exceeds the final-decode margin, so
on-demand precharging cannot be hidden and costs an extra cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.circuits.cacti import cache_organization
from repro.circuits.technology import available_nodes

from .report import format_table

__all__ = ["Table3Row", "table3_rows", "format_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One (subarray size, technology) row of Table 3 (delays in ns)."""

    subarray_bytes: int
    feature_size_nm: int
    decode_drive_ns: float
    predecode_ns: float
    final_decode_ns: float
    worst_case_pull_up_ns: float

    @property
    def pull_up_exceeds_final_decode(self) -> bool:
        """The key Table 3 observation: pull-up cannot hide in stage 3."""
        return self.worst_case_pull_up_ns > self.final_decode_ns


def table3_rows(
    cache_bytes: int = 32 * 1024,
    line_bytes: int = 32,
    associativity: int = 2,
    subarray_sizes=(1024, 4096),
) -> List[Table3Row]:
    """Compute every row of Table 3."""
    rows: List[Table3Row] = []
    for subarray_bytes in subarray_sizes:
        for nm in available_nodes():
            org = cache_organization(
                nm, cache_bytes, line_bytes, associativity, subarray_bytes
            )
            decoder = org.decoder
            rows.append(
                Table3Row(
                    subarray_bytes=subarray_bytes,
                    feature_size_nm=nm,
                    decode_drive_ns=decoder.decode_drive_s * 1e9,
                    predecode_ns=decoder.predecode_s * 1e9,
                    final_decode_ns=decoder.final_decode_s * 1e9,
                    worst_case_pull_up_ns=org.subarray.worst_case_pull_up_s * 1e9,
                )
            )
    return rows


def format_table3(rows: List[Table3Row] = None) -> str:
    """Render Table 3 in the paper's layout."""
    rows = rows if rows is not None else table3_rows()
    return format_table(
        headers=[
            "Subarray",
            "Feature (nm)",
            "Decode drive (ns)",
            "Predecode (ns)",
            "Final decode (ns)",
            "Worst-case pull-up (ns)",
        ],
        rows=[
            [
                f"{row.subarray_bytes // 1024}KB" if row.subarray_bytes >= 1024
                else f"{row.subarray_bytes}B",
                row.feature_size_nm,
                f"{row.decode_drive_ns:.3f}",
                f"{row.predecode_ns:.3f}",
                f"{row.final_decode_ns:.3f}",
                f"{row.worst_case_pull_up_ns:.3f}",
            ]
            for row in rows
        ],
        title="Table 3: Decode and precharge delay",
    )


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "table3",
    title="Table 3 - decode vs precharge delays",
    formatter=format_table3,
    uses_engine=False,
    consumes=(),
)
def _table3_experiment(engine, options: ExperimentOptions):
    return table3_rows()
