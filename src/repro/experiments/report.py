"""Plain-text table formatting for experiment outputs.

Every experiment module returns structured data; these helpers render that
data as the fixed-width text tables the benchmark harness prints, in the
same rows/series layout as the corresponding table or figure in the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, List, Sequence

__all__ = ["format_table", "format_percent", "format_series", "jsonify"]


def jsonify(value: Any) -> Any:
    """Best-effort conversion of result objects to JSON-safe values.

    Dataclasses become field dictionaries (recursively), containers are
    converted element-wise, scalars pass through, and anything else falls
    back to ``repr``.  Shared by the CLI's ``--json`` output and the
    golden-result snapshots, so both serialise experiments identically.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonify(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string (``0.83`` -> ``"83.0%"``)."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table.

    Args:
        headers: Column headings.
        rows: Row values; each row must have the same length as ``headers``.
        title: Optional title printed above the table.
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_series(name: str, points: Iterable[tuple], value_format: str = "{:.3f}") -> str:
    """Render an (x, y) series as a compact single line."""
    rendered = ", ".join(
        f"{x}: {value_format.format(y)}" for x, y in points
    )
    return f"{name}: {rendered}"
