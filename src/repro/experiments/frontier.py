"""L1/L2 energy-delay frontier: which level should gate its bitlines?

With both cache levels policy-controlled, the design space is a grid:
every L1 precharge configuration crossed with every L2 policy.  Each
grid point is summarised by two benchmark-averaged ratios against the
all-static hierarchy — total hierarchy cache energy (L1I + L1D + L2)
and execution time — and by their product (the energy-delay product).
The Pareto-optimal subset is the energy-delay frontier: the
configurations for which no other point is at least as good on both
axes and strictly better on one.

The expected shape: gating the L2 is nearly free (its traffic is sparse
L1-miss traffic, so decay thresholds barely delay anything) while
gating the L1s buys the larger dynamic-energy share at a small slowdown
— the frontier therefore runs from the all-static corner through
L2-only gating to whole-hierarchy gating.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.registry import PolicySpec
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine, default_engine
from repro.sim.metrics import RunResult, arithmetic_mean
from repro.workloads.characteristics import benchmark_names

from .report import format_table

__all__ = [
    "L1_MENU",
    "L2_MENU",
    "FrontierPoint",
    "FrontierResult",
    "energy_delay_frontier",
    "format_frontier",
]

#: L1 policy pairs (label, dcache spec, icache spec) spanning the paper's
#: range: conventional, the near-optimal gated configuration, the oracle.
L1_MENU: Tuple[Tuple[str, PolicySpec, PolicySpec], ...] = (
    ("static", PolicySpec("static"), PolicySpec("static")),
    (
        "gated",
        PolicySpec("gated-predecode", {"threshold": 100}),
        PolicySpec("gated", {"threshold": 100}),
    ),
    ("oracle", PolicySpec("oracle"), PolicySpec("oracle")),
)

#: L2 policy axis (label, spec) — thresholds scaled to L2 traffic.
L2_MENU: Tuple[Tuple[str, PolicySpec], ...] = (
    ("static", PolicySpec("static")),
    ("gated@500", PolicySpec("gated", {"threshold": 500})),
    ("on-demand", PolicySpec("on-demand")),
)


@dataclass(frozen=True)
class FrontierPoint:
    """One L1 x L2 grid point, normalised to the all-static hierarchy.

    Attributes:
        l1: L1 menu label.
        l2: L2 menu label.
        relative_energy: Benchmark-averaged total hierarchy cache energy
            (L1I + L1D + L2) relative to the all-static configuration.
        relative_delay: Benchmark-averaged execution time relative to
            the all-static configuration.
        energy_delay_product: ``relative_energy * relative_delay``.
        pareto: Whether the point lies on the energy-delay frontier.
    """

    l1: str
    l2: str
    relative_energy: float
    relative_delay: float
    energy_delay_product: float
    pareto: bool


@dataclass(frozen=True)
class FrontierResult:
    """The full grid plus the frontier subset.

    Attributes:
        points: Every grid point, L1-major in menu order.
        feature_size_nm: Technology node.
    """

    points: List[FrontierPoint]
    feature_size_nm: int

    @property
    def frontier(self) -> List[FrontierPoint]:
        """The Pareto-optimal points, sorted by relative delay."""
        return sorted(
            (p for p in self.points if p.pareto), key=lambda p: p.relative_delay
        )

    @property
    def best_energy_delay(self) -> FrontierPoint:
        """The point with the lowest energy-delay product."""
        return min(self.points, key=lambda p: p.energy_delay_product)


def _mark_pareto(points: List[Tuple[str, str, float, float]]) -> List[FrontierPoint]:
    """Attach Pareto-optimality to (l1, l2, energy, delay) tuples."""
    marked: List[FrontierPoint] = []
    for l1, l2, energy, delay in points:
        dominated = any(
            (other_e <= energy and other_d <= delay)
            and (other_e < energy or other_d < delay)
            for _, _, other_e, other_d in points
        )
        marked.append(
            FrontierPoint(
                l1=l1,
                l2=l2,
                relative_energy=energy,
                relative_delay=delay,
                energy_delay_product=energy * delay,
                pareto=not dominated,
            )
        )
    return marked


def energy_delay_frontier(
    benchmarks: Optional[Sequence[str]] = None,
    l1_menu: Sequence[Tuple[str, PolicySpec, PolicySpec]] = L1_MENU,
    l2_menu: Sequence[Tuple[str, PolicySpec]] = L2_MENU,
    feature_size_nm: int = 70,
    n_instructions: int = 15_000,
    engine: Optional[SimEngine] = None,
) -> FrontierResult:
    """Compute the L1 x L2 energy-delay grid and its Pareto frontier.

    Args:
        benchmarks: Benchmark subset (default: all sixteen).
        l1_menu: L1 policy pairs (label, dcache spec, icache spec).
        l2_menu: L2 policies (label, spec).
        feature_size_nm: Technology node.
        n_instructions: Micro-ops per run.
        engine: Engine to run on; defaults to the process-wide engine.

    Returns:
        A :class:`FrontierResult` over the full grid.

    Raises:
        ValueError: when either menu is empty (the all-static baseline
            is required and is inserted when missing).
    """
    if not l1_menu or not l2_menu:
        raise ValueError("both policy menus must be non-empty")
    engine = default_engine() if engine is None else engine
    names = list(benchmarks) if benchmarks is not None else benchmark_names()

    grid = [
        (l1_label, l2_label, dspec, ispec, l2_spec)
        for l1_label, dspec, ispec in l1_menu
        for l2_label, l2_spec in l2_menu
    ]
    static_cell = ("static", "static")
    if not any((l1, l2) == static_cell for l1, l2, *_ in grid):
        grid.insert(
            0,
            (
                "static",
                "static",
                PolicySpec("static"),
                PolicySpec("static"),
                PolicySpec("static"),
            ),
        )

    base = SimulationConfig(
        feature_size_nm=feature_size_nm, n_instructions=n_instructions
    )
    configs = [
        replace(base, benchmark=name, dcache=dspec, icache=ispec, l2=l2_spec)
        for _, _, dspec, ispec, l2_spec in grid
        for name in names
    ]
    results = engine.run_many(configs)
    by_cell: Dict[Tuple[str, str], List[RunResult]] = {}
    index = 0
    for l1_label, l2_label, *_ in grid:
        by_cell[(l1_label, l2_label)] = results[index : index + len(names)]
        index += len(names)

    baseline_runs = by_cell[static_cell]
    raw: List[Tuple[str, str, float, float]] = []
    for l1_label, l2_label, *_ in grid:
        runs = by_cell[(l1_label, l2_label)]
        energy = arithmetic_mean(
            run.energy.total_hierarchy_energy_j
            / baseline.energy.total_hierarchy_energy_j
            for run, baseline in zip(runs, baseline_runs)
        )
        delay = arithmetic_mean(
            run.cycles / baseline.cycles
            for run, baseline in zip(runs, baseline_runs)
        )
        raw.append((l1_label, l2_label, energy, delay))
    return FrontierResult(
        points=_mark_pareto(raw), feature_size_nm=feature_size_nm
    )


def format_frontier(result: FrontierResult) -> str:
    """Render the energy-delay grid with the frontier marked."""
    rows = [
        [
            point.l1,
            point.l2,
            f"{point.relative_energy:.3f}",
            f"{point.relative_delay:.4f}",
            f"{point.energy_delay_product:.3f}",
            "*" if point.pareto else "",
        ]
        for point in result.points
    ]
    table = format_table(
        headers=["L1", "L2", "Rel. energy", "Rel. delay", "EDP", "Frontier"],
        rows=rows,
        title=(
            "L1/L2 energy-delay frontier "
            f"({result.feature_size_nm}nm; ratios vs the all-static hierarchy)"
        ),
    )
    best = result.best_energy_delay
    summary = (
        f"Best energy-delay product: L1={best.l1}, L2={best.l2} "
        f"(energy {best.relative_energy:.3f}, delay {best.relative_delay:.4f}, "
        f"EDP {best.energy_delay_product:.3f}); "
        f"frontier holds {len(result.frontier)} of {len(result.points)} points"
    )
    return table + "\n" + summary


from .registry import ExperimentOptions, register_experiment  # noqa: E402


@register_experiment(
    "frontier",
    title="L1/L2 energy-delay frontier",
    formatter=format_frontier,
    consumes=("benchmarks", "n_instructions", "feature_size_nm", "l2_policy"),
)
def _frontier_experiment(engine, options: ExperimentOptions):
    """Pareto frontier of hierarchy energy vs delay over the L1 x L2 grid."""
    l2_menu = L2_MENU
    if options.l2_policy is not None:
        spec = options.resolved_l2()
        # The static baseline is mandatory; only add the forced policy
        # when it is not static itself (else the grid would hold
        # duplicate cells).
        l2_menu = (("static", PolicySpec("static")),)
        if spec.cache_key() != PolicySpec("static").cache_key():
            l2_menu += ((options.l2_policy, spec),)
    return energy_delay_frontier(
        benchmarks=options.benchmarks,
        l2_menu=l2_menu,
        feature_size_nm=options.resolved_feature_size(),
        n_instructions=options.resolved_instructions(15_000),
        engine=engine,
    )
