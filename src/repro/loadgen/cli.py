"""The ``repro loadgen`` subcommand.

Drive a live service::

    repro loadgen --server http://127.0.0.1:8023 --rate 20 --duration 5
    repro loadgen --server URL --rate phases:10+80@5 --duration 20
    repro loadgen --server URL --mode closed --clients 8 --think 0.05
    repro loadgen --server URL --sweep 5,10,20,40 --duration 5
    repro loadgen --server URL --replay session.jsonl --speed 2
    repro loadgen --record-from-journal jobs.wal --record session.jsonl

Exit status: ``0`` success; ``1`` when the sampled byte-identity check
against a local engine fails (the run found a real correctness bug);
``2`` bad usage; ``4`` when ``--min-achieved-ratio`` is given and the
service completed a smaller fraction of the offered load (the CI
load-smoke gate).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .base import (
    DeterministicArrivals,
    PoissonArrivals,
    RequestEngine,
    parse_rate_schedule,
    take_requests,
)
from .replay import ReplayEngine, record_from_journal, write_session
from .report import format_curve, format_report
from .runner import LoadReport, LoadRunner, saturation_sweep
from .synthetic import MixEngine, parse_mix

__all__ = ["add_loadgen_arguments", "build_parser", "main", "run_from_args"]

#: Default payload mix: two benchmarks x two decay thresholds.
DEFAULT_MIX = "gcc/gated,art/gated,gcc/gated:threshold=200*2"


def add_loadgen_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the subcommand's options (shared with the ``repro`` CLI)."""
    parser.add_argument("--server", metavar="URL", default=None,
                        help="service base URL, e.g. http://127.0.0.1:8023 "
                             "(required except with --record-from-journal)")
    parser.add_argument("--mode", choices=("open", "closed"), default="open",
                        help="open loop (rate-paced arrivals) or closed loop "
                             "(N waiting clients; default: open)")
    parser.add_argument("--rate", default="10", metavar="SPEC",
                        help="open-loop offered rate: a number, "
                             "'phases:R1+R2@T' or 'diurnal:LO+HI@T' "
                             "(default: 10)")
    parser.add_argument("--arrivals", choices=("poisson", "deterministic"),
                        default="poisson",
                        help="open-loop arrival process (default: poisson)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop concurrent clients (default: 4)")
    parser.add_argument("--think", type=float, default=0.0, metavar="S",
                        help="closed-loop think time between jobs (default: 0)")
    parser.add_argument("--duration", type=float, default=10.0, metavar="S",
                        help="offered-load window, seconds (default: 10)")
    parser.add_argument("--mix", default=DEFAULT_MIX, metavar="SPEC",
                        help="payload mix: 'bench[/policy][*weight],...'; "
                             "'A+B/policy' entries submit sweep jobs "
                             f"(default: {DEFAULT_MIX})")
    parser.add_argument("--instructions", type=int, default=4000,
                        help="micro-ops per submitted configuration "
                             "(default: 4000)")
    parser.add_argument("--seed", type=int, default=1,
                        help="generator seed; identical seed + mix + rate "
                             "reproduce the identical request stream "
                             "(default: 1)")
    parser.add_argument("--sweep", default=None, metavar="R1,R2,...",
                        help="saturation sweep: one open-loop point per "
                             "offered rate (overrides --rate/--mode)")
    parser.add_argument("--replay", default=None, metavar="PATH",
                        help="replay a recorded session file instead of "
                             "generating synthetic traffic")
    parser.add_argument("--speed", type=float, default=1.0,
                        help="replay speed multiplier; 2 halves every "
                             "inter-arrival gap (default: 1)")
    parser.add_argument("--record", default=None, metavar="PATH",
                        help="write the driven request stream to a session "
                             "file for later --replay")
    parser.add_argument("--record-from-journal", default=None, metavar="WAL",
                        help="derive a session file (--record PATH) from a "
                             "server write-ahead journal and exit")
    parser.add_argument("--verify", type=int, default=3, metavar="N",
                        help="sampled configs byte-checked against a local "
                             "engine per run; 0 disables (default: 3)")
    parser.add_argument("--min-achieved-ratio", type=float, default=None,
                        metavar="F",
                        help="exit 4 when completed/offered falls below F "
                             "(the CI load-smoke gate)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON on stdout")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="also write the JSON report to PATH")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro loadgen", description=__doc__.splitlines()[0]
    )
    add_loadgen_arguments(parser)
    return parser


def _make_engine(args: argparse.Namespace, rate: Optional[str] = None) -> RequestEngine:
    if args.replay:
        return ReplayEngine(args.replay, speed=args.speed)
    mix = parse_mix(args.mix, instructions=args.instructions)
    schedule = parse_rate_schedule(rate if rate is not None else args.rate)
    if args.arrivals == "poisson":
        arrivals = PoissonArrivals(schedule, seed=args.seed)
    else:
        arrivals = DeterministicArrivals(schedule)
    return MixEngine(mix, arrivals, seed=args.seed)


def _emit(args: argparse.Namespace, payload: Dict[str, Any], text: str) -> None:
    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    if args.json:
        print(json.dumps(payload))
    else:
        print(text)
        if args.output:
            print(f"wrote {args.output}")


def _gate(args: argparse.Namespace, reports: List[LoadReport]) -> int:
    """The regression gates: identity (exit 1), achieved ratio (exit 4)."""
    identity_values = [
        r.identity_ok for r in reports if r.identity_ok is not None
    ]
    if identity_values and not all(identity_values):
        print("repro loadgen: ERROR: served results diverged from the "
              "local engine (identity check failed)")
        return 1
    if args.min_achieved_ratio is not None:
        worst = min((r.achieved_ratio for r in reports), default=1.0)
        if worst < args.min_achieved_ratio:
            print(
                f"repro loadgen: ERROR: achieved/offered ratio {worst:.3f} "
                f"below the --min-achieved-ratio {args.min_achieved_ratio} gate"
            )
            return 4
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    """Execute ``repro loadgen`` from parsed arguments."""
    if args.record_from_journal:
        if not args.record:
            raise ValueError("--record-from-journal needs --record PATH for "
                             "the session file destination")
        count = record_from_journal(args.record_from_journal, args.record)
        print(f"recorded {count} request(s) from {args.record_from_journal} "
              f"to {args.record}")
        return 0
    if not args.server:
        raise ValueError("--server URL is required (or use "
                         "--record-from-journal to convert a journal offline)")
    if args.duration <= 0:
        raise ValueError("--duration must be positive")
    if args.clients < 1:
        raise ValueError("--clients must be at least 1")

    runner = LoadRunner(args.server)

    if args.sweep:
        try:
            rates = [float(part) for part in args.sweep.split(",") if part.strip()]
        except ValueError:
            raise ValueError(
                f"--sweep takes comma-separated rates (got {args.sweep!r})"
            ) from None
        if len(rates) < 2:
            raise ValueError("--sweep needs at least two offered rates")
        reports = saturation_sweep(
            runner,
            lambda rate: _make_engine(args, rate=str(rate)),
            rates,
            args.duration,
            verify_sample=args.verify,
            echo=None if args.json else print,
        )
        payload = {
            "kind": "repro-loadgen/sweep",
            "duration_s": args.duration,
            "seed": args.seed,
            "points": [report.to_dict() for report in reports],
        }
        _emit(args, payload, format_curve(reports))
        return _gate(args, reports)

    engine = _make_engine(args)
    if args.record:
        count = write_session(
            args.record,
            take_requests(engine, args.duration),
            source=engine.describe(),
        )
        if not args.json:
            print(f"recorded {count} request(s) to {args.record}")
    if args.mode == "closed":
        report = runner.closed_loop(
            engine, clients=args.clients, duration=args.duration,
            think_s=args.think,
        )
    else:
        report = runner.open_loop(engine, args.duration)
    runner.verify(report, sample=args.verify)
    payload = {"kind": "repro-loadgen/run", "seed": args.seed}
    payload.update(report.to_dict())
    _emit(args, payload, format_report(report))
    return _gate(args, [report])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.loadgen.cli``)."""
    args = build_parser().parse_args(argv)
    try:
        return run_from_args(args)
    except ValueError as error:
        print(f"repro loadgen: error: {error}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
