"""Loadgen reporting: human-readable curves and the bench artifact section.

Two consumers share this module:

* ``repro loadgen`` renders single runs and ``--sweep`` saturation
  curves as text (or emits the same rows as JSON);
* ``repro bench --service`` calls :func:`bench_loadgen_section` to
  embed a small saturation curve — measured against an in-process
  :class:`~repro.service.server.ServiceServer` over real HTTP — into
  the ``loadgen`` section of the ``repro-bench/pr6`` artifact, which
  is what makes service traffic a *regression-gated* workload.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim.engine import SimEngine

from .base import PoissonArrivals, parse_rate_schedule
from .runner import LoadReport, LoadRunner, saturation_sweep
from .synthetic import MixEngine, parse_mix

__all__ = ["bench_loadgen_section", "format_curve", "format_report"]

#: Offered rates of the bench artifact's saturation curve (jobs/sec).
BENCH_RATES = (4.0, 8.0, 16.0, 32.0)

#: The bench curve's mix: run payloads across benchmarks x thresholds,
#: wide enough that points do not trivially collapse onto the result LRU.
BENCH_MIX = (
    "gcc/gated:threshold=100,gcc/gated:threshold=200,"
    "art/gated:threshold=150,art/gated:threshold=250,"
    "gcc+art/gated"
)


def _fmt_ms(seconds: Optional[float]) -> str:
    return "      -" if seconds is None else f"{seconds * 1000:7.1f}"


def format_report(report: LoadReport) -> str:
    """A single run as readable text."""
    row = report.to_dict()
    lines = [
        f"{report.mode}-loop load: {report.generator}",
        f"  offered   {row['offered']:5d} requests "
        f"({row['offered_per_s']:.2f}/s over {row['duration_s']:g}s)",
        f"  completed {row['completed']:5d} "
        f"({row['achieved_per_s']:.2f}/s achieved, ratio "
        f"{row['achieved_ratio']:.3f})",
        f"  rejected  {row['rejected_429']:5d} (429s), failed {row['failed']}",
        f"  latency   p50 {_fmt_ms(row['latency_s']['p50'])}ms   "
        f"p95 {_fmt_ms(row['latency_s']['p95'])}ms   "
        f"p99 {_fmt_ms(row['latency_s']['p99'])}ms",
        f"  lateness  p95 {_fmt_ms(row['lateness_s']['p95'])}ms   "
        f"max {_fmt_ms(row['lateness_s']['max'])}ms",
    ]
    if row["coalesce_rate"] is not None:
        lines.append(f"  coalesce  {row['coalesce_rate']:.3f}")
    delta = row.get("metrics_delta") or {}
    if delta:
        # The server's own /v1/metrics counter delta across the run, so
        # client-side counts can be cross-checked against what the
        # service says it admitted and executed.
        lines.append(
            f"  server Δ  jobs +{delta.get('jobs_submitted', 0)} submitted, "
            f"+{delta.get('jobs_rejected', 0)} rejected"
        )
        lines.append(
            f"            units +{delta.get('units_requested', 0)} requested: "
            f"{delta.get('units_executed', 0)} executed, "
            f"{delta.get('units_cached', 0)} cached, "
            f"{delta.get('units_coalesced', 0)} coalesced"
        )
    if row["identity"]["checked"]:
        lines.append(
            f"  identity  {row['identity']['checked']} sampled config(s): "
            + ("byte-identical to local engine" if row["identity"]["ok"]
               else "MISMATCH vs local engine")
        )
    return "\n".join(lines)


def format_curve(reports: Sequence[LoadReport]) -> str:
    """A saturation curve as an aligned text table."""
    lines = [
        "offered/s  achieved/s   ratio   p50 ms   p95 ms   p99 ms  "
        "429s  coalesce  identity"
    ]
    for report in reports:
        row = report.to_dict()
        coalesce = row["coalesce_rate"]
        lines.append(
            f"{row['offered_per_s']:9.2f}  {row['achieved_per_s']:10.2f}  "
            f"{row['achieved_ratio']:6.3f}  {_fmt_ms(row['latency_s']['p50'])}  "
            f"{_fmt_ms(row['latency_s']['p95'])}  "
            f"{_fmt_ms(row['latency_s']['p99'])}  "
            f"{row['rejected_429']:4d}  "
            + (f"{coalesce:8.3f}  " if coalesce is not None else "       -  ")
            + str(row["identity"]["ok"])
        )
    return "\n".join(lines)


def bench_loadgen_section(
    instructions: int,
    rates: Sequence[float] = BENCH_RATES,
    duration: float = 2.5,
    seed: int = 1,
    verify_sample: int = 2,
    echo: Callable[[str], None] = print,
) -> Dict[str, Any]:
    """Measure a saturation curve against an in-process service.

    Boots a :class:`~repro.service.server.ServiceServer` on an
    ephemeral port, sweeps the offered rates open-loop (Poisson
    arrivals over the :data:`BENCH_MIX` payload mix), verifies sampled
    results byte-identically against a local engine, and returns the
    ``loadgen`` section of the bench artifact.
    """
    from repro.service.server import ServiceServer

    mix = parse_mix(BENCH_MIX, instructions=instructions)
    local = SimEngine(fast=True)
    server = ServiceServer(engine=SimEngine(fast=True)).start()
    try:
        runner = LoadRunner(server.url)

        def make_engine(rate: float) -> MixEngine:
            return MixEngine(
                mix, PoissonArrivals(parse_rate_schedule(str(rate)), seed=seed),
                seed=seed,
            )

        reports = saturation_sweep(
            runner,
            make_engine,
            rates,
            duration,
            verify_sample=verify_sample,
            engine=local,
            echo=echo,
        )
    finally:
        server.stop()
        local.close()
    points: List[Dict[str, Any]] = [report.to_dict() for report in reports]
    identity_values = [
        point["identity"]["ok"] for point in points
        if point["identity"]["ok"] is not None
    ]
    return {
        "mix": mix.describe(),
        "arrivals": "poisson",
        "seed": seed,
        "duration_s": duration,
        "points": points,
        "peak_achieved_per_s": max(
            (point["achieved_per_s"] for point in points), default=0.0
        ),
        "identical": bool(identity_values) and all(identity_values),
    }
