"""Recorded-session traffic: session files, the journal recorder, replay.

A **session file** is the durable form of a request stream: JSON lines,
one header line followed by one line per request::

    {"v": 1, "kind": "repro-loadgen/session", "source": "..."}
    {"at_s": 0.0,   "tag": "run:gcc/gated", "payload": {...}}
    {"at_s": 0.041, "tag": "run:art/gated", "payload": {...}}

``at_s`` offsets are seconds from the first request; payloads are
verbatim ``POST /v1/jobs`` bodies.  Sessions come from two recorders:

* the driver itself (``repro loadgen --record PATH``) persists the
  stream it generated or drove, so an interesting synthetic burst can
  be replayed exactly, later, against a different server build;
* :func:`record_from_journal` derives a session from a server's
  write-ahead journal: every ``submit`` event carries a wall-clock
  timestamp (see :mod:`repro.service.journal`), so real accepted
  traffic becomes a replayable workload with its inter-arrival gaps
  preserved.

:class:`ReplayEngine` turns a session back into a request stream.  A
``speed`` multiplier compresses (or stretches) the gaps — ``speed=2``
replays a recorded hour in thirty minutes at twice the offered rate —
and client-supplied job ids are dropped so a replay never collides
with the session's original ids (HTTP 409).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .base import Request, RequestEngine

__all__ = [
    "ReplayEngine",
    "read_session",
    "record_from_journal",
    "write_session",
]

#: The header's ``kind`` tag; :func:`read_session` rejects other files.
SESSION_KIND = "repro-loadgen/session"


def write_session(
    path: Union[str, Path], requests: Iterable[Request], source: str = ""
) -> int:
    """Write a session file; returns the number of requests written.

    Offsets are re-based so the first request is at 0.0 — a stream cut
    out of a longer run replays without its leading silence.
    """
    requests = list(requests)
    base = requests[0].at_s if requests else 0.0
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"v": 1, "kind": SESSION_KIND, "source": source},
                separators=(",", ":"),
            )
            + "\n"
        )
        for request in requests:
            handle.write(
                json.dumps(
                    {
                        "at_s": round(max(0.0, request.at_s - base), 6),
                        "tag": request.tag,
                        "payload": request.payload,
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
    return len(requests)


def read_session(path: Union[str, Path]) -> List[Request]:
    """Load a session file back into requests (offsets preserved).

    Raises:
        ValueError: for a missing/empty file, a bad header, or a
            request line without the required fields.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as error:
        raise ValueError(f"cannot read session {path}: {error}") from None
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise ValueError(f"session {path} is empty")
    try:
        header = json.loads(lines[0])
    except ValueError:
        header = None
    if not isinstance(header, dict) or header.get("kind") != SESSION_KIND:
        raise ValueError(
            f"{path} is not a loadgen session file (missing "
            f"{SESSION_KIND!r} header)"
        )
    requests: List[Request] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
            at_s = float(record["at_s"])
            payload = record["payload"]
        except (ValueError, KeyError, TypeError):
            raise ValueError(f"{path}:{number}: malformed session line") from None
        if not isinstance(payload, dict):
            raise ValueError(f"{path}:{number}: payload must be a JSON object")
        # Replaying a client-pinned id would 409 against the original
        # submission (and against sibling replays); ids are per-send.
        payload = {k: v for k, v in payload.items() if k != "id"}
        requests.append(
            Request(at_s=at_s, payload=payload, tag=str(record.get("tag", "")))
        )
    return requests


def record_from_journal(
    journal_path: Union[str, Path],
    out_path: Union[str, Path],
    default_gap_s: float = 0.0,
) -> int:
    """Derive a session file from a server's write-ahead journal.

    Reads the journal's ``submit`` events (terminal events are
    irrelevant to arrival timing) and rebuilds each job's submission
    payload from its durable form.  Inter-arrival gaps come from the
    per-event wall-clock timestamps; events without one (journals
    written before timestamps existed, or compacted entries) advance by
    ``default_gap_s``.  Returns the number of requests recorded.

    Raises:
        ValueError: when the journal is unreadable or holds no submit
            events.
    """
    journal_path = Path(journal_path)
    try:
        lines = journal_path.read_text(encoding="utf-8").splitlines()
    except OSError as error:
        raise ValueError(f"cannot read journal {journal_path}: {error}") from None
    requests: List[Request] = []
    clock = 0.0
    last_t = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue  # a torn final line, exactly as journal replay tolerates
        if not isinstance(event, dict) or event.get("event") != "submit":
            continue
        job = event.get("job")
        if not isinstance(job, dict) or not job.get("configs"):
            continue
        t = event.get("t")
        if isinstance(t, (int, float)) and last_t is not None:
            clock += max(0.0, float(t) - last_t)
        elif requests:
            clock += default_gap_s
        if isinstance(t, (int, float)):
            last_t = float(t)
        payload = _submission_payload(job)
        if payload is not None:
            requests.append(
                Request(at_s=clock, payload=payload, tag=f"journal:{job.get('id')}")
            )
    if not requests:
        raise ValueError(f"journal {journal_path} holds no submit events")
    return write_session(out_path, requests, source=f"journal:{journal_path}")


def _submission_payload(job: dict) -> "dict | None":
    """Rebuild the ``POST /v1/jobs`` body from a journaled job document.

    The journal stores the *parsed* job (kind + expanded configs); this
    inverts that expansion so a replayed sweep is again one sweep job
    the server can coalesce, not N separate runs.
    """
    kind = job.get("kind")
    configs = job.get("configs") or []
    if kind == "run" and len(configs) == 1:
        payload = {"kind": "run", "config": configs[0]}
    elif kind == "sweep" and job.get("labels"):
        payload = {
            "kind": "sweep",
            "config": configs[0],
            "benchmarks": list(job["labels"]),
        }
    elif kind == "batch":
        payload = {"kind": "batch", "configs": list(configs)}
    else:
        return None
    if job.get("priority"):
        payload["priority"] = job["priority"]
    if job.get("timeout_s") is not None:
        payload["timeout_s"] = job["timeout_s"]
    return payload


class ReplayEngine(RequestEngine):
    """Replay a recorded session, gaps preserved, at a speed multiplier."""

    def __init__(self, path: Union[str, Path], speed: float = 1.0) -> None:
        if not speed > 0:
            raise ValueError(f"replay speed must be positive (got {speed})")
        self.path = Path(path)
        self.speed = speed
        self._requests = read_session(self.path)

    def __len__(self) -> int:
        return len(self._requests)

    def requests(self) -> Iterator[Request]:
        for request in self._requests:
            yield Request(
                at_s=request.at_s / self.speed,
                payload=request.payload,
                tag=request.tag,
            )

    def describe(self) -> str:
        label = f"replay:{self.path.name} ({len(self._requests)} requests)"
        if self.speed != 1.0:
            label += f" at {self.speed:g}x"
        return label
