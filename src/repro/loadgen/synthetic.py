"""Synthetic traffic: seeded static mixes and dynamic rate schedules.

A **mix** is a weighted distribution over job payloads — the
load-generation analogue of the ``mix:`` scenario family.  Each entry
names the benchmarks and the L1-D precharge policy of the submitted
configuration, with an optional integer weight::

    gcc/gated*3, art/gated:threshold=200, gcc+art/gated

* ``benchmark/policy-spec`` submits **run** jobs for that
  configuration;
* ``A+B[+C...]/policy-spec`` submits **sweep** jobs over the named
  benchmarks (one job, one configuration per benchmark — the service
  fans it out);
* ``*N`` weights the entry (default 1): a draw picks entries
  proportionally.

Draws are made with a dedicated :class:`random.Random` stream, so a
given ``(mix spec, seed)`` always generates the identical payload
sequence — the reproducibility contract the CLI's ``--seed`` exposes
and the tests pin.

**Static vs dynamic.**  A :class:`MixEngine` couples a mix to an
arrival process.  With a constant-rate schedule the stream is a
*static* workload; handing the same engine a ``phases:`` or
``diurnal:`` schedule (see :mod:`~repro.loadgen.base`) makes the
offered load time-varying — bursty phases and compressed diurnal days
— without touching the payload distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.registry import PolicySpec
from repro.service.jobs import JobError, parse_job_payload
from repro.sim.config import SimulationConfig

from .base import ArrivalProcess, Request, RequestEngine

__all__ = ["MixEntry", "MixEngine", "StaticMix", "parse_mix"]

#: Decorrelates the payload-draw stream from the arrival-time stream so
#: the same seed yields the same arrival pattern under any mix.
_PAYLOAD_SEED_OFFSET = 9973


@dataclass(frozen=True)
class MixEntry:
    """One weighted payload template of a mix."""

    benchmarks: Tuple[str, ...]
    dcache: str
    weight: int
    instructions: int
    seed: int

    @property
    def kind(self) -> str:
        return "run" if len(self.benchmarks) == 1 else "sweep"

    def payload(self) -> Dict[str, Any]:
        """The ``POST /v1/jobs`` body this entry submits."""
        config = SimulationConfig(
            benchmark=self.benchmarks[0],
            dcache=PolicySpec.parse(self.dcache),
            icache="gated",
            n_instructions=self.instructions,
            seed=self.seed,
        )
        if self.kind == "run":
            return {"kind": "run", "config": config.to_dict()}
        return {
            "kind": "sweep",
            "config": config.to_dict(),
            "benchmarks": list(self.benchmarks),
        }

    def tag(self) -> str:
        return f"{self.kind}:{'+'.join(self.benchmarks)}/{self.dcache}"


class StaticMix:
    """A weighted, seeded distribution over job payloads."""

    def __init__(self, entries: List[MixEntry]) -> None:
        if not entries:
            raise ValueError("a mix needs at least one entry")
        self.entries = list(entries)
        self._weights = [entry.weight for entry in self.entries]
        # Validate every template once, up front: an unknown benchmark
        # or policy should fail at parse time with the registry's
        # message, not as a mid-run 422 from the server.
        for entry in self.entries:
            try:
                parse_job_payload(entry.payload())
            except JobError as error:
                raise ValueError(f"mix entry {entry.tag()!r}: {error}") from None

    def draw(self, rng: random.Random) -> MixEntry:
        return rng.choices(self.entries, weights=self._weights, k=1)[0]

    def payloads(self, seed: int) -> Iterator[Tuple[Dict[str, Any], str]]:
        """An infinite, reproducible ``(payload, tag)`` stream."""
        rng = random.Random(seed + _PAYLOAD_SEED_OFFSET)
        while True:
            entry = self.draw(rng)
            yield entry.payload(), entry.tag()

    def unique_configs(self) -> List[SimulationConfig]:
        """Every distinct configuration the mix can submit (verify pool)."""
        configs: List[SimulationConfig] = []
        seen = set()
        for entry in self.entries:
            for config in parse_job_payload(entry.payload()).configs:
                key = config.cache_key()
                if key not in seen:
                    seen.add(key)
                    configs.append(config)
        return configs

    def describe(self) -> str:
        return ",".join(
            entry.tag() + (f"*{entry.weight}" if entry.weight != 1 else "")
            for entry in self.entries
        )


def _split_toplevel(text: str, sep: str) -> List[str]:
    """Split ``text`` on ``sep``, ignoring separators inside ``(...)``.

    Scenario expressions contain ``+``, ``*`` and ``/`` themselves, so
    the mix language requires them to be parenthesised —
    ``(mix:gcc+art@500)/gated*3`` — and every split in this parser is
    parenthesis-depth-aware.  Unbalanced parentheses raise ValueError.
    """
    segments: List[str] = []
    depth = 0
    start = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced ')' in mix entry {text!r}")
        elif char == sep and depth == 0:
            segments.append(text[start:index])
            start = index + 1
    if depth != 0:
        raise ValueError(f"unbalanced '(' in mix entry {text!r}")
    segments.append(text[start:])
    return segments


def _strip_parens(name: str) -> str:
    """Unwrap one enclosing ``(...)`` pair, if it spans the whole name."""
    name = name.strip()
    if name.startswith("(") and name.endswith(")"):
        depth = 0
        for index, char in enumerate(name):
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0 and index != len(name) - 1:
                    return name  # e.g. "(a)(b)": parens don't span it
        return name[1:-1].strip()
    return name


def parse_mix(
    text: str, instructions: int = 4000, workload_seed: int = 1
) -> StaticMix:
    """Parse a ``--mix`` spec into a validated :class:`StaticMix`.

    Args:
        text: Comma-separated entries,
            ``benchmarks[/policy-spec][*weight]``.  A benchmark may be a
            parenthesised scenario or fuzz expression —
            ``(mix:gcc+art@500)/gated`` submits runs of the scenario,
            ``gcc+(phases:art+mcf)/gated`` sweeps over gcc and the
            composite — since bare ``+``/``*``/``/`` characters belong
            to the mix language itself.
        instructions: Micro-ops per submitted configuration.
        workload_seed: The *simulation* seed inside every payload (the
            generator's stream seed is separate, so changing it never
            changes the unit digests being requested).

    Raises:
        ValueError: for a malformed entry, unbalanced parentheses, an
            unknown benchmark, a malformed scenario expression (with its
            position), or a policy spec the registry rejects.
    """
    entries: List[MixEntry] = []
    for raw in _split_toplevel(text, ","):
        part = raw.strip()
        if not part:
            continue
        pieces = _split_toplevel(part, "*")
        if len(pieces) > 2:
            raise ValueError(f"mix entry {part!r} has more than one weight")
        weight_text = pieces[1].strip() if len(pieces) == 2 else ""
        part = pieces[0]
        if len(pieces) == 2:
            try:
                weight = int(weight_text)
            except ValueError:
                raise ValueError(
                    f"mix weight must be an integer (got {weight_text!r})"
                ) from None
            if weight < 1:
                raise ValueError(f"mix weight must be at least 1 (got {weight})")
        else:
            weight = 1
        name_pieces = _split_toplevel(part, "/")
        names_text = name_pieces[0]
        policy = "/".join(name_pieces[1:]).strip() if len(name_pieces) > 1 else ""
        benchmarks = tuple(
            stripped
            for name in _split_toplevel(names_text, "+")
            if (stripped := _strip_parens(name))
        )
        if not benchmarks:
            raise ValueError(f"mix entry {raw.strip()!r} names no benchmark")
        entries.append(
            MixEntry(
                benchmarks=benchmarks,
                dcache=policy if policy else "gated",
                weight=weight,
                instructions=instructions,
                seed=workload_seed,
            )
        )
    return StaticMix(entries)


class MixEngine(RequestEngine):
    """A mix driven by an arrival process: the synthetic request stream.

    ``requests()`` pairs the arrival process's offsets with the mix's
    payload stream.  Arrival times and payload draws use decorrelated
    seeded streams, so the whole request stream — times, payloads and
    tags — is a pure function of ``(mix, arrivals, seed, duration)``.
    """

    def __init__(
        self,
        mix: StaticMix,
        arrivals: ArrivalProcess,
        seed: int = 1,
        duration: float = float("inf"),
    ) -> None:
        self.mix = mix
        self.arrivals = arrivals
        self.seed = seed
        self.duration = duration

    def requests(self) -> Iterator[Request]:
        payloads = self.mix.payloads(self.seed)
        for at_s, (payload, tag) in zip(
            self.arrivals.arrivals(self.duration), payloads
        ):
            yield Request(at_s=at_s, payload=payload, tag=tag)

    def describe(self) -> str:
        return f"{self.arrivals.describe()} over [{self.mix.describe()}]"
