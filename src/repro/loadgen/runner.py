"""The load drivers: open loop, closed loop, saturation sweeps, identity.

:class:`LoadRunner` drives a live ``repro serve`` endpoint over real
HTTP and reduces per-request outcomes to a :class:`LoadReport`:

* **open loop** (:meth:`LoadRunner.open_loop`): a dispatcher paces an
  engine's request stream on its scheduled offsets and hands each
  request to a submission thread.  Offered load never adapts to the
  service — when the service cannot keep up the queue grows, latency
  climbs and (past admission control) 429s appear, while *lateness*
  (actual send minus scheduled send) records any point where the
  generator itself fell behind, so a saturated curve point is
  distinguishable from an undriven one;
* **closed loop** (:meth:`LoadRunner.closed_loop`): N client threads
  each submit, wait for completion, think, repeat — the classic
  interactive-user model, whose offered load self-throttles with
  latency.

Submissions deliberately use a retry-free client: a 429 is an
*observation* (the admission control working) and is counted, not
hidden behind the client library's backoff.  Server-side context —
coalesce rate, per-priority queue depths, the rolling 429 counter —
is captured as a ``/metrics`` counter delta across the run.

**Correctness hammer.**  Every run can verify a sampled subset of the
results it pulled over the wire against a local
:class:`~repro.sim.engine.SimEngine` execution, byte-identically
(exact ``RunResult.to_dict()`` equality) — load testing doubles as an
end-to-end equivalence check of the whole service stack under
concurrency.

:func:`saturation_sweep` runs one open-loop point per offered rate and
returns the curve (offered vs achieved jobs/sec, latency percentiles,
429 rate) that ``repro bench --service`` and the ``repro loadgen
--sweep`` CLI plot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.telemetry import percentile
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine

from .base import Request, RequestEngine, take_requests

__all__ = [
    "LoadReport",
    "LoadRunner",
    "RequestOutcome",
    "saturation_sweep",
    "verify_identity",
]

#: Hard cap on concurrently in-flight open-loop requests; past it the
#: dispatcher blocks (and the blockage is visible as lateness).
MAX_IN_FLIGHT = 256

#: Counters whose across-run delta the report embeds.
_DELTA_COUNTERS = (
    "jobs_submitted",
    "jobs_rejected",
    "units_requested",
    "units_cached",
    "units_coalesced",
    "units_executed",
)


@dataclass
class RequestOutcome:
    """What happened to one driven request."""

    tag: str
    scheduled_s: float
    sent_s: float
    lateness_s: float
    status: str  # done | rejected | failed | error
    latency_s: Optional[float] = None
    http_status: Optional[int] = None
    detail: Optional[str] = None
    unit_keys: List[str] = field(default_factory=list)
    payload: Optional[Dict[str, Any]] = None


@dataclass
class LoadReport:
    """One load run, reduced to the numbers a saturation curve needs."""

    mode: str
    generator: str
    duration_s: float
    wall_s: float
    offered: int
    completed: int
    rejected: int
    failed: int
    latencies_s: List[float]
    lateness_s: List[float]
    metrics_delta: Dict[str, int]
    server_metrics: Dict[str, Any]
    identity_checked: int = 0
    identity_ok: Optional[bool] = None
    outcomes: List[RequestOutcome] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def offered_rate(self) -> float:
        return self.offered / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def achieved_rate(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def achieved_ratio(self) -> float:
        """Completed jobs over offered jobs (the load-smoke CI gate)."""
        return self.completed / self.offered if self.offered else 1.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def coalesce_rate(self) -> Optional[float]:
        requested = self.metrics_delta.get("units_requested", 0)
        if not requested:
            return None
        served = self.metrics_delta.get("units_cached", 0) + self.metrics_delta.get(
            "units_coalesced", 0
        )
        return round(served / requested, 4)

    def latency(self, fraction: float) -> Optional[float]:
        return percentile(self.latencies_s, fraction)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON row (one saturation-curve point / one CLI report)."""
        return {
            "mode": self.mode,
            "generator": self.generator,
            "duration_s": round(self.duration_s, 3),
            "wall_s": round(self.wall_s, 4),
            "offered": self.offered,
            "offered_per_s": round(self.offered_rate, 3),
            "completed": self.completed,
            "achieved_per_s": round(self.achieved_rate, 3),
            "achieved_ratio": round(self.achieved_ratio, 4),
            "rejected_429": self.rejected,
            "rejection_rate": round(self.rejection_rate, 4),
            "failed": self.failed,
            "latency_s": {
                "p50": self.latency(0.50),
                "p95": self.latency(0.95),
                "p99": self.latency(0.99),
                "samples": len(self.latencies_s),
            },
            "lateness_s": {
                "p95": percentile(self.lateness_s, 0.95),
                "max": max(self.lateness_s) if self.lateness_s else None,
            },
            "coalesce_rate": self.coalesce_rate,
            "metrics_delta": dict(self.metrics_delta),
            "identity": {
                "checked": self.identity_checked,
                "ok": self.identity_ok,
            },
        }


class LoadRunner:
    """Drives one server URL; construct once, run many points."""

    def __init__(
        self,
        url: str,
        poll_s: float = 0.02,
        max_in_flight: int = MAX_IN_FLIGHT,
        request_timeout_s: float = 30.0,
        client_factory: Optional[Callable[[], ServiceClient]] = None,
    ) -> None:
        self.url = url
        self.poll_s = poll_s
        self.max_in_flight = max_in_flight
        self.request_timeout_s = request_timeout_s
        # Retry-free on purpose: admission pushback must be *counted*,
        # not quietly absorbed by the client library's backoff.
        self._client_factory = client_factory or (
            lambda: ServiceClient(url, timeout=request_timeout_s, retries=0)
        )

    # ------------------------------------------------------------------
    def _submit_and_wait(
        self,
        client: ServiceClient,
        request: Request,
        started: float,
        scheduled_s: float,
    ) -> RequestOutcome:
        sent_s = time.monotonic() - started
        begin = time.perf_counter()
        try:
            receipt = client.submit(request.payload)
        except ServiceError as error:
            status = "rejected" if error.status == 429 else "error"
            return RequestOutcome(
                tag=request.tag,
                scheduled_s=scheduled_s,
                sent_s=sent_s,
                lateness_s=max(0.0, sent_s - scheduled_s),
                status=status,
                http_status=error.status or None,
                detail=error.message,
                payload=request.payload,
            )
        try:
            client.wait(
                receipt["id"], poll_s=self.poll_s, timeout=self.request_timeout_s
            )
        except (JobFailed, ServiceError, TimeoutError) as error:
            return RequestOutcome(
                tag=request.tag,
                scheduled_s=scheduled_s,
                sent_s=sent_s,
                lateness_s=max(0.0, sent_s - scheduled_s),
                status="failed",
                detail=str(error),
                unit_keys=list(receipt.get("units", [])),
                payload=request.payload,
            )
        return RequestOutcome(
            tag=request.tag,
            scheduled_s=scheduled_s,
            sent_s=sent_s,
            lateness_s=max(0.0, sent_s - scheduled_s),
            status="done",
            latency_s=time.perf_counter() - begin,
            unit_keys=list(receipt.get("units", [])),
            payload=request.payload,
        )

    def _metrics(self) -> Dict[str, Any]:
        try:
            return self._client_factory().metrics()
        except Exception:  # noqa: BLE001 - metrics context is best-effort
            return {}

    @staticmethod
    def _counter_delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, int]:
        b = before.get("counters", {}) if isinstance(before, dict) else {}
        a = after.get("counters", {}) if isinstance(after, dict) else {}
        return {
            name: int(a.get(name, 0)) - int(b.get(name, 0))
            for name in _DELTA_COUNTERS
        }

    # ------------------------------------------------------------------
    def open_loop(
        self,
        engine: RequestEngine,
        duration: float,
        keep_outcomes: bool = True,
    ) -> LoadReport:
        """Drive the engine's stream at its scheduled times.

        Blocks until every dispatched request reaches an outcome (the
        drain after the offered window closes is part of ``wall_s``,
        so achieved throughput reflects the service absorbing the whole
        offered load, not just admitting it).
        """
        requests = take_requests(engine, duration)
        before = self._metrics()
        outcomes: List[Optional[RequestOutcome]] = [None] * len(requests)
        in_flight = threading.Semaphore(self.max_in_flight)
        local = threading.local()

        def client() -> ServiceClient:
            if not hasattr(local, "client"):
                local.client = self._client_factory()
            return local.client

        started = time.monotonic()

        def work(index: int, request: Request, scheduled_s: float) -> None:
            try:
                outcomes[index] = self._submit_and_wait(
                    client(), request, started, scheduled_s
                )
            finally:
                in_flight.release()

        threads: List[threading.Thread] = []
        for index, request in enumerate(requests):
            delay = request.at_s - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            # A full window means the service (or this process) is
            # saturated; the dispatcher blocks here and the blockage is
            # measured as lateness on the requests it delays.
            in_flight.acquire()
            thread = threading.Thread(
                target=work, args=(index, request, request.at_s), daemon=True
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        wall_s = time.monotonic() - started
        after = self._metrics()
        done = [o for o in outcomes if o is not None]
        return self._report(
            "open",
            engine.describe(),
            duration,
            wall_s,
            done,
            before,
            after,
            keep_outcomes,
        )

    # ------------------------------------------------------------------
    def closed_loop(
        self,
        engine: RequestEngine,
        clients: int,
        duration: float,
        think_s: float = 0.0,
        keep_outcomes: bool = True,
    ) -> LoadReport:
        """N synchronous clients, each submit -> wait -> think -> repeat.

        Each client walks its own offset of the engine's request stream
        (client *i* starts at request *i* and strides by ``clients``),
        so the submitted payload population matches the open-loop run
        of the same engine and stays reproducible.
        """
        if clients < 1:
            raise ValueError("closed_loop needs at least one client")
        # Materialise a bounded window of the stream and cycle it: a
        # cache-hot service can complete jobs far faster than one per
        # poll interval, and a closed loop must keep offering for the
        # whole duration (resubmitting recent payloads is the
        # duplicate-heavy traffic a result cache exists for).
        budget = max(64, int(duration / max(self.poll_s, 1e-3)) + 8) * clients
        stream: List[Request] = []
        for request in engine.requests():
            stream.append(request)
            if len(stream) >= budget:
                break
        if not stream:
            raise ValueError(f"{engine.describe()} produced no requests")
        before = self._metrics()
        outcomes: List[RequestOutcome] = []
        lock = threading.Lock()
        started = time.monotonic()
        deadline = started + duration

        def run_client(which: int) -> None:
            client = self._client_factory()
            position = which
            while time.monotonic() < deadline:
                request = stream[position % len(stream)]
                position += clients
                now = time.monotonic() - started
                outcome = self._submit_and_wait(client, request, started, now)
                with lock:
                    outcomes.append(outcome)
                if outcome.status == "rejected":
                    # A closed-loop user backs off briefly on admission
                    # pushback instead of hammering the full queue.
                    time.sleep(min(0.2, max(self.poll_s, 0.05)))
                elif think_s > 0:
                    time.sleep(think_s)

        threads = [
            threading.Thread(target=run_client, args=(index,), daemon=True)
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.monotonic() - started
        after = self._metrics()
        generator = f"{clients} clients (think {think_s:g}s) over {engine.describe()}"
        return self._report(
            "closed", generator, duration, wall_s, outcomes, before, after,
            keep_outcomes,
        )

    # ------------------------------------------------------------------
    def _report(
        self,
        mode: str,
        generator: str,
        duration: float,
        wall_s: float,
        outcomes: List[RequestOutcome],
        before: Dict[str, Any],
        after: Dict[str, Any],
        keep_outcomes: bool,
    ) -> LoadReport:
        return LoadReport(
            mode=mode,
            generator=generator,
            duration_s=duration,
            wall_s=wall_s,
            offered=len(outcomes),
            completed=sum(1 for o in outcomes if o.status == "done"),
            rejected=sum(1 for o in outcomes if o.status == "rejected"),
            failed=sum(1 for o in outcomes if o.status in ("failed", "error")),
            latencies_s=[o.latency_s for o in outcomes if o.latency_s is not None],
            lateness_s=[o.lateness_s for o in outcomes],
            metrics_delta=self._counter_delta(before, after),
            server_metrics=after,
            outcomes=list(outcomes) if keep_outcomes else [],
        )

    # ------------------------------------------------------------------
    def verify(
        self,
        report: LoadReport,
        sample: int = 3,
        engine: Optional[SimEngine] = None,
    ) -> LoadReport:
        """Byte-identity check of a sampled subset; annotates the report.

        Picks the first ``sample`` distinct configurations among the
        run's completed requests, fetches their results from the server
        by unit key, executes them on a local engine, and requires
        exact ``RunResult.to_dict()`` equality.
        """
        checked, ok = verify_identity(
            self.url,
            report.outcomes,
            sample=sample,
            engine=engine,
            client_factory=self._client_factory,
        )
        report.identity_checked = checked
        report.identity_ok = ok
        return report


def verify_identity(
    url: str,
    outcomes: Iterable[RequestOutcome],
    sample: int = 3,
    engine: Optional[SimEngine] = None,
    client_factory: Optional[Callable[[], ServiceClient]] = None,
) -> "tuple[int, Optional[bool]]":
    """Compare sampled served results against local engine execution.

    Returns ``(configs checked, all identical or None)`` — ``None``
    when there was nothing to check (no completed runs, or
    ``sample=0``).
    """
    from repro.service.jobs import JobError, parse_job_payload

    if sample <= 0:
        return 0, None
    client = (client_factory or (lambda: ServiceClient(url, retries=1)))()
    picked: Dict[str, SimulationConfig] = {}
    for outcome in outcomes:
        if outcome.status != "done" or outcome.payload is None:
            continue
        try:
            job = parse_job_payload(
                {k: v for k, v in outcome.payload.items() if k != "id"}
            )
        except JobError:
            continue
        for key, config in zip(outcome.unit_keys, job.configs):
            if key not in picked:
                picked[key] = config
            if len(picked) >= sample:
                break
        if len(picked) >= sample:
            break
    if not picked:
        return 0, None
    own_engine = engine is None
    engine = engine if engine is not None else SimEngine(fast=True)
    try:
        identical = True
        for key, config in picked.items():
            try:
                served = client.result(key)
            except ServiceError:
                identical = False
                continue
            local = engine.run(config)
            if served != local.to_dict():
                identical = False
    finally:
        if own_engine:
            engine.close()
    return len(picked), identical


def saturation_sweep(
    runner: LoadRunner,
    make_engine: Callable[[float], RequestEngine],
    rates: Sequence[float],
    duration: float,
    verify_sample: int = 3,
    engine: Optional[SimEngine] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> List[LoadReport]:
    """One open-loop point per offered rate: the saturation curve.

    ``make_engine(rate)`` builds the request engine for each point (a
    fresh engine per point keeps every point's stream reproducible in
    isolation).  Each point is identity-verified on ``verify_sample``
    configurations; a shared local ``engine`` makes repeated
    verification cheap (its LRU carries across points).
    """
    reports: List[LoadReport] = []
    for rate in rates:
        report = runner.open_loop(make_engine(rate), duration)
        runner.verify(report, sample=verify_sample, engine=engine)
        report.outcomes = []  # the sweep only keeps the reduced rows
        reports.append(report)
        if echo is not None:
            row = report.to_dict()
            echo(
                f"  offered {row['offered_per_s']:7.2f}/s -> achieved "
                f"{row['achieved_per_s']:7.2f}/s  p95 "
                f"{(row['latency_s']['p95'] or 0.0) * 1000:7.1f}ms  "
                f"429s {row['rejected_429']:3d}  identity "
                f"{row['identity']['ok']}"
            )
    return reports
