"""Load generation: service traffic as a first-class workload.

The :mod:`repro.loadgen` package drives a live ``repro serve`` endpoint
over real HTTP with controlled arrival processes, the way a production
traffic generator would — because "can the service absorb a diurnal
burst at 4x steady-state?" must be a measurable, regression-gated
question, not a hope.

The pieces (mirroring the classic request/engine/workload driver
split):

* :mod:`~repro.loadgen.base` — :class:`~repro.loadgen.base.Request`,
  the :class:`~repro.loadgen.base.RequestEngine` abstraction, rate
  schedules (constant, ``phases:``, ``diurnal:``) and the open-loop
  arrival processes (Poisson and deterministic pacing);
* :mod:`~repro.loadgen.synthetic` — seeded **static mixes** (weighted
  draws over run/sweep payloads across benchmarks x policies) and
  **dynamic** rate-scheduled streams;
* :mod:`~repro.loadgen.replay` — JSON-lines **session files**:
  recording generated streams, deriving sessions from a server's
  write-ahead journal, and replaying them with preserved inter-arrival
  gaps at a ``--speed`` multiplier;
* :mod:`~repro.loadgen.runner` — the open-loop and closed-loop
  drivers, per-request outcomes, saturation sweeps, and the sampled
  byte-identity check against a local engine;
* :mod:`~repro.loadgen.report` — human-readable curves and the
  ``loadgen`` section of the ``repro bench --service`` artifact;
* :mod:`~repro.loadgen.cli` — the ``repro loadgen`` subcommand.
"""

from .base import (
    DeterministicArrivals,
    PoissonArrivals,
    Request,
    RequestEngine,
    parse_rate_schedule,
    take_requests,
)
from .replay import ReplayEngine, read_session, record_from_journal, write_session
from .runner import LoadReport, LoadRunner, saturation_sweep
from .synthetic import MixEngine, StaticMix, parse_mix

__all__ = [
    "DeterministicArrivals",
    "LoadReport",
    "LoadRunner",
    "MixEngine",
    "PoissonArrivals",
    "ReplayEngine",
    "Request",
    "RequestEngine",
    "StaticMix",
    "parse_mix",
    "parse_rate_schedule",
    "read_session",
    "record_from_journal",
    "saturation_sweep",
    "take_requests",
    "write_session",
]
