"""Request, engine and arrival-process abstractions.

A :class:`Request` is one job submission: the JSON payload for
``POST /v1/jobs`` plus the offset (seconds from stream start) at which
an open-loop driver should send it.  A :class:`RequestEngine` produces
a stream of requests; the concrete engines live in
:mod:`~repro.loadgen.synthetic` (seeded mixes) and
:mod:`~repro.loadgen.replay` (recorded sessions).

**Open loop vs closed loop.**  An *open-loop* driver sends requests at
the times an external arrival process dictates, whether or not the
service keeps up — offered load is independent of service state, which
is what makes saturation measurable (a lagging service shows up as
request *lateness* and queue growth, not as a silently reduced offered
rate).  A *closed-loop* driver models N users who each wait for their
previous request before thinking and sending the next; offered load is
then throttled by service latency.  Real traffic is open-loop at the
edge; benchmarks that storm with closed loops systematically
understate overload behaviour, so both are first-class here.

**Rate schedules.**  Open-loop rates are time-varying functions
``rate(t)`` parsed from a small spec language that reuses the scenario
idiom (:mod:`repro.workloads.scenarios`):

* ``"25"`` — constant 25 requests/second;
* ``"phases:10+80@5"`` — piecewise-constant *bursty phases*: 10 r/s
  for 5 s, then 80 r/s for 5 s, cycling;
* ``"diurnal:5+40@60"`` — a smooth diurnal wave between 5 and 40 r/s
  with a 60 s period (one simulated "day").

Both arrival processes accept any schedule: :class:`PoissonArrivals`
draws a seeded inhomogeneous Poisson process (by thinning against the
schedule's peak rate), :class:`DeterministicArrivals` paces requests
evenly at the instantaneous rate.  Identical seed and schedule always
reproduce the identical arrival stream.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence

__all__ = [
    "ConstantRate",
    "DeterministicArrivals",
    "DiurnalRate",
    "PhasedRate",
    "PoissonArrivals",
    "RateSchedule",
    "Request",
    "RequestEngine",
    "parse_rate_schedule",
]


@dataclass(frozen=True)
class Request:
    """One job submission in a generated or recorded stream.

    Attributes:
        at_s: Scheduled send offset, seconds from stream start
            (open-loop drivers pace on it; closed-loop drivers ignore
            it).
        payload: The ``POST /v1/jobs`` body, exactly as it goes over
            the wire.
        tag: Short display label (e.g. ``"run:gcc/gated:150"``).
    """

    at_s: float
    payload: Dict[str, Any] = field(hash=False)
    tag: str = ""


class RequestEngine:
    """Produces a request stream (the ``ReqGenEngine`` of this driver).

    Subclasses implement :meth:`requests`; streams may be infinite
    (drivers cut them at the run duration) or finite (recorded
    sessions end).
    """

    def requests(self) -> Iterator[Request]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description for reports."""
        return type(self).__name__


# ----------------------------------------------------------------------
# Rate schedules
# ----------------------------------------------------------------------
class RateSchedule:
    """A time-varying offered rate, requests/second."""

    def rate(self, t: float) -> float:
        raise NotImplementedError

    def max_rate(self) -> float:
        """An upper bound on :meth:`rate` (thinning envelope)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def mean_rate(self, duration: float, steps: int = 1000) -> float:
        """The schedule's average rate over ``[0, duration)``.

        The offered-load figure a saturation curve plots against: for a
        constant schedule it is the rate itself; for phased/diurnal
        schedules it is the time average (midpoint rule).
        """
        if duration <= 0:
            return 0.0
        dt = duration / steps
        return sum(self.rate((i + 0.5) * dt) for i in range(steps)) / steps


@dataclass(frozen=True)
class ConstantRate(RateSchedule):
    """A fixed offered rate."""

    per_second: float

    def rate(self, t: float) -> float:
        return self.per_second

    def max_rate(self) -> float:
        return self.per_second

    def describe(self) -> str:
        return f"{self.per_second:g}/s"


@dataclass(frozen=True)
class PhasedRate(RateSchedule):
    """Piecewise-constant rates, each held for ``quantum`` seconds.

    The load-side twin of the ``phases:`` scenario family: the offered
    rate steps through the listed values in order and cycles, which is
    how bursts are expressed (``phases:10+100@5`` is a 10x burst every
    other 5 seconds).
    """

    rates: Sequence[float]
    quantum: float

    def rate(self, t: float) -> float:
        index = int(t / self.quantum) % len(self.rates)
        return self.rates[index]

    def max_rate(self) -> float:
        return max(self.rates)

    def describe(self) -> str:
        steps = "+".join(f"{rate:g}" for rate in self.rates)
        return f"phases:{steps}@{self.quantum:g}s"


@dataclass(frozen=True)
class DiurnalRate(RateSchedule):
    """A smooth wave between a low and a high rate.

    ``rate(t) = low + (high - low) * (1 - cos(2*pi*t/period)) / 2`` —
    the stream starts at the trough, peaks at half a period, and
    returns: one compressed "day" of traffic per period.
    """

    low: float
    high: float
    period: float

    def rate(self, t: float) -> float:
        swing = (1.0 - math.cos(2.0 * math.pi * t / self.period)) / 2.0
        return self.low + (self.high - self.low) * swing

    def max_rate(self) -> float:
        return max(self.low, self.high)

    def describe(self) -> str:
        return f"diurnal:{self.low:g}+{self.high:g}@{self.period:g}s"


def _parse_positive(text: str, what: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"{what} must be a number (got {text!r})") from None
    if not value > 0 or not math.isfinite(value):
        raise ValueError(f"{what} must be positive and finite (got {text!r})")
    return value


def parse_rate_schedule(text: str) -> RateSchedule:
    """Parse a rate spec: a number, ``phases:...@T`` or ``diurnal:...@T``.

    Raises:
        ValueError: for a malformed spec, echoing the scenario
            language's error style.
    """
    spec = text.strip()
    prefix, sep, rest = spec.partition(":")
    family = prefix.strip().lower() if sep else None
    if family == "phases":
        body, _, quantum_text = rest.partition("@")
        parts = [part.strip() for part in body.split("+") if part.strip()]
        if len(parts) < 2:
            raise ValueError(
                f"phases: rate schedules take at least two '+'-separated "
                f"rates (got {rest!r})"
            )
        rates = tuple(_parse_positive(part, "phases: rate") for part in parts)
        quantum = (
            _parse_positive(quantum_text, "phases: quantum") if quantum_text else 5.0
        )
        return PhasedRate(rates=rates, quantum=quantum)
    if family == "diurnal":
        body, _, period_text = rest.partition("@")
        parts = [part.strip() for part in body.split("+") if part.strip()]
        if len(parts) != 2:
            raise ValueError(
                f"diurnal: rate schedules take exactly low+high (got {rest!r})"
            )
        low = _parse_positive(parts[0], "diurnal: low rate")
        high = _parse_positive(parts[1], "diurnal: high rate")
        period = (
            _parse_positive(period_text, "diurnal: period") if period_text else 60.0
        )
        return DiurnalRate(low=low, high=high, period=period)
    if family is not None:
        raise ValueError(
            f"unknown rate schedule family {prefix!r}; expected a number, "
            f"'phases:...' or 'diurnal:...'"
        )
    return ConstantRate(_parse_positive(spec, "rate"))


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class ArrivalProcess:
    """Generates the offsets (seconds) at which open-loop requests go out."""

    def arrivals(self, duration: float) -> Iterator[float]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """A seeded (inhomogeneous) Poisson arrival process.

    Candidate arrivals are drawn at the schedule's peak rate and
    *thinned* to the instantaneous rate — the textbook exact sampler
    for time-varying Poisson processes, and reproducible: the same
    ``(schedule, seed)`` always yields the same offsets.
    """

    def __init__(self, schedule: RateSchedule, seed: int = 1) -> None:
        self.schedule = schedule
        self.seed = seed

    def arrivals(self, duration: float) -> Iterator[float]:
        rng = random.Random(self.seed)
        peak = self.schedule.max_rate()
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= duration:
                return
            if rng.random() * peak < self.schedule.rate(t):
                yield t

    def describe(self) -> str:
        return f"poisson({self.schedule.describe()}, seed={self.seed})"


class DeterministicArrivals(ArrivalProcess):
    """Evenly paced arrivals at the schedule's instantaneous rate.

    The metronome counterpart of :class:`PoissonArrivals`: the gap
    after an arrival at time ``t`` is ``1 / rate(t)``.  With no
    randomness the stream is trivially reproducible; it isolates
    queueing behaviour from arrival burstiness.
    """

    def __init__(self, schedule: RateSchedule) -> None:
        self.schedule = schedule

    def arrivals(self, duration: float) -> Iterator[float]:
        t = 0.0
        while True:
            t += 1.0 / self.schedule.rate(t)
            if t >= duration:
                return
            yield t

    def describe(self) -> str:
        return f"deterministic({self.schedule.describe()})"


def take_requests(engine: RequestEngine, duration: float) -> List[Request]:
    """Materialise an engine's stream up to ``duration`` seconds.

    The common driver prologue: recorded sessions simply end, infinite
    synthetic streams are cut at the horizon.
    """
    out: List[Request] = []
    for request in engine.requests():
        if request.at_s >= duration:
            break
        out.append(request)
    return out
