"""The ``repro`` command line interface.

Reproduce the paper from a shell::

    python -m repro run --benchmark gcc --dcache gated-predecode:threshold=150
    python -m repro run --benchmark gcc --dcache gated --l2-policy gated:threshold=500
    python -m repro sweep --dcache gated --workers 4 --benchmarks gcc,mesa,art
    python -m repro sweep --dcache gated --l2-policy on-demand --fast
    python -m repro run --benchmark mix:gcc+mcf@2000 --fast
    python -m repro experiment figure8 --json --benchmarks gcc,mesa
    python -m repro experiment l2sweep --fast
    python -m repro experiment --list
    python -m repro policies
    python -m repro bench --smoke --output BENCH_smoke.json
    python -m repro trace record --benchmark gcc --out gcc.trace.gz
    python -m repro run --benchmark trace:gcc.trace.gz
    python -m repro run --benchmark "mix:(phases:gcc+mcf@5000)*2+vortex@800"
    python -m repro run --benchmark fuzz:17 --fast
    python -m repro fuzz --budget 50 --seed-base 0 --report fuzz.json
    python -m repro regen-goldens
    python -m repro serve --port 8023 --workers 4 --fast --store runs/ --journal jobs.wal
    python -m repro submit --server http://127.0.0.1:8023 --benchmarks gcc,art --dcache gated
    python -m repro jobs --server http://127.0.0.1:8023
    python -m repro run --benchmark gcc --dcache gated --server http://127.0.0.1:8023
    python -m repro loadgen --server http://127.0.0.1:8023 --rate 20 --duration 5
    python -m repro loadgen --server http://127.0.0.1:8023 --sweep 5,10,20,40
    python -m repro trace --server http://127.0.0.1:8023 --out spans.json
    python -m repro profile --benchmark gcc --instructions 50000

Every subcommand accepts ``--json`` for machine-readable output; run and
sweep results are full :meth:`~repro.sim.metrics.RunResult.to_dict`
payloads, and engine-driven experiment payloads (``"uses_engine": true``)
carry the engine's underlying runs under ``"runs"``, so downstream
tooling can rebuild them with
:meth:`~repro.sim.metrics.RunResult.from_dict`.  ``--store DIR`` points
the engine at an on-disk result store so repeated invocations resume
instead of re-simulating.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.bench import run_from_args as _cmd_bench
from repro.bench import add_bench_arguments
from repro.circuits.technology import get_technology
from repro.core.registry import PolicySpec, get_policy_info, policy_names
from repro.experiments.registry import ExperimentOptions, experiment_names, get_experiment
from repro.experiments.report import jsonify as _jsonify
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimEngine
from repro.workloads.scenarios import validate_workload_name

__all__ = ["main", "build_parser"]


def _validate_user_input(benchmarks: Optional[List[str]], feature_size: Optional[int]) -> None:
    """Convert the domain lookups' KeyError into the CLI's ValueError path.

    The workload and technology tables raise KeyError (their documented
    contract); at the CLI boundary a bad benchmark name or node is user
    input and must exit 2 with a message, not a traceback.  Benchmark
    names validate through :func:`validate_workload_name`, so scenario
    (``mix:``/``phases:``) and ``trace:`` names are checked too —
    without building the workload twice per invocation.
    """
    try:
        for name in benchmarks or ():
            validate_workload_name(name)
        if feature_size is not None:
            get_technology(feature_size)
    except KeyError as error:
        raise ValueError(error.args[0]) from None


def _parse_benchmarks(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    names = [name.strip() for name in text.split(",") if name.strip()]
    return names or None


def _make_engine(args: argparse.Namespace) -> SimEngine:
    return SimEngine(
        workers=getattr(args, "workers", 1),
        store=getattr(args, "store", None),
        fast=getattr(args, "fast", False),
    )


def _make_config(args: argparse.Namespace, benchmark: Optional[str] = None) -> SimulationConfig:
    return SimulationConfig(
        benchmark=benchmark or args.benchmark,
        dcache=PolicySpec.parse(args.dcache),
        icache=PolicySpec.parse(args.icache),
        feature_size_nm=args.feature_size,
        subarray_bytes=args.subarray_bytes,
        n_instructions=args.instructions,
        seed=args.seed,
        l2=PolicySpec.parse(args.l2_policy),
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for parallel execution (default: 1, serial)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persist results in DIR and reuse them on later invocations",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help=(
            "execute on the batched fast-path kernel (several times faster, "
            "bit-identical results)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON on stdout"
    )
    parser.add_argument(
        "--server",
        metavar="URL",
        default=None,
        help=(
            "execute against a running `repro serve` instance instead of "
            "in-process (results are byte-identical); --workers/--store/"
            "--fast are then the server's settings"
        ),
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dcache",
        default="static",
        metavar="SPEC",
        help='L1D policy spec, e.g. "gated-predecode:threshold=150" (default: static)',
    )
    parser.add_argument(
        "--icache",
        default="static",
        metavar="SPEC",
        help='L1I policy spec, e.g. "gated:threshold=100" (default: static)',
    )
    parser.add_argument(
        "--l2-policy",
        "--l2",
        default="static",
        metavar="SPEC",
        help=(
            'unified-L2 policy spec, e.g. "gated:threshold=500" '
            "(default: static — the conventional L2)"
        ),
    )
    parser.add_argument("--feature-size", type=int, default=70, metavar="NM",
                        help="technology node in nm (default: 70)")
    parser.add_argument("--subarray-bytes", type=int, default=1024,
                        help="precharge-control granularity (default: 1024)")
    parser.add_argument("--instructions", type=int, default=20_000,
                        help="micro-ops to simulate per run (default: 20000)")
    parser.add_argument("--seed", type=int, default=1, help="workload seed (default: 1)")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction driver for Yang & Falsafi, 'Near-Optimal Precharging "
            "in High-Performance Nanoscale CMOS Caches' (MICRO-36, 2003)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="simulate one configuration")
    run.add_argument("--benchmark", default="gcc", help="benchmark name (default: gcc)")
    _add_config_arguments(run)
    _add_engine_arguments(run)

    sweep = subparsers.add_parser("sweep", help="run one configuration across benchmarks")
    sweep.add_argument(
        "--benchmarks",
        default=None,
        metavar="A,B,...",
        help="comma-separated benchmark names (default: all sixteen)",
    )
    _add_config_arguments(sweep)
    _add_engine_arguments(sweep)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "name",
        nargs="?",
        default=None,
        help=f"one of: {', '.join(experiment_names())}",
    )
    experiment.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    experiment.add_argument(
        "--benchmarks",
        default=None,
        metavar="A,B,...",
        help="benchmark subset (default: experiment-specific, usually all)",
    )
    experiment.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="micro-ops per run (default: experiment-specific)",
    )
    experiment.add_argument(
        "--feature-size", type=int, default=None, metavar="NM",
        help="technology node in nm (default: experiment-specific, usually 70)",
    )
    experiment.add_argument(
        "--l2-policy",
        "--l2",
        default=None,
        metavar="SPEC",
        help=(
            "force a unified-L2 policy spec onto every simulated "
            "configuration (default: experiment-specific, usually static)"
        ),
    )
    _add_engine_arguments(experiment)

    policies = subparsers.add_parser("policies", help="list registered precharge policies")
    policies.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON on stdout"
    )

    bench = subparsers.add_parser(
        "bench",
        help="run the performance harness and write a BENCH_*.json artifact",
    )
    add_bench_arguments(bench)

    trace = subparsers.add_parser(
        "trace",
        help="fetch a live service's span timeline as Chrome trace JSON, "
        "or record/inspect compressed .trace.gz micro-op traces",
    )
    trace.add_argument(
        "--server", metavar="URL", default=None,
        help="service base URL; fetches the span timeline (open the JSON "
        "in Perfetto / chrome://tracing)",
    )
    trace.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the trace JSON to PATH instead of stdout",
    )
    trace.add_argument(
        "--follow", action="store_true",
        help="keep polling for new spans until interrupted (with --out "
        "the file is rewritten each poll; otherwise spans print as lines)",
    )
    trace.add_argument(
        "--since", type=int, default=None, metavar="SEQ",
        help="only spans recorded after ring sequence number SEQ",
    )
    trace.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="poll interval for --follow in seconds (default: 1.0)",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=False)
    record = trace_commands.add_parser(
        "record", help="record a workload prefix to a trace file"
    )
    record.add_argument(
        "--benchmark",
        default="gcc",
        help="benchmark or scenario name to record (default: gcc)",
    )
    record.add_argument("--out", required=True, metavar="PATH",
                        help="destination trace file (*.trace.gz)")
    record.add_argument("--instructions", type=int, default=20_000,
                        help="micro-ops to record (default: 20000)")
    record.add_argument("--seed", type=int, default=1, help="workload seed (default: 1)")
    info = trace_commands.add_parser("info", help="show a trace file's metadata")
    info.add_argument("path", help="trace file to inspect")
    info.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON on stdout"
    )

    profile = subparsers.add_parser(
        "profile",
        help="attribute fast-path kernel wall time to pipeline stages "
        "(compile, quiet-skip, fetch, issue-scan, cache)",
    )
    profile.add_argument(
        "--benchmark", default="gcc",
        help="benchmark or scenario name (default: gcc)",
    )
    _add_config_arguments(profile)
    profile.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="aggregate the profile over N runs (default: 1)",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON on stdout",
    )

    fuzz = subparsers.add_parser(
        "fuzz",
        help=(
            "differentially fuzz the fast path against the reference "
            "kernel on seeded random scenarios"
        ),
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=25,
        help="number of seeded scenarios to run (default: 25)",
    )
    fuzz.add_argument(
        "--seed-base",
        type=int,
        default=0,
        help="first fuzz seed; scenarios use seed-base..seed-base+budget-1 "
        "(default: 0)",
    )
    fuzz.add_argument(
        "--depth",
        type=int,
        default=None,
        help="max nesting depth of generated scenarios (default: 3)",
    )
    fuzz.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="micro-ops per differential run (default: 2000)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=1, help="workload seed (default: 1)"
    )
    fuzz.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the JSON campaign report to PATH",
    )
    fuzz.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="write minimized reproducers of any mismatch into DIR "
        "(default: tests/fuzz_corpus when it exists, else disabled)",
    )
    fuzz.add_argument(
        "--json", action="store_true", help="emit the JSON report on stdout"
    )

    chaos = subparsers.add_parser(
        "chaos",
        help=(
            "run seeded fault-injection campaigns against a live service "
            "and assert the recovery invariants"
        ),
    )
    chaos.add_argument(
        "--budget",
        type=int,
        default=25,
        help="number of seeded chaos trials to run (default: 25)",
    )
    chaos.add_argument(
        "--seed-base",
        type=int,
        default=0,
        help="first trial seed; trials use seed-base..seed-base+budget-1 "
        "(default: 0)",
    )
    chaos.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="micro-ops per chaos unit (default: 1500)",
    )
    chaos.add_argument(
        "--kill9-every",
        type=int,
        default=5,
        help="every Nth trial runs the kill -9 matrix against a repro "
        "serve subprocess; 0 disables (default: 5)",
    )
    chaos.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="per-trial recovery deadline in seconds (default: 120)",
    )
    chaos.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the JSON campaign report to PATH",
    )
    chaos.add_argument(
        "--json", action="store_true", help="emit the JSON report on stdout"
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a live repro service with generated or replayed traffic",
    )
    from repro.loadgen.cli import add_loadgen_arguments

    add_loadgen_arguments(loadgen)

    serve = subparsers.add_parser(
        "serve",
        help="run the simulation job-queue service (HTTP, stdlib only)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8023,
                       help="TCP port; 0 picks an ephemeral one (default: 8023)")
    serve.add_argument("--workers", type=int, default=1,
                       help="engine worker processes per execution (default: 1)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="on-disk result store; strongly recommended — it "
                            "backs /v1/results and journal resume")
    serve.add_argument("--fast", action="store_true",
                       help="execute on the fast-path kernel (bit-identical)")
    serve.add_argument("--journal", metavar="PATH", default=None,
                       help="write-ahead job journal; a restarted server "
                            "resumes unfinished jobs from it")
    serve.add_argument("--queue-limit", type=int, default=256,
                       help="max live jobs before 429 (default: 256)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds to let the in-flight execution finish "
                            "on SIGTERM before cancelling it (default: 10)")
    serve.add_argument("--faults", metavar="SPEC", default=None,
                       help="install a deterministic fault plan, e.g. "
                            "'seed=7;engine.chunk=crash:p=0.5,max=1' "
                            "(testing only; see repro.faults)")
    serve.add_argument("--ready-file", metavar="PATH", default=None,
                       help="write the bound URL to PATH once listening "
                            "(for --port 0 under test harnesses)")

    submit = subparsers.add_parser(
        "submit",
        help="submit a run or sweep to a repro service and (by default) wait",
    )
    submit.add_argument("--benchmark", default=None,
                        help="single benchmark (submits a run job)")
    submit.add_argument("--benchmarks", default=None, metavar="A,B,...",
                        help="comma-separated benchmarks (submits a sweep "
                             "job; default when --benchmark is absent: all)")
    _add_config_arguments(submit)
    submit.add_argument("--server", metavar="URL", required=True,
                        help="service base URL, e.g. http://127.0.0.1:8023")
    submit.add_argument("--priority", type=int, default=0,
                        help="job priority; larger runs sooner (default: 0)")
    submit.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="server-side wall-clock budget for the job")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return without waiting")
    submit.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON on stdout")

    jobs = subparsers.add_parser("jobs", help="list a repro service's jobs")
    jobs.add_argument("--server", metavar="URL", required=True,
                      help="service base URL")
    jobs.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON on stdout")

    result = subparsers.add_parser(
        "result", help="fetch one result from a repro service by job id or key"
    )
    result.add_argument("id", help="a job id (job-...) or canonical result key")
    result.add_argument("--server", metavar="URL", required=True,
                        help="service base URL")
    result.add_argument("--json", action="store_true",
                        help="emit full RunResult JSON instead of summaries")

    regen = subparsers.add_parser(
        "regen-goldens",
        help="recompute the golden experiment snapshots under tests/",
    )
    regen.add_argument(
        "--dir",
        default="tests/experiments/goldens",
        metavar="DIR",
        help="golden directory (default: tests/experiments/goldens)",
    )
    regen.add_argument(
        "--reference",
        action="store_true",
        help="compute on the reference path instead of the fast path "
        "(results are bit-identical; this is a cross-check knob)",
    )

    return parser


def _remote_engine(args: argparse.Namespace):
    """A SimEngine-shaped facade over ``--server URL``."""
    from repro.service.client import RemoteEngine, ServiceClient

    return RemoteEngine(ServiceClient(args.server))


def _cmd_run(args: argparse.Namespace) -> int:
    _validate_user_input([args.benchmark], args.feature_size)
    engine = _remote_engine(args) if args.server else _make_engine(args)
    result = engine.run(_make_config(args))
    if args.json:
        print(json.dumps(result.to_dict()))
    else:
        print(result.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    benchmarks = _parse_benchmarks(args.benchmarks)
    _validate_user_input(benchmarks, args.feature_size)
    engine = _remote_engine(args) if args.server else _make_engine(args)
    results = engine.sweep(
        _make_config(args, benchmark="gcc"),
        benchmarks=benchmarks,
        workers=args.workers,
    )
    if args.json:
        print(json.dumps({name: run.to_dict() for name, run in results.items()}))
    else:
        for run in results.values():
            print(run.summary())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.list or args.name is None:
        if args.json:
            payload = {}
            for name in experiment_names():
                experiment = get_experiment(name)
                payload[name] = {
                    "title": experiment.title,
                    "description": experiment.description,
                    "uses_engine": experiment.uses_engine,
                    "consumes": list(experiment.consumes),
                }
            print(json.dumps(payload))
        else:
            for name in experiment_names():
                experiment = get_experiment(name)
                print(f"{name:12s} {experiment.title}")
                if experiment.description:
                    print(f"{'':12s}   {experiment.description}")
        return 0
    experiment = get_experiment(args.name)
    benchmarks = _parse_benchmarks(args.benchmarks)
    _validate_user_input(benchmarks, args.feature_size)
    engine = _remote_engine(args) if args.server else _make_engine(args)
    options = ExperimentOptions(
        benchmarks=tuple(benchmarks) if benchmarks else None,
        n_instructions=args.instructions,
        feature_size_nm=args.feature_size,
        l2_policy=args.l2_policy,
    )
    if args.l2_policy is not None:
        # Surface unknown policy names / parameters as clean exit-2
        # errors before any simulation starts.
        options.resolved_l2()
    if (args.workers != 1 or args.store or args.server) and not experiment.uses_engine:
        print(
            f"repro: note: experiment {experiment.name!r} does not run through "
            "the engine; --workers/--store/--server have no effect",
            file=sys.stderr,
        )
    supplied = {
        "benchmarks": options.benchmarks is not None,
        "n_instructions": options.n_instructions is not None,
        "feature_size_nm": options.feature_size_nm is not None,
        "l2_policy": options.l2_policy is not None,
    }
    flag_names = {
        "benchmarks": "--benchmarks",
        "n_instructions": "--instructions",
        "feature_size_nm": "--feature-size",
        "l2_policy": "--l2-policy",
    }
    ignored = [
        flag_names[field]
        for field, given in supplied.items()
        if given and field not in experiment.consumes
    ]
    if ignored:
        print(
            f"repro: note: experiment {experiment.name!r} ignores "
            + "/".join(ignored),
            file=sys.stderr,
        )
    result = experiment.run(engine, options)
    if args.json:
        payload = {
            "experiment": experiment.name,
            "title": experiment.title,
            "options": _jsonify(options),
            "uses_engine": experiment.uses_engine,
            "result": _jsonify(result),
            "runs": [run.to_dict() for run in engine.cached_results()],
        }
        print(json.dumps(payload))
    else:
        print(experiment.format(result))
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    if args.json:
        payload = {}
        for name in policy_names():
            info = get_policy_info(name)
            payload[name] = {
                "defaults": _jsonify(dict(info.defaults)),
                "aliases": list(info.aliases),
                "scheduler_extra_latency": info.scheduler_extra_latency,
                "description": info.description,
            }
        print(json.dumps(payload))
    else:
        for name in policy_names():
            info = get_policy_info(name)
            params = ", ".join(f"{k}={v!r}" for k, v in info.defaults.items()) or "-"
            print(f"{name:16s} {info.description}")
            print(f"{'':16s}   params: {params}")
            if info.aliases:
                print(f"{'':16s}   aliases: {', '.join(info.aliases)}")
            if info.scheduler_extra_latency:
                print(
                    f"{'':16s}   scheduler extra latency: "
                    f"{info.scheduler_extra_latency} cycle(s)"
                )
    return 0


def _write_span_trace(args: argparse.Namespace, payload: dict) -> None:
    text = json.dumps(payload, indent=1)
    if args.out is None:
        print(text)
    else:
        from pathlib import Path

        try:
            Path(args.out).write_text(text + "\n")
        except OSError as error:
            raise ValueError(f"cannot write {args.out}: {error}") from None


def _trace_timeline(args: argparse.Namespace) -> int:
    """``repro trace --server URL``: the live span timeline as Chrome JSON."""
    import time

    client = _client(args)
    payload = client.trace(since=args.since)
    if not args.follow:
        _write_span_trace(args, payload)
        return 0
    events = list(payload.get("traceEvents", []))
    last_seq = payload.get("reproLastSeq", 0)
    dropped = payload.get("reproDropped", 0)

    def emit(new_events: list) -> None:
        if args.out is not None:
            merged = dict(payload)
            merged["traceEvents"] = events
            merged["reproLastSeq"] = last_seq
            merged["reproDropped"] = dropped
            _write_span_trace(args, merged)
            return
        for event in new_events:
            span_args = event.get("args", {})
            print(
                f"{event.get('ts', 0) / 1e6:14.3f}s "
                f"{event.get('dur', 0) / 1e3:10.3f}ms "
                f"{event.get('name', '?'):12s} "
                f"trace={span_args.get('trace_id', '-')}",
                flush=True,
            )

    try:
        emit(events)
        while True:
            time.sleep(args.interval)
            update = client.trace(since=last_seq)
            new_events = update.get("traceEvents", [])
            events.extend(new_events)
            last_seq = update.get("reproLastSeq", last_seq)
            dropped = update.get("reproDropped", dropped)
            emit(new_events)
    except KeyboardInterrupt:
        return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.tracefile import read_trace_meta, record_benchmark

    if args.trace_command is None:
        if args.server is None:
            raise ValueError(
                "repro trace needs --server URL (live span timeline) or a "
                "subcommand: record, info"
            )
        return _trace_timeline(args)
    if args.trace_command == "record":
        _validate_user_input([args.benchmark], None)
        try:
            count = record_benchmark(
                args.out, args.benchmark, args.instructions, seed=args.seed
            )
        except OSError as error:
            # An unwritable destination is user input, not a bug.
            raise ValueError(f"cannot write {args.out}: {error}") from None
        print(f"recorded {count} micro-ops of {args.benchmark!r} to {args.out}")
        return 0
    try:
        meta = read_trace_meta(args.path)
    except OSError as error:
        # Missing or unreadable-gzip paths exit 2 like every bad input.
        raise ValueError(f"cannot read {args.path}: {error}") from None
    if args.json:
        print(json.dumps(meta, sort_keys=True))
    else:
        for key in sorted(meta):
            print(f"{key:12s} {meta[key]}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.obs import profile as obs_profile
    from repro.sim.fastpath import execute_run_fast

    if args.repeat < 1:
        raise ValueError("--repeat must be positive")
    _validate_user_input([args.benchmark], args.feature_size)
    config = _make_config(args)
    obs_profile.install()
    try:
        wall_start = perf_counter()
        for _ in range(args.repeat):
            execute_run_fast(config)
        wall_s = perf_counter() - wall_start
        snapshot = obs_profile.snapshot(reset=True)
    finally:
        obs_profile.clear()
    if snapshot is None:  # pragma: no cover - install() above guarantees it
        snapshot = {"runs": 0, "phases": {}}
    phases = snapshot["phases"]
    attributed = sum(
        entry["seconds"] for name, entry in phases.items() if name != "cache"
    )
    payload = {
        "benchmark": args.benchmark,
        "instructions": args.instructions,
        "runs": snapshot["runs"],
        "wall_s": round(wall_s, 6),
        "attributed_s": round(attributed, 6),
        "phases": phases,
    }
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(
        f"kernel profile: {args.benchmark}, {args.instructions} "
        f"instruction(s) x {snapshot['runs']} run(s)"
    )
    print(f"{'phase':12s} {'seconds':>10s} {'% wall':>8s} {'events':>10s}")
    for name in obs_profile.PHASES:
        entry = phases.get(name, {"seconds": 0.0, "events": 0})
        share = 100.0 * entry["seconds"] / wall_s if wall_s > 0 else 0.0
        print(
            f"{name:12s} {entry['seconds']:10.6f} {share:7.1f}% "
            f"{entry['events']:10d}"
        )
    print(f"{'wall':12s} {wall_s:10.6f} {100.0:7.1f}%")
    print(
        "note: cache time also lies inside the fetch/issue-scan phases "
        "(hierarchy accesses happen there); the other phases are disjoint."
    )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fuzz import (
        DEFAULT_FUZZ_INSTRUCTIONS,
        DEFAULT_CORPUS_DIR,
        run_campaign,
    )
    from repro.workloads.fuzzgen import DEFAULT_FUZZ_DEPTH, MAX_FUZZ_DEPTH

    if args.budget < 1:
        raise ValueError("--budget must be positive")
    if args.seed_base < 0:
        raise ValueError("--seed-base must be non-negative")
    depth = DEFAULT_FUZZ_DEPTH if args.depth is None else args.depth
    if not 1 <= depth <= MAX_FUZZ_DEPTH:
        raise ValueError(f"--depth must be between 1 and {MAX_FUZZ_DEPTH}")
    if args.corpus is not None:
        corpus_dir: Optional[Path] = Path(args.corpus)
    elif DEFAULT_CORPUS_DIR.is_dir():
        corpus_dir = DEFAULT_CORPUS_DIR
    else:
        corpus_dir = None

    def progress(result) -> None:
        if args.json:
            return
        status = "ok" if result.matched else "MISMATCH"
        line = f"{result.name:16s} {status:8s} {result.canonical}"
        if result.reproducer is not None:
            line += f"\n{'':16s} minimized: {result.reproducer}"
        if result.corpus_path is not None:
            line += f"\n{'':16s} corpus:    {result.corpus_path}"
        print(line, flush=True)

    report = run_campaign(
        budget=args.budget,
        seed_base=args.seed_base,
        depth=depth,
        n_instructions=(
            DEFAULT_FUZZ_INSTRUCTIONS
            if args.instructions is None
            else args.instructions
        ),
        workload_seed=args.seed,
        corpus_dir=corpus_dir,
        progress=progress,
    )
    if args.report is not None:
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
    if args.json:
        print(json.dumps(report))
    else:
        print(
            f"fuzz: {report['budget']} scenario(s), "
            f"{report['mismatches']} mismatch(es)"
        )
    return 1 if report["mismatches"] else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.chaos import DEFAULT_CHAOS_INSTRUCTIONS, run_campaign

    if args.budget < 1:
        raise ValueError("--budget must be positive")
    if args.seed_base < 0:
        raise ValueError("--seed-base must be non-negative")
    if args.kill9_every < 0:
        raise ValueError("--kill9-every must be non-negative")
    if args.timeout <= 0:
        raise ValueError("--timeout must be positive")

    def progress(trial) -> None:
        if args.json:
            return
        status = "ok" if trial.ok else f"{len(trial.violations)} VIOLATION(S)"
        plan = trial.plan if trial.plan is not None else "kill -9"
        print(
            f"seed {trial.seed:<5d} {trial.kind:6s} {status:16s} "
            f"{trial.duration_s:6.1f}s  {plan}",
            flush=True,
        )
        for violation in trial.violations:
            print(f"{'':13s} {violation}", flush=True)
        if trial.trace_ids:
            ids = ", ".join(
                f"{job}={tid}" for job, tid in sorted(trial.trace_ids.items())
            )
            print(f"{'':13s} trace ids: {ids}", flush=True)

    report = run_campaign(
        budget=args.budget,
        seed_base=args.seed_base,
        n_instructions=(
            DEFAULT_CHAOS_INSTRUCTIONS
            if args.instructions is None
            else args.instructions
        ),
        kill9_every=args.kill9_every,
        timeout_s=args.timeout,
        progress=progress,
    )
    if args.report is not None:
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
    if args.json:
        print(json.dumps(report))
    else:
        print(
            f"chaos: {report['budget']} trial(s), "
            f"{report['verified_results']} result(s) verified identical, "
            f"{report['violations']} invariant violation(s)"
        )
    return 1 if report["violations"] else 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen.cli import run_from_args as loadgen_run

    return loadgen_run(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.service.journal import JournalLocked
    from repro.service.server import ServiceServer

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if args.faults is not None:
        from repro import faults

        try:
            faults.install(args.faults)
        except ValueError as error:
            raise ValueError(f"bad --faults spec: {error}") from None
    engine = SimEngine(workers=args.workers, store=args.store, fast=args.fast)
    try:
        server = ServiceServer(
            engine=engine,
            host=args.host,
            port=args.port,
            queue_limit=args.queue_limit,
            journal=args.journal,
        )
    except JournalLocked as error:
        raise ValueError(str(error)) from None
    except OSError as error:
        # An unbindable address is user input, not a bug.
        raise ValueError(f"cannot bind {args.host}:{args.port}: {error}") from None
    server.serve_forever(
        drain_timeout=args.drain_timeout, ready_file=args.ready_file
    )
    return 0


def _client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.server)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.sim.metrics import RunResult

    if args.benchmark is not None and args.benchmarks is not None:
        raise ValueError("pass --benchmark (run job) or --benchmarks (sweep job), not both")
    benchmarks = _parse_benchmarks(args.benchmarks)
    _validate_user_input(
        [args.benchmark] if args.benchmark else benchmarks, args.feature_size
    )
    client = _client(args)
    if args.benchmark is not None:
        config = _make_config(args)
        receipt = client.submit_run(
            config, priority=args.priority, timeout_s=args.timeout
        )
        names = [args.benchmark]
    else:
        config = _make_config(args, benchmark="gcc")
        receipt = client.submit_sweep(
            config,
            benchmarks=benchmarks,
            priority=args.priority,
            timeout_s=args.timeout,
        )
        names = benchmarks or _all_benchmarks()
    if args.no_wait:
        if args.json:
            print(json.dumps(receipt))
        else:
            print(
                f"submitted {receipt['id']} ({receipt['status']}; "
                f"{len(receipt['units'])} unit(s), {receipt['coalesced']} "
                f"coalesced, {receipt['cached']} cached)"
            )
        return 0
    job = client.wait(receipt["id"])
    payloads = client.collect(receipt, job)
    if args.json:
        if args.benchmark is not None:
            print(json.dumps(payloads[0]))
        else:
            print(json.dumps(dict(zip(names, payloads))))
    else:
        for payload in payloads:
            print(RunResult.from_dict(payload).summary())
    return 0


def _all_benchmarks() -> List[str]:
    from repro.workloads.characteristics import benchmark_names

    return benchmark_names()


def _cmd_jobs(args: argparse.Namespace) -> int:
    jobs = _client(args).jobs()
    if args.json:
        print(json.dumps(jobs))
    else:
        if not jobs:
            print("no jobs")
        for job in jobs:
            line = (
                f"{job['id']:24s} {job['kind']:6s} {job['status']:10s} "
                f"prio={job['priority']:+d} units={job['units']}"
            )
            if job.get("error"):
                line += f"  error: {job['error']}"
            print(line)
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    from repro.sim.metrics import RunResult

    client = _client(args)
    if args.id.startswith("job-"):
        job = client.wait(args.id, raise_on_failure=False)
        if job["status"] != "done":
            raise ValueError(
                f"job {args.id} is {job['status']}"
                + (f": {job['error']}" if job.get("error") else "")
            )
        payloads = [
            client.result(key) if key not in job.get("results", {})
            else job["results"][key]
            for key in job["unit_keys"]
        ]
    else:
        payloads = [client.result(args.id)]
    if args.json:
        print(json.dumps(payloads if len(payloads) > 1 else payloads[0]))
    else:
        for payload in payloads:
            print(RunResult.from_dict(payload).summary())
    return 0


def _cmd_regen_goldens(args: argparse.Namespace) -> int:
    from repro.experiments.goldens import write_goldens

    written = write_goldens(args.dir, fast=not args.reference)
    for path in written:
        print(f"wrote {path}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "experiment": _cmd_experiment,
    "policies": _cmd_policies,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "fuzz": _cmd_fuzz,
    "chaos": _cmd_chaos,
    "loadgen": _cmd_loadgen,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "result": _cmd_result,
    "regen-goldens": _cmd_regen_goldens,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` (returns an exit status)."""
    from repro.service.client import JobFailed, ServiceError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into head); not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    except (ServiceError, JobFailed) as error:
        # A service-side rejection (bad spec, queue full, unreachable
        # server, failed job) is operational, not a bug: exit 2 with the
        # server's message, mirroring local validation errors.
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        # Registry/config lookups raise ValueError for bad user input;
        # anything else (including KeyError) is a bug and should traceback.
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
