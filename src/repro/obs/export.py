"""Exporters: Chrome-trace-event JSON and Prometheus text exposition.

:func:`chrome_trace` turns recorded spans into the Chrome trace event
format (JSON object form) that ``chrome://tracing`` and Perfetto load
directly: one complete (``"ph": "X"``) event per span, microsecond
timestamps, span attributes under ``args``.  Extra top-level keys
(``reproLastSeq``, ``reproDropped``) ride along for incremental
collection — viewers ignore unknown keys by design.

:func:`prometheus_text` renders a ``/v1/metrics`` JSON document as
Prometheus text exposition format v0.0.4: every counter as
``repro_<name>_total``, the service gauges, per-priority queue depth as
a labelled gauge, and each histogram as the canonical cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` triple.  Histogram payloads
use the shape :class:`repro.service.telemetry.Histogram` emits:
``{"bounds": [...], "counts": [...], "sum": s, "count": n}`` with one
more count than bounds (the +Inf bucket), *non*-cumulative — the
cumulative sums happen here, which is what makes bucket monotonicity a
pure exporter property the tests can pin.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .trace import Span

__all__ = ["chrome_trace", "prometheus_text"]

#: /v1/metrics scalar fields exported as gauges: (json key, prom name).
_GAUGES = (
    ("uptime_s", "repro_uptime_seconds"),
    ("queue_depth", "repro_queue_depth"),
    ("pending_units", "repro_pending_units"),
    ("jobs_per_s", "repro_jobs_per_second"),
    ("jobs_per_s_recent", "repro_jobs_per_second_recent"),
    ("rejected_per_s_recent", "repro_rejected_per_second_recent"),
    ("coalesce_rate", "repro_coalesce_rate"),
    ("engine_cache_hit_rate", "repro_engine_cache_hit_rate"),
    ("pool_rebuilds", "repro_pool_rebuilds"),
    ("store_corrupt_entries", "repro_store_corrupt_entries"),
    ("quarantined_units", "repro_quarantined_units"),
)

#: /v1/metrics histogram names -> Prometheus metric names.
_HISTOGRAMS = (
    ("job_latency_s", "repro_job_latency_seconds",
     "End-to-end job latency, submit to terminal state."),
    ("queue_wait_s", "repro_queue_wait_seconds",
     "Job wait in the priority queue before the scheduler claimed it."),
    ("unit_exec_s", "repro_unit_exec_seconds",
     "Per-unit engine execution time (batch time / units in batch)."),
    ("chunk_exec_s", "repro_chunk_exec_seconds",
     "Engine chunk wall time from recent spans (windowed)."),
)


def chrome_trace(
    spans: Iterable[Span],
    last_seq: int = 0,
    dropped: int = 0,
) -> Dict[str, Any]:
    """Spans as a Chrome-trace JSON object (Perfetto-loadable)."""
    events: List[Dict[str, Any]] = []
    for span in spans:
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": "repro",
            "ts": round(span.start_s * 1e6, 3),
            "dur": round(span.duration_s * 1e6, 3),
            "pid": span.pid,
            "tid": span.tid,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "reproLastSeq": last_seq,
        "reproDropped": dropped,
    }


def _num(value: Any) -> str:
    """A Prometheus sample value (int unchanged, float via repr)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _bound_label(bound: float) -> str:
    return "%g" % bound


def _histogram_lines(
    name: str, help_text: str, payload: Dict[str, Any]
) -> List[str]:
    bounds: Sequence[float] = payload.get("bounds", ())
    counts: Sequence[int] = payload.get("counts", ())
    if len(counts) != len(bounds) + 1:
        return []
    lines = [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} histogram",
    ]
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        lines.append(
            f'{name}_bucket{{le="{_bound_label(bound)}"}} {cumulative}'
        )
    cumulative += counts[-1]
    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {_num(float(payload.get('sum', 0.0)))}")
    lines.append(f"{name}_count {cumulative}")
    return lines


def prometheus_text(metrics: Dict[str, Any]) -> str:
    """A ``/v1/metrics`` JSON document as Prometheus text exposition."""
    lines: List[str] = []

    counters = metrics.get("counters", {})
    for key in sorted(counters):
        name = f"repro_{key}_total"
        lines.append(f"# HELP {name} Service counter {key}.")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_num(counters[key])}")

    for key, name in _GAUGES:
        value = metrics.get(key)
        if value is None:
            continue
        lines.append(f"# HELP {name} Service gauge {key}.")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_num(value)}")

    draining = metrics.get("draining")
    if draining is not None:
        lines.append("# HELP repro_draining Whether the server is draining.")
        lines.append("# TYPE repro_draining gauge")
        lines.append(f"repro_draining {_num(bool(draining))}")

    by_priority = metrics.get("queue_depth_by_priority")
    if by_priority:
        name = "repro_queue_depth_by_priority"
        lines.append(f"# HELP {name} Queue depth per priority class.")
        lines.append(f"# TYPE {name} gauge")
        for priority in sorted(by_priority):
            label = json.dumps(str(priority))
            lines.append(
                f"{name}{{priority={label}}} {_num(by_priority[priority])}"
            )

    histograms = metrics.get("histograms", {})
    for key, name, help_text in _HISTOGRAMS:
        payload: Optional[Dict[str, Any]] = histograms.get(key)
        if payload:
            lines.extend(_histogram_lines(name, help_text, payload))

    return "\n".join(lines) + "\n"
