"""``repro.obs`` — observability: tracing, profiling, exporters, logs.

Four small modules, all sharing the :mod:`repro.faults` discipline of
being fast no-ops until armed:

* :mod:`repro.obs.trace` — span model, trace-context propagation
  (``X-Repro-Trace``), and the bounded in-process span ring;
* :mod:`repro.obs.export` — Chrome-trace-event (Perfetto) JSON and
  Prometheus text exposition;
* :mod:`repro.obs.profile` — the opt-in kernel phase profiler
  (compile / quiet-skip / fetch / issue-scan / cache attribution);
* :mod:`repro.obs.log` — structured JSON log lines carrying trace ids.

See ``docs/observability.md`` for the end-to-end walkthrough.
"""

from . import export, log, profile, trace
from .trace import (
    HEADER,
    Span,
    SpanRecorder,
    TraceContext,
    format_header,
    new_span_id,
    new_trace_id,
    parse_header,
    record_span,
)

__all__ = [
    "HEADER",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "export",
    "format_header",
    "log",
    "new_span_id",
    "new_trace_id",
    "parse_header",
    "profile",
    "record_span",
    "trace",
]
