"""Kernel phase profiler: wall-time attribution inside the fast path.

Answers "where did the chunk's time go?" by attributing
:func:`repro.sim.fastpath.execute_run_fast` wall time to five phases:

* ``compile`` — workload compilation into columnar arrays (upfront
  :func:`compiled_trace_for` plus mid-fetch ``trace.ensure`` growth);
* ``quiet_skip`` — the quiet-region wake computation and jump;
* ``fetch`` — the windowed fetch stage (minus compile growth);
* ``issue_scan`` — the incremental scheduler scan + execute stage;
* ``cache`` — time inside :meth:`_FastCache.access`, *outermost* calls
  only (an L1 miss recursing into the L2 is one cache interval, not
  two), measured inclusively — cache time is a subset of the fetch and
  issue phases that trigger the accesses.

The discipline mirrors :mod:`repro.faults`: a module-global
``_ACTIVE`` profile, ``None`` in production, so every hook in the
kernel is a local/attribute load plus an ``is None`` branch when
disarmed — the bit-identity and `repro bench` gates run with it off and
see no measurable overhead.  Arming is explicit (:func:`install`, the
``repro profile`` command) or by environment — ``REPRO_PROFILE=1`` —
read at import so forked pool workers and subprocess servers arm too.

Accumulation is plain attribute addition without a lock: each process
profiles its own kernel executions, and the kernel is single-threaded
within a process.  Workers snapshot-and-reset per chunk and ship the
result back alongside chunk results, so phase times surface as
``engine.chunk`` span attributes.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

__all__ = [
    "ENV_VAR",
    "PHASES",
    "PhaseProfile",
    "active",
    "clear",
    "install",
    "snapshot",
]

#: Environment variable arming the profiler in subprocesses.
ENV_VAR = "REPRO_PROFILE"

#: Phase names, in presentation order.
PHASES = ("compile", "quiet_skip", "fetch", "issue_scan", "cache")


class PhaseProfile:
    """Per-process accumulated phase times (seconds) and event counts."""

    __slots__ = (
        "compile_s", "quiet_skip_s", "fetch_s", "issue_scan_s", "cache_s",
        "compiles", "quiet_skips", "fetch_rounds", "issue_scans",
        "cache_accesses", "cache_depth", "runs",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compile_s = 0.0
        self.quiet_skip_s = 0.0
        self.fetch_s = 0.0
        self.issue_scan_s = 0.0
        self.cache_s = 0.0
        self.compiles = 0
        self.quiet_skips = 0
        self.fetch_rounds = 0
        self.issue_scans = 0
        self.cache_accesses = 0
        #: Reentrancy depth inside _FastCache.access (L1 -> L2 nesting);
        #: only the outermost interval accumulates.
        self.cache_depth = 0
        self.runs = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "phases": {
                "compile": {"seconds": self.compile_s,
                            "events": self.compiles},
                "quiet_skip": {"seconds": self.quiet_skip_s,
                               "events": self.quiet_skips},
                "fetch": {"seconds": self.fetch_s,
                          "events": self.fetch_rounds},
                "issue_scan": {"seconds": self.issue_scan_s,
                               "events": self.issue_scans},
                "cache": {"seconds": self.cache_s,
                          "events": self.cache_accesses},
            },
        }

    def merge(self, other: Dict[str, Any]) -> None:
        """Fold another profile's ``as_dict()`` payload into this one."""
        self.runs += int(other.get("runs", 0))
        phases = other.get("phases", {})
        for name, attr_s, attr_n in (
            ("compile", "compile_s", "compiles"),
            ("quiet_skip", "quiet_skip_s", "quiet_skips"),
            ("fetch", "fetch_s", "fetch_rounds"),
            ("issue_scan", "issue_scan_s", "issue_scans"),
            ("cache", "cache_s", "cache_accesses"),
        ):
            entry = phases.get(name)
            if entry:
                setattr(self, attr_s,
                        getattr(self, attr_s) + float(entry.get("seconds", 0.0)))
                setattr(self, attr_n,
                        getattr(self, attr_n) + int(entry.get("events", 0)))


_ACTIVE: Optional[PhaseProfile] = None


def install() -> PhaseProfile:
    """Arm the profiler in this process (fresh counters); returns it."""
    global _ACTIVE
    profile = PhaseProfile()
    _ACTIVE = profile
    return profile


def clear() -> None:
    """Disarm the profiler in this process (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[PhaseProfile]:
    """The armed profile, or ``None`` — the kernel's single global read."""
    return _ACTIVE


def snapshot(reset: bool = True) -> Optional[Dict[str, Any]]:
    """The armed profile's ``as_dict()`` (optionally resetting), or None."""
    profile = _ACTIVE
    if profile is None:
        return None
    payload = profile.as_dict()
    if reset:
        profile.reset()
    return payload


# Subprocess activation: forked pool workers and `repro serve` children
# arm from the environment at import, like repro.faults.
if os.environ.get(ENV_VAR):
    install()
