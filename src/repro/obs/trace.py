"""Span-based tracing: ids, propagation context, and the span ring.

The model is deliberately small — a :class:`Span` is one named, timed
interval tagged with a ``trace_id`` shared by every span of one request
and a ``span_id``/``parent_id`` pair forming the tree.  Spans are
collected in a bounded in-process :class:`SpanRecorder` ring buffer;
when the ring is full the oldest spans fall off (``dropped`` counts
them) and every recorded span carries a monotonically increasing
``seq``, so ``spans(since=seq)`` supports incremental collection
(``repro trace --follow``).

Like :mod:`repro.faults`, recording is a fast no-op until armed: with no
recorder installed :func:`record_span` returns after one global load and
one ``is None`` test, so production code can call it unconditionally.

Trace context crosses the HTTP boundary in one header::

    X-Repro-Trace: <trace_id>-<span_id>-<t_ms>

where ``t_ms`` is the sender's epoch-millisecond send time — the server
uses it to record an honest ``client.submit`` root span without a
client-side collector.  On one host (the CI topology) the clocks are
the same clock; across hosts the root span absorbs the clock skew and
the server-side children remain exact.

Inside the server process the *current* context travels through a
thread-local (:func:`set_current` / :func:`get_current`): the scheduler
sets it around engine calls so engine chunk spans can parent themselves
to the unit-execution span without threading arguments through every
layer.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "HEADER",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "clear_current",
    "clear_recorder",
    "format_header",
    "get_current",
    "install_recorder",
    "new_span_id",
    "new_trace_id",
    "parse_header",
    "record_span",
    "recorder",
    "set_current",
]

#: The propagation header.
HEADER = "X-Repro-Trace"

#: Default ring capacity: enough for several loadgen minutes of spans.
DEFAULT_CAPACITY = 8192


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span id (32 random bits)."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class TraceContext:
    """One hop of propagated context (the parsed header)."""

    trace_id: str
    span_id: str
    t_ms: int

    def header(self) -> str:
        return format_header(self.trace_id, self.span_id, self.t_ms)


def format_header(trace_id: str, span_id: str, t_ms: int) -> str:
    """Encode ``X-Repro-Trace`` header value."""
    return f"{trace_id}-{span_id}-{int(t_ms)}"


def parse_header(value: Optional[str]) -> Optional[TraceContext]:
    """Decode a header value; ``None`` for anything malformed.

    A bad header must never fail a request — tracing is advisory.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 3:
        return None
    trace_id, span_id, raw_ms = parts
    if not trace_id or not span_id:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
        t_ms = int(raw_ms)
    except ValueError:
        return None
    if t_ms < 0:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id, t_ms=t_ms)


@dataclass
class Span:
    """One named, timed interval of one trace."""

    name: str
    trace_id: str
    span_id: str
    start_s: float
    duration_s: float
    parent_id: Optional[str] = None
    pid: int = 0
    tid: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Recorder-assigned, monotonically increasing; 0 until recorded.
    seq: int = 0

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "seq": self.seq,
        }
        if self.parent_id:
            payload["parent_id"] = self.parent_id
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload


class SpanRecorder:
    """A bounded, thread-safe ring of finished spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped = 0

    def record(self, span: Span) -> int:
        """Append ``span`` (evicting the oldest at capacity); its seq."""
        with self._lock:
            self._seq += 1
            span.seq = self._seq
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)
            return span.seq

    def spans(self, since: Optional[int] = None) -> List[Span]:
        """Buffered spans in record order; only ``seq > since`` if given."""
        with self._lock:
            if since is None:
                return list(self._spans)
            return [span for span in self._spans if span.seq > since]

    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_RECORDER: Optional[SpanRecorder] = None
_CURRENT = threading.local()


def install_recorder(capacity: int = DEFAULT_CAPACITY) -> SpanRecorder:
    """Install (and return) a fresh process-global recorder."""
    global _RECORDER
    rec = SpanRecorder(capacity)
    _RECORDER = rec
    return rec


def clear_recorder() -> None:
    """Disarm recording in this process (idempotent)."""
    global _RECORDER
    _RECORDER = None


def recorder() -> Optional[SpanRecorder]:
    """The installed recorder, or ``None``."""
    return _RECORDER


def record_span(
    name: str,
    start_s: float,
    duration_s: float,
    trace_id: Optional[str] = None,
    span_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    attrs: Optional[Dict[str, Any]] = None,
) -> Optional[Span]:
    """Record one finished span; the production fast path.

    With no recorder installed this returns ``None`` after a single
    global read — callers sprinkle it through hot layers unconditionally.
    """
    rec = _RECORDER
    if rec is None:
        return None
    span = Span(
        name=name,
        trace_id=trace_id or new_trace_id(),
        span_id=span_id or new_span_id(),
        parent_id=parent_id,
        start_s=start_s,
        duration_s=max(0.0, duration_s),
        pid=os.getpid(),
        tid=threading.get_ident() & 0xFFFF,
        attrs=dict(attrs) if attrs else {},
    )
    rec.record(span)
    return span


def set_current(trace_id: str, span_id: str) -> None:
    """Bind the calling thread's current span context."""
    _CURRENT.ctx = (trace_id, span_id)


def get_current() -> Optional[tuple]:
    """The calling thread's ``(trace_id, span_id)``, or ``None``."""
    return getattr(_CURRENT, "ctx", None)


def clear_current() -> None:
    """Unbind the calling thread's context (idempotent)."""
    _CURRENT.ctx = None
