"""Structured JSON logging that carries trace ids.

One function — :func:`event` — emits a single JSON object per line to a
configurable stream (stderr by default), so server, scheduler, chaos
and loadgen lines are machine-parseable and joinable on ``trace_id``::

    {"ts": 1754600000.123, "event": "job.finished", "trace_id": "ab..",
     "job_id": "j-1", "status": "done"}

Logging is off by default and costs one global load plus a branch per
call when off (the same discipline as :mod:`repro.faults` and the span
recorder).  Enable programmatically (:func:`enable`) or with
``REPRO_OBS_LOG=1`` in the environment, read at import so subprocess
servers inherit it.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Optional, TextIO

__all__ = ["ENV_VAR", "disable", "enable", "enabled", "event"]

ENV_VAR = "REPRO_OBS_LOG"

_STREAM: Optional[TextIO] = None
_LOCK = threading.Lock()


def enable(stream: Optional[TextIO] = None) -> None:
    """Turn structured logging on (stderr unless ``stream`` is given)."""
    global _STREAM
    _STREAM = stream if stream is not None else sys.stderr


def disable() -> None:
    """Turn structured logging off (idempotent)."""
    global _STREAM
    _STREAM = None


def enabled() -> bool:
    return _STREAM is not None


def event(name: str, trace_id: Optional[str] = None, **fields: Any) -> None:
    """Emit one JSON log line; a fast no-op while logging is off."""
    stream = _STREAM
    if stream is None:
        return
    record = {"ts": round(time.time(), 3), "event": name}
    if trace_id:
        record["trace_id"] = trace_id
    record.update(fields)
    try:
        line = json.dumps(record, default=str)
    except (TypeError, ValueError):  # never let logging break the caller
        line = json.dumps({"ts": record["ts"], "event": name,
                           "error": "unserializable-fields"})
    with _LOCK:
        try:
            stream.write(line + "\n")
            stream.flush()
        except (OSError, ValueError):  # closed/broken stream: drop the line
            pass


# Subprocess activation, like repro.faults.
if os.environ.get(ENV_VAR):
    enable()
