"""Client library for the simulation service.

:class:`ServiceClient` is a thin stdlib (:mod:`urllib`) HTTP client
with the retry discipline the server's admission control expects:

* **429** responses honour the server's ``Retry-After`` header (capped)
  before retrying;
* transient transport failures and 5xx responses retry with
  exponential backoff and a retry budget;
* every retry sleep is **jittered** (AWS-style full jitter: a uniform
  draw over the backoff window) so a fleet of clients rejected at the
  same instant does not come back as one synchronised thundering herd —
  a ``Retry-After`` hint keeps a floor of half the server's figure;
* 4xx responses never retry — they surface as :class:`ServiceError`
  with the server's message (so an unknown policy reads exactly like a
  local validation error).

:class:`RemoteEngine` adapts the client to the
:class:`~repro.sim.engine.SimEngine` surface (``run`` / ``run_many`` /
``sweep`` / ``select_thresholds`` / ``cached_results``), which is what
lets ``repro run/sweep/experiment --server URL`` execute against a
remote server with byte-identical results — every result travels as
its exact :meth:`~repro.sim.metrics.RunResult.to_dict` JSON.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from repro import faults
from repro.obs import trace as obs_trace
from repro.sim.config import SimulationConfig
from repro.sim.metrics import RunResult
from repro.workloads.characteristics import benchmark_names

__all__ = [
    "JobFailed",
    "RemoteEngine",
    "RetryBudgetExceeded",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
]

#: Never sleep longer than this on one Retry-After / backoff step.
MAX_BACKOFF_S = 30.0

#: Job states the server will never change again (wire constants).
_TERMINAL = ("done", "failed", "cancelled", "poisoned")

#: Most recent job-id → trace-id pairs a client remembers.
_TRACE_MEMORY = 4096


class ServiceError(RuntimeError):
    """An HTTP error from the service (carries the status code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceUnavailable(ServiceError):
    """The server could not be reached within the retry budget."""

    def __init__(self, message: str) -> None:
        super(ServiceError, self).__init__(message)
        self.status = 0
        self.message = message


class RetryBudgetExceeded(ServiceUnavailable):
    """The wall-clock retry budget ran out before a request succeeded.

    A :class:`ServiceUnavailable` subclass, so existing callers that
    handle unreachability handle deadline exhaustion too; the distinct
    type lets deadline-aware callers (the chaos driver, loadgen) tell
    "the server was down" from "my deadline passed while backing off".
    """


class JobFailed(RuntimeError):
    """A submitted job finished ``failed``/``cancelled``/``poisoned``."""

    def __init__(self, job: Dict[str, Any]) -> None:
        detail = job.get("error") or job.get("status")
        super().__init__(f"job {job.get('id')} {job.get('status')}: {detail}")
        self.job = job


class ServiceClient:
    """Talk to a ``repro serve`` instance.

    Args:
        base_url: e.g. ``http://127.0.0.1:8023``.
        timeout: Per-request socket timeout, seconds.
        retries: Transport/5xx/429 retry budget per request.
        backoff: Initial exponential-backoff delay, seconds.
        sleep: Injection point for tests (defaults to :func:`time.sleep`).
        jitter: Randomise every retry sleep (full jitter); disable for
            exactly-reproducible retry timing.
        rng: Injection point for tests (defaults to a private
            :class:`random.Random`).
        retry_budget_s: Overall wall-clock deadline for one request's
            retry loop, seconds.  However many attempts ``retries``
            allows, Retry-After hints and backoff sleeps never push a
            call past this budget: the final sleep is clipped to the
            time remaining and an attempt that would start after the
            deadline raises :class:`RetryBudgetExceeded` instead.
            ``None`` (the default) keeps the attempt-count bound only.
        clock: Injection point for tests (defaults to
            :func:`time.monotonic`).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 5,
        backoff: float = 0.2,
        sleep=time.sleep,
        jitter: bool = True,
        rng: Optional[random.Random] = None,
        retry_budget_s: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if retry_budget_s is not None and retry_budget_s <= 0:
            raise ValueError("retry_budget_s must be positive")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.retry_budget_s = retry_budget_s
        self._sleep = sleep
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        #: job id -> the trace id this client minted at submission
        #: (bounded: oldest forgotten beyond _TRACE_MEMORY entries).
        self._trace_ids: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        delay = self.backoff
        last_error = "no attempts made"
        started = self._clock()
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.base_url + path,
                data=body,
                method=method,
                headers=request_headers,
            )
            try:
                _injected_transport_fault()
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                detail = self._error_message(error)
                if error.code == 429 and attempt < self.retries:
                    hint = self._retry_after(error, delay)
                    last_error = f"HTTP 429: {detail}"
                    # Equal jitter: honour at least half the server's
                    # figure so admission control still works, but
                    # decorrelate the herd it just turned away.
                    self._pause(
                        self._jittered(hint, floor=hint / 2), started, last_error
                    )
                    delay = min(delay * 2, MAX_BACKOFF_S)
                    continue
                if error.code >= 500 and attempt < self.retries:
                    last_error = f"HTTP {error.code}: {detail}"
                    self._pause(self._jittered(delay), started, last_error)
                    delay = min(delay * 2, MAX_BACKOFF_S)
                    continue
                raise ServiceError(error.code, detail) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
                last_error = str(getattr(error, "reason", error))
                if attempt < self.retries:
                    self._pause(self._jittered(delay), started, last_error)
                    delay = min(delay * 2, MAX_BACKOFF_S)
                    continue
        raise ServiceUnavailable(
            f"cannot reach {self.base_url}: {last_error}"
        )

    def _pause(self, seconds: float, started: float, last_error: str) -> None:
        """One retry sleep, clipped to the wall-clock retry budget.

        With ``retry_budget_s`` set, a retry whose deadline already
        passed raises :class:`RetryBudgetExceeded` (carrying the last
        failure, so the caller sees *why* the loop was still retrying)
        and a sleep never extends past the deadline.
        """
        if self.retry_budget_s is not None:
            remaining = self.retry_budget_s - (self._clock() - started)
            if remaining <= 0:
                raise RetryBudgetExceeded(
                    f"retry budget of {self.retry_budget_s}s exhausted for "
                    f"{self.base_url}: {last_error}"
                )
            seconds = min(seconds, remaining)
        self._sleep(seconds)

    @staticmethod
    def _error_message(error: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(error.read().decode("utf-8"))
            return str(payload.get("error", payload))
        except (ValueError, UnicodeDecodeError, OSError):
            return error.reason or f"status {error.code}"

    def _jittered(self, delay: float, floor: float = 0.01) -> float:
        """Full-jitter sleep: uniform over ``[floor, delay]``.

        With ``jitter=False`` the nominal delay is returned unchanged
        (deterministic timing for tests and debugging).
        """
        if not self.jitter or delay <= floor:
            return delay
        return self._rng.uniform(floor, delay)

    @staticmethod
    def _retry_after(error: urllib.error.HTTPError, fallback: float) -> float:
        header = error.headers.get("Retry-After") if error.headers else None
        try:
            value = float(header) if header is not None else fallback
        except ValueError:
            value = fallback
        return max(0.05, min(value, MAX_BACKOFF_S))

    # ------------------------------------------------------------------
    # Raw endpoints
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> Dict[str, Any]:
        """POST a raw job payload; returns the admission receipt.

        Every submission mints a trace context and sends it in the
        ``X-Repro-Trace`` header (trace id, root span id, epoch-ms send
        time), so the server records a ``client.submit`` root span and
        threads the trace id through the job's whole execution.  The
        minted id is remembered per job id — :meth:`trace_id_for` — so
        drivers (chaos, loadgen) can cite it in their reports.  Retries
        reuse the same context: one logical submission, one trace.
        """
        ctx = obs_trace.TraceContext(
            trace_id=obs_trace.new_trace_id(),
            span_id=obs_trace.new_span_id(),
            t_ms=int(time.time() * 1000),
        )
        receipt = self._request(
            "POST", "/v1/jobs", payload,
            headers={obs_trace.HEADER: ctx.header()},
        )
        job_id = receipt.get("id")
        if job_id:
            self._trace_ids[job_id] = ctx.trace_id
            while len(self._trace_ids) > _TRACE_MEMORY:
                self._trace_ids.pop(next(iter(self._trace_ids)))
        return receipt

    def trace_id_for(self, job_id: str) -> Optional[str]:
        """The trace id minted when this client submitted ``job_id``."""
        return self._trace_ids.get(job_id)

    def trace(self, since: Optional[int] = None) -> Dict[str, Any]:
        """GET ``/v1/trace``: the server's span ring as Chrome-trace JSON."""
        path = "/v1/trace" if since is None else f"/v1/trace?since={int(since)}"
        return self._request("GET", path)

    def submit_run(
        self,
        config: SimulationConfig,
        priority: int = 0,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.submit(
            _with_options(
                {"kind": "run", "config": config.to_dict()}, priority, timeout_s
            )
        )

    def submit_sweep(
        self,
        config: SimulationConfig,
        benchmarks: Optional[Sequence[str]] = None,
        priority: int = 0,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        names = list(benchmarks) if benchmarks is not None else benchmark_names()
        return self.submit(
            _with_options(
                {"kind": "sweep", "config": config.to_dict(), "benchmarks": names},
                priority,
                timeout_s,
            )
        )

    def submit_batch(
        self,
        configs: Sequence[SimulationConfig],
        priority: int = 0,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.submit(
            _with_options(
                {"kind": "batch", "configs": [c.to_dict() for c in configs]},
                priority,
                timeout_s,
            )
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def result(self, key: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/results/{key}")["result"]

    def policies(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/policies")["policies"]

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        poll_s: float = 0.15,
        timeout: Optional[float] = None,
        raise_on_failure: bool = True,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its document.

        Raises:
            JobFailed: when the job finished ``failed``/``cancelled``
                (suppress with ``raise_on_failure=False``).
            TimeoutError: when ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in _TERMINAL:
                if raise_on_failure and job["status"] != "done":
                    raise JobFailed(job)
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout}s"
                )
            self._sleep(poll_s)

    def collect(
        self, receipt: Dict[str, Any], job: Dict[str, Any]
    ) -> List[Dict[str, Any]]:
        """Result dicts in the receipt's request order.

        Falls back to ``GET /v1/results/<key>`` for entries the job
        document no longer carries (evicted from the server's LRU).
        """
        results = dict(job.get("results", {}))
        ordered = []
        for key in receipt["units"]:
            if key not in results:
                results[key] = self.result(key)
            ordered.append(results[key])
        return ordered


def _injected_transport_fault() -> None:
    """The ``client.request`` failpoint: a fault before the wire.

    ``drop`` raises :class:`urllib.error.URLError`, which flows through
    the normal transport-retry branch (backoff, budget, jitter) exactly
    as a connection reset would; ``stall`` sleeps in place, modelling a
    slow network without consuming a retry attempt.
    """
    hit = faults.check("client.request")
    if hit is None:
        return
    if hit.action == "stall":
        time.sleep(hit.delay)
    elif hit.action == "drop":
        raise urllib.error.URLError("injected fault: client.request drop")


def _with_options(payload: dict, priority: int, timeout_s: Optional[float]) -> dict:
    if priority:
        payload["priority"] = priority
    if timeout_s is not None:
        payload["timeout_s"] = timeout_s
    return payload


class RemoteEngine:
    """A :class:`~repro.sim.engine.SimEngine`-shaped facade over a server.

    Experiments and the CLI drive this exactly like a local engine;
    every ``run_many`` becomes one batch job (so the server coalesces
    and shards it), and results come back as exact ``RunResult`` JSON.
    The local ``cached_results`` list mirrors what a local engine's LRU
    would have held, so ``repro experiment --json`` payloads keep their
    ``runs`` section.
    """

    def __init__(
        self,
        client: ServiceClient,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.15,
    ) -> None:
        self.client = client
        self.priority = priority
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.stats: Dict[str, int] = {"jobs": 0, "remote_units": 0}
        self._results: "Dict[tuple, RunResult]" = {}

    # -- SimEngine surface ---------------------------------------------
    def run(self, config: SimulationConfig, **_: Any) -> RunResult:
        return self.run_many([config])[0]

    def run_many(
        self,
        configs: Sequence[SimulationConfig],
        workers: Optional[int] = None,
        use_cache: bool = True,
        fast: Optional[bool] = None,
        cancel=None,
    ) -> List[RunResult]:
        """Submit one batch job and block until it completes.

        ``workers``/``fast`` are the *server's* choice (its engine was
        configured at ``repro serve`` time); they are accepted and
        ignored so experiment code written against ``SimEngine`` runs
        unchanged.
        """
        configs = list(configs)
        if not configs:
            return []
        receipt = self.client.submit_batch(
            configs, priority=self.priority, timeout_s=self.timeout_s
        )
        job = self.client.wait(receipt["id"], poll_s=self.poll_s)
        payloads = self.client.collect(receipt, job)
        self.stats["jobs"] += 1
        self.stats["remote_units"] += len(configs)
        results = [RunResult.from_dict(payload) for payload in payloads]
        for config, result in zip(configs, results):
            self._results[config.cache_key()] = result
        return results

    def sweep(
        self,
        base_config: SimulationConfig,
        benchmarks: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> Dict[str, RunResult]:
        names = list(benchmarks) if benchmarks is not None else benchmark_names()
        configs = [replace(base_config, benchmark=name) for name in names]
        return dict(zip(names, self.run_many(configs, workers=workers, fast=fast)))

    def select_thresholds(self, benchmark: str, base_config: SimulationConfig, **kwargs):
        from repro.sim.sweep import select_benchmark_thresholds

        return select_benchmark_thresholds(
            benchmark, base_config, engine=self, **kwargs
        )

    def cached_results(self) -> List[RunResult]:
        """Results fetched through this facade (insertion order)."""
        return list(self._results.values())

    def clear(self) -> None:
        self._results.clear()

    def close(self) -> None:
        """Nothing to release locally (the pool lives on the server)."""

    def __enter__(self) -> "RemoteEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
