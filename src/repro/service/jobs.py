"""Job model for the simulation service.

A *job* is the service's unit of admission: one simulated configuration
(``kind="run"``), a benchmark sweep of a base configuration
(``kind="sweep"``), or an explicit list of configurations
(``kind="batch"``, the transport behind
:meth:`repro.service.client.RemoteEngine.run_many`).  Jobs are parsed
from the JSON payload of ``POST /v1/jobs`` and validated in two stages:

* **structural** problems (not a JSON object, missing/mis-typed keys,
  an unknown ``kind``) raise :class:`MalformedJob`, which the server
  maps to HTTP 400;
* **semantic** problems (unknown policy or benchmark name, bad policy
  parameters, an unknown technology node) raise :class:`InvalidJob`,
  mapped to HTTP 422 with the registry's validation message.

The distinction matters to clients: a 400 means the request itself is
broken, a 422 means the request was understood but names something the
server does not have.

Execution happens at *unit* granularity: every configuration in a job
is keyed by the same canonical digest the engine's on-disk
:class:`~repro.sim.store.ResultStore` uses
(:meth:`~repro.sim.store.ResultStore.key_for`), which is how identical
in-flight requests coalesce onto one execution — see
:mod:`repro.service.queue`.

Jobs serialise to JSON (:meth:`Job.to_dict` / :meth:`Job.from_dict`)
for the write-ahead journal, so a restarted server re-admits exactly
the jobs that had not finished.
"""

from __future__ import annotations

import re
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.circuits.technology import get_technology
from repro.sim.config import SimulationConfig
from repro.workloads.scenarios import validate_workload_name

__all__ = [
    "Job",
    "JobError",
    "MalformedJob",
    "InvalidJob",
    "JOB_KINDS",
    "TERMINAL_STATES",
    "parse_job_payload",
    "validate_config",
]

#: Admissible values of a job payload's ``kind`` field.
JOB_KINDS = ("run", "sweep", "batch")

#: Job states that will never change again.  ``poisoned`` is the
#: quarantine terminal: a job whose unit kept failing execution after
#: the scheduler's retry budget — distinct from ``failed`` so operators
#: (and the chaos driver) can tell a validation failure from a unit the
#: service gave up retrying.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "poisoned"})

#: Priorities outside this band are rejected (a runaway client must not
#: be able to wedge itself permanently ahead of everyone).
PRIORITY_BAND = (-100, 100)

#: Client-supplied job ids must be addressable by the job routes
#: (``/v1/jobs/<id>``), so they are restricted to the same characters
#: the router matches; an id outside this set would be admitted,
#: executed and journaled, yet impossible to poll or cancel over HTTP.
_JOB_ID_PATTERN = re.compile(r"^[A-Za-z0-9_.-]{1,128}$")


class JobError(ValueError):
    """Base class for job admission failures; carries an HTTP status."""

    status = 400


class MalformedJob(JobError):
    """The payload is structurally broken (HTTP 400)."""

    status = 400


class InvalidJob(JobError):
    """The payload names something the server does not have (HTTP 422)."""

    status = 422


def validate_config(config: SimulationConfig) -> None:
    """Semantic validation of one configuration.

    Raises:
        InvalidJob: for an unknown benchmark/scenario/trace name, an
            unknown policy name, parameters a policy factory does not
            accept, or an unregistered technology node — with the
            underlying registry's message, so the client sees exactly
            what a local run would have printed.
    """
    try:
        validate_workload_name(config.benchmark)
        get_technology(config.feature_size_nm)
        for spec in (config.dcache, config.icache, config.l2):
            spec.validated_params()
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise InvalidJob(str(message)) from None
    if config.n_instructions < 1:
        raise InvalidJob("n_instructions must be at least 1")


def _parse_config(data: Any, where: str) -> SimulationConfig:
    """Structural parse of one serialised configuration."""
    if not isinstance(data, Mapping):
        raise MalformedJob(f"{where} must be a JSON object")
    try:
        return SimulationConfig.from_dict(data)
    except (KeyError, TypeError, AttributeError) as error:
        raise MalformedJob(f"{where} is not a valid configuration: {error}") from None
    except ValueError as error:
        # PolicySpec.from_dict raises ValueError for malformed spec
        # payloads; that is structural, not semantic.
        raise MalformedJob(f"{where} is not a valid configuration: {error}") from None


def _new_job_id() -> str:
    return f"job-{uuid.uuid4().hex[:16]}"


@dataclass
class Job:
    """One admitted job.

    The dataclass carries only durable fields — everything the journal
    must reproduce after a restart.  Runtime bookkeeping (unit keys,
    pending set, cancellation event, timestamps) is attached by the
    :class:`~repro.service.queue.JobBoard` at admission.

    Attributes:
        id: Stable identifier (survives a journal replay).
        kind: ``"run"``, ``"sweep"`` or ``"batch"``.
        configs: The expanded configurations, in request order.
        labels: Per-config display labels (benchmark names for sweeps).
        priority: Larger runs sooner; ties run in submission order.
        timeout_s: Wall-clock budget from admission; ``None`` = none.
    """

    id: str = field(default_factory=_new_job_id)
    kind: str = "run"
    configs: List[SimulationConfig] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)
    priority: int = 0
    timeout_s: Optional[float] = None
    status: str = "queued"
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Journal representation (round-trips via :meth:`from_dict`)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "configs": [config.to_dict() for config in self.configs],
            "labels": list(self.labels),
            "priority": self.priority,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        """Rebuild a job from :meth:`to_dict` output (journal replay)."""
        return cls(
            id=str(data["id"]),
            kind=str(data["kind"]),
            configs=[SimulationConfig.from_dict(c) for c in data["configs"]],
            labels=[str(label) for label in data.get("labels", [])],
            priority=int(data.get("priority", 0)),
            timeout_s=data.get("timeout_s"),
        )

    def summary(self) -> Dict[str, Any]:
        """The fields every listing endpoint shows."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "priority": self.priority,
            "units": len(self.configs),
            "error": self.error,
            # Runtime-only (minted at admission, never journaled):
            # replayed jobs re-mint on re-admission.
            "trace_id": getattr(self, "trace_id", None),
        }


def _parse_priority(payload: Mapping[str, Any]) -> int:
    priority = payload.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise MalformedJob("priority must be an integer")
    low, high = PRIORITY_BAND
    if not low <= priority <= high:
        raise InvalidJob(f"priority must be within [{low}, {high}]")
    return priority


def _parse_timeout(payload: Mapping[str, Any]) -> Optional[float]:
    timeout = payload.get("timeout_s")
    if timeout is None:
        return None
    if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
        raise MalformedJob("timeout_s must be a number")
    if timeout <= 0:
        raise InvalidJob("timeout_s must be positive")
    return float(timeout)


def parse_job_payload(payload: Any) -> Job:
    """Parse and fully validate one ``POST /v1/jobs`` body.

    Returns a queued :class:`Job` with its configurations expanded
    (sweeps become one configuration per benchmark) and semantically
    validated.

    Raises:
        MalformedJob: structural problems (HTTP 400).
        InvalidJob: semantic problems (HTTP 422).
    """
    if not isinstance(payload, Mapping):
        raise MalformedJob("job payload must be a JSON object")
    kind = payload.get("kind", "run")
    if kind not in JOB_KINDS:
        raise MalformedJob(
            f"unknown job kind {kind!r}; expected one of {', '.join(JOB_KINDS)}"
        )

    configs: List[SimulationConfig]
    labels: List[str]
    if kind == "run":
        config = _parse_config(payload.get("config"), "config")
        configs, labels = [config], [config.benchmark]
    elif kind == "sweep":
        base = _parse_config(payload.get("config"), "config")
        benchmarks = payload.get("benchmarks")
        if (
            not isinstance(benchmarks, (list, tuple))
            or not benchmarks
            or not all(isinstance(name, str) for name in benchmarks)
        ):
            raise MalformedJob("sweep jobs require a non-empty benchmarks list")
        configs = [replace(base, benchmark=name) for name in benchmarks]
        labels = list(benchmarks)
    else:  # batch
        raw = payload.get("configs")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise MalformedJob("batch jobs require a non-empty configs list")
        configs = [
            _parse_config(entry, f"configs[{index}]")
            for index, entry in enumerate(raw)
        ]
        labels = [config.benchmark for config in configs]

    for config in configs:
        validate_config(config)

    job = Job(
        kind=kind,
        configs=configs,
        labels=labels,
        priority=_parse_priority(payload),
        timeout_s=_parse_timeout(payload),
    )
    job_id = payload.get("id")
    if job_id is not None:
        if not isinstance(job_id, str) or not _JOB_ID_PATTERN.match(job_id):
            raise MalformedJob(
                "id must be 1-128 characters from [A-Za-z0-9_.-]"
            )
        job.id = job_id
    return job
