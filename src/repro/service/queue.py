"""Priority job queue with request coalescing.

The :class:`JobBoard` is the service's shared state: admitted jobs, the
priority heap the scheduler pops from, and the *unit table* that makes
coalescing work.

A **unit** is one unique configuration, keyed by the canonical digest
the engine's on-disk store already uses
(:meth:`~repro.sim.store.ResultStore.key_for`).  Every job references
units; several jobs referencing the same key share one unit, so

* a configuration that is already **done** (result in the board's LRU
  or the result store) is served immediately — the job's unit count
  drops without touching the worker pool;
* a configuration that is **running** on behalf of another job is not
  re-executed — the late job simply attaches and completes when the
  unit does;
* only genuinely new configurations become **pending** work for the
  scheduler.

All mutation happens under one lock; the scheduler blocks on a
condition variable instead of polling.  Completion is event-driven:
when a unit finishes, every attached job's pending set shrinks, and
jobs whose pending set empties are finished (and reported through the
``on_job_finished`` hook, which the server wires to the journal and
telemetry).
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.sim.config import SimulationConfig
from repro.sim.metrics import RunResult
from repro.sim.store import ResultStore

from .jobs import Job, TERMINAL_STATES

__all__ = ["JobBoard", "QueueFull", "SubmitReceipt", "Unit"]


class QueueFull(Exception):
    """Admission rejected: the queue is at capacity (HTTP 429).

    Attributes:
        retry_after: Suggested client back-off in seconds, derived from
            the queue depth and the recent per-unit execution time.
    """

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(
            f"job queue is full ({depth} jobs queued); retry in {retry_after:.0f}s"
        )
        self.depth = depth
        self.retry_after = retry_after


@dataclass
class Unit:
    """One unique configuration shared by every job that references it."""

    key: str
    config: SimulationConfig
    status: str = "pending"  # pending | running | done | failed
    error: Optional[str] = None
    jobs: Set[str] = field(default_factory=set)
    #: Execution failures so far (drives retry-then-quarantine).
    failures: int = 0
    #: Trace ids of every job that requested this unit (coalesced jobs
    #: share the execution, so a unit can belong to several traces).
    trace_ids: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class SubmitReceipt:
    """What admission tells the client about its job.

    ``unit_keys`` is parallel to the job's configurations (duplicates
    repeated), so a client can map results back to its request order.
    """

    job_id: str
    status: str
    unit_keys: List[str]
    coalesced: int
    cached: int
    queue_depth: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.job_id,
            "status": self.status,
            "units": list(self.unit_keys),
            "coalesced": self.coalesced,
            "cached": self.cached,
            "queue_depth": self.queue_depth,
        }


class JobBoard:
    """Jobs, units and the priority heap, behind one lock.

    Args:
        store: Optional result store; completed units fall back to it
            when the in-memory result LRU has evicted them, and results
            already on disk satisfy new units at admission.
        queue_limit: Maximum queued-or-running jobs before admission
            returns :class:`QueueFull`.
        retention_jobs: Terminal jobs kept for status queries (oldest
            pruned first).
        retention_results: Completed unit payloads kept in memory.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        queue_limit: int = 256,
        retention_jobs: int = 1024,
        retention_results: int = 4096,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.store = store
        self.queue_limit = queue_limit
        self.retention_jobs = retention_jobs
        self.retention_results = retention_results
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._units: Dict[str, Unit] = {}
        self._results: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._heap: List = []
        self._seq = 0
        self._closed = False
        #: Recent per-unit execution seconds (drives Retry-After).
        self._unit_seconds = 2.0
        #: Called with every job that reaches a terminal state.
        self.on_job_finished: Optional[Callable[[Job], None]] = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> SubmitReceipt:
        """Admit one parsed job; serve/coalesce/queue its units.

        Raises:
            QueueFull: when the live-job count is at the limit.
        """
        finished: Optional[Job] = None
        with self._lock:
            if self._closed:
                raise QueueFull(self.depth(), 5.0)
            live = sum(
                1 for j in self._jobs.values() if j.status not in TERMINAL_STATES
            )
            if live >= self.queue_limit:
                retry = max(1.0, self.depth() * self._unit_seconds)
                raise QueueFull(live, min(retry, 120.0))
            if job.id in self._jobs:
                raise ValueError(f"duplicate job id {job.id!r}")

            unit_keys = [ResultStore.key_for(config) for config in job.configs]
            job.unit_keys = unit_keys  # type: ignore[attr-defined]
            job.pending = set()  # type: ignore[attr-defined]
            job.cancel = threading.Event()  # type: ignore[attr-defined]
            job.submitted_at = time.time()  # type: ignore[attr-defined]
            job.finished_at = None  # type: ignore[attr-defined]
            coalesced = cached = 0
            trace_id = getattr(job, "trace_id", None)
            seen: Set[str] = set()
            for key, config in zip(unit_keys, job.configs):
                if key in seen:
                    continue
                seen.add(key)
                unit = self._units.get(key)
                if unit is not None and unit.status in ("pending", "running"):
                    unit.jobs.add(job.id)
                    if trace_id:
                        unit.trace_ids.add(trace_id)
                    job.pending.add(key)
                    coalesced += 1
                    continue
                if self._result_available(key):
                    cached += 1
                    continue
                unit = Unit(key=key, config=config)
                unit.jobs.add(job.id)
                if trace_id:
                    unit.trace_ids.add(trace_id)
                self._units[key] = unit
                job.pending.add(key)

            self._jobs[job.id] = job
            self._prune_jobs()
            if not job.pending:
                self._finish(job, "done")
                finished = job
            else:
                job.status = "queued"
                self._push(job)
                self._work.notify_all()
            receipt = SubmitReceipt(
                job_id=job.id,
                status=job.status,
                unit_keys=unit_keys,
                coalesced=coalesced,
                cached=cached,
                queue_depth=self.depth(),
            )
        if finished is not None:
            self._notify(finished)
        return receipt

    def _result_available(self, key: str) -> bool:
        if key in self._results:
            self._results.move_to_end(key)
            return True
        if self.store is not None:
            payload = self.store.get_payload(key)
            if payload is not None and "result" in payload:
                self._remember_result(key, payload["result"])
                return True
        return False

    def _remember_result(self, key: str, result: Dict[str, Any]) -> None:
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self.retention_results:
            self._results.popitem(last=False)

    def _prune_jobs(self) -> None:
        terminal = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in TERMINAL_STATES
        ]
        excess = len(self._jobs) - self.retention_jobs
        for job_id in terminal:
            if excess <= 0:
                break
            del self._jobs[job_id]
            excess -= 1

    def _push(self, job: Job) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-job.priority, self._seq, job.id))

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job by (priority, submission order); blocks up to ``timeout``.

        Returns ``None`` on timeout or after :meth:`close`.  The
        returned job is marked ``running``; jobs that reached a terminal
        state while queued (cancellation, coalesced completion) are
        skipped.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs.get(job_id)
                    if job is None or job.status in TERMINAL_STATES:
                        continue
                    if job.status == "queued":
                        job.status = "running"
                        job.started_at = time.time()  # type: ignore[attr-defined]
                    return job
                if self._closed:
                    return None
                if deadline is None:
                    self._work.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._work.wait(remaining):
                        return None

    def claim(self, job: Job) -> List[Unit]:
        """Mark the job's pending units running; return them for execution.

        Units already running on behalf of another job are not returned
        (the job waits for them); units that became done meanwhile are
        resolved on the spot.
        """
        finished: Optional[Job] = None
        with self._lock:
            if job.status in TERMINAL_STATES:
                return []
            claimed: List[Unit] = []
            for key in sorted(job.pending):  # type: ignore[attr-defined]
                unit = self._units.get(key)
                if unit is None or unit.status == "done":
                    job.pending.discard(key)  # type: ignore[attr-defined]
                    continue
                if unit.status == "pending":
                    unit.status = "running"
                    claimed.append(unit)
            if not job.pending and job.status not in TERMINAL_STATES:
                self._finish(job, "done")
                finished = job
        if finished is not None:
            self._notify(finished)
        return claimed

    def complete_unit(self, key: str, result: RunResult, elapsed: Optional[float] = None) -> None:
        """Record a unit's result and resolve every attached job."""
        finished: List[Job] = []
        with self._lock:
            if elapsed is not None:
                # Exponential moving average; drives Retry-After hints.
                self._unit_seconds = 0.7 * self._unit_seconds + 0.3 * max(elapsed, 0.01)
            unit = self._units.pop(key, None)
            self._remember_result(key, result.to_dict())
            if unit is None:
                return
            for job_id in unit.jobs:
                job = self._jobs.get(job_id)
                if job is None or job.status in TERMINAL_STATES:
                    continue
                job.pending.discard(key)  # type: ignore[attr-defined]
                if not job.pending:
                    self._finish(job, "done")
                    finished.append(job)
        for job in finished:
            self._notify(job)

    def fail_unit(self, key: str, error: str) -> None:
        """Fail a unit; every attached job fails with its message."""
        finished: List[Job] = []
        with self._lock:
            unit = self._units.pop(key, None)
            if unit is None:
                return
            for job_id in unit.jobs:
                job = self._jobs.get(job_id)
                if job is None or job.status in TERMINAL_STATES:
                    continue
                self._finish(job, "failed", error=error)
                finished.append(job)
            # Other pending units referenced only by the failed jobs are
            # abandoned work: drop them so the scheduler never runs them.
            self._drop_orphan_units()
        for job in finished:
            self._notify(job)

    def note_unit_failure(
        self, key: str, error: str, limit: int = 3
    ) -> Optional[str]:
        """One execution failure on a running unit: retry or quarantine.

        Below ``limit`` accumulated failures the unit returns to pending
        and its attached jobs requeue — a transient fault (worker death,
        injected chaos) re-executes.  At ``limit`` the unit is presumed
        *poison*: it is dropped and every attached job finishes in the
        distinct terminal state ``"poisoned"`` carrying the last error,
        so a config that reliably kills executors cannot pin the
        scheduler in a retry loop.  Returns ``"retried"``,
        ``"quarantined"``, or ``None`` when the key is not a running
        unit (already completed or released).
        """
        finished: List[Job] = []
        outcome: Optional[str] = None
        with self._lock:
            unit = self._units.get(key)
            if unit is None or unit.status != "running":
                return None
            unit.failures += 1
            unit.error = error
            if unit.failures < limit:
                unit.status = "pending"
                unit.jobs = {
                    job_id
                    for job_id in unit.jobs
                    if job_id in self._jobs
                    and self._jobs[job_id].status not in TERMINAL_STATES
                }
                if not unit.jobs:
                    del self._units[key]
                else:
                    for job_id in unit.jobs:
                        job = self._jobs[job_id]
                        if job.status in ("queued", "running"):
                            self._push(job)
                    self._work.notify_all()
                outcome = "retried"
            else:
                del self._units[key]
                message = (
                    f"unit {key} quarantined after {unit.failures} "
                    f"failed executions: {error}"
                )
                for job_id in unit.jobs:
                    job = self._jobs.get(job_id)
                    if job is None or job.status in TERMINAL_STATES:
                        continue
                    self._finish(job, "poisoned", error=message)
                    finished.append(job)
                self._drop_orphan_units()
                outcome = "quarantined"
        for job in finished:
            self._notify(job)
        return outcome

    def release_units(self, keys: List[str], *, requeue: bool = True) -> None:
        """Return running units to pending (a cancelled/aborted execution).

        Jobs still waiting on them are pushed back onto the heap so a
        later :meth:`pop` re-claims the work.
        """
        with self._lock:
            for key in keys:
                unit = self._units.get(key)
                if unit is None or unit.status != "running":
                    continue
                unit.status = "pending"
                unit.jobs = {
                    job_id
                    for job_id in unit.jobs
                    if job_id in self._jobs
                    and self._jobs[job_id].status not in TERMINAL_STATES
                }
                if not unit.jobs:
                    del self._units[key]
                    continue
                if requeue:
                    for job_id in unit.jobs:
                        job = self._jobs[job_id]
                        if job.status in ("queued", "running"):
                            self._push(job)
            if requeue:
                self._work.notify_all()

    def _drop_orphan_units(self) -> None:
        live = {
            job_id
            for job_id, job in self._jobs.items()
            if job.status not in TERMINAL_STATES
        }
        for key in list(self._units):
            unit = self._units[key]
            if unit.status != "pending":
                continue
            unit.jobs &= live
            if not unit.jobs:
                del self._units[key]

    # ------------------------------------------------------------------
    # Job control / inspection
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job; returns it, or ``None`` if unknown.

        The job finishes ``cancelled`` immediately (whether queued,
        waiting on coalesced units, or mid-execution) and its
        cancellation event is set — the scheduler notices at the next
        configuration/chunk boundary, salvages any units that finished
        before the cancellation, and requeues units other live jobs
        still need.  Terminal jobs are returned unchanged.
        """
        finished: Optional[Job] = None
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.status in TERMINAL_STATES:
                return job
            job.cancel.set()  # type: ignore[attr-defined]
            self._finish(job, "cancelled")
            finished = job
            self._drop_orphan_units()
        if finished is not None:
            self._notify(finished)
        return job

    def finish_cancelled(self, job: Job) -> None:
        """Scheduler callback: a running job's execution was cancelled."""
        finished = False
        with self._lock:
            if job.status not in TERMINAL_STATES:
                self._finish(job, "cancelled")
                finished = True
                self._drop_orphan_units()
        if finished:
            self._notify(job)

    def _finish(self, job: Job, status: str, error: Optional[str] = None) -> None:
        job.status = status
        job.error = error
        job.finished_at = time.time()  # type: ignore[attr-defined]

    def _notify(self, job: Job) -> None:
        hook = self.on_job_finished
        if hook is not None:
            hook(job)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every retained job, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def depth(self) -> int:
        """Jobs admitted but not yet terminal."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.status not in TERMINAL_STATES
            )

    def pending_units(self) -> int:
        with self._lock:
            return sum(1 for unit in self._units.values() if unit.status == "pending")

    def priority_depths(self) -> Dict[int, int]:
        """Live-job count per priority level (highest priority first).

        The per-priority breakdown of :meth:`depth`: a load generator
        (or an operator) can see whether a deep queue is bulk
        background work or high-priority traffic actually backing up.
        """
        with self._lock:
            depths: Dict[int, int] = {}
            for job in self._jobs.values():
                if job.status not in TERMINAL_STATES:
                    depths[job.priority] = depths.get(job.priority, 0) + 1
            return dict(sorted(depths.items(), key=lambda item: -item[0]))

    def result_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """A completed unit's result dict, from the LRU or the store.

        A malformed key (not a store digest) is simply absent — the
        store's digest validation must not escape as an error from a
        lookup API.
        """
        with self._lock:
            if key in self._results:
                self._results.move_to_end(key)
                return self._results[key]
        if self.store is not None:
            try:
                payload = self.store.get_payload(key)
            except ValueError:
                return None
            if payload is not None and "result" in payload:
                with self._lock:
                    self._remember_result(key, payload["result"])
                return payload["result"]
        return None

    def job_payload(self, job_id: str, include_results: bool = True) -> Optional[Dict[str, Any]]:
        """The full status document for ``GET /v1/jobs/<id>``."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            unit_keys = list(getattr(job, "unit_keys", []))
            pending = set(getattr(job, "pending", ()))
            payload: Dict[str, Any] = job.summary()
            payload["labels"] = list(job.labels)
            payload["unit_keys"] = unit_keys
            payload["pending_units"] = len(pending)
            payload["submitted_at"] = getattr(job, "submitted_at", None)
            payload["finished_at"] = getattr(job, "finished_at", None)
            payload["trace_id"] = getattr(job, "trace_id", None)
        if include_results:
            results: Dict[str, Any] = {}
            if job.status != "failed":
                for key in unit_keys:
                    if key in results or key in pending:
                        continue
                    result = self.result_payload(key)
                    if result is not None:
                        results[key] = result
            payload["results"] = results
        return payload

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admission and wake any blocked :meth:`pop` callers."""
        with self._lock:
            self._closed = True
            self._work.notify_all()
