"""Write-ahead job journal: a restarted server resumes its queue.

The journal is a JSON-lines file.  Admission appends a ``submit`` event
carrying the job's full durable form before the client gets its 202;
every terminal transition appends a matching ``done`` / ``failed`` /
``cancelled`` event.  Each append is flushed and fsynced, so a server
killed outright (``kill -9``, OOM) loses at most the event being
written — and a torn final line is tolerated by replay.

On startup :meth:`JobJournal.replay` returns the jobs that were
admitted but never finished, in their original admission order; the
server resubmits them.  Resubmission is idempotent by construction:
units whose results already landed in the result store are served from
it at admission, so only genuinely unfinished work re-executes, and
job ids are preserved so clients polling across the restart keep
working.  :meth:`compact` then rewrites the file to just the live
jobs, bounding its growth across restarts.

A POSIX advisory lock (``fcntl.flock``) is held on the journal for the
server's lifetime: two servers pointed at one journal would interleave
their write-ahead logs, so the second one fails fast with
:class:`JournalLocked` instead.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Union

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from .jobs import Job

__all__ = ["JobJournal", "JournalLocked"]

#: Event names that mark a job finished.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class JournalLocked(RuntimeError):
    """Another live server already holds this journal."""


class JobJournal:
    """Append-only JSON-lines write-ahead log of job lifecycles."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Append mode creates the file when absent and never truncates
        # the history a replay will need.
        self._handle = open(self.path, "a", encoding="utf-8")
        if fcntl is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self._handle.close()
                raise JournalLocked(
                    f"journal {self.path} is locked by another server"
                ) from None

    # ------------------------------------------------------------------
    def _append(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_submit(self, job: Job) -> None:
        """WAL a job before its admission is acknowledged.

        The wall-clock ``t`` lets a session recorder reconstruct the
        original inter-arrival gaps; replay ignores it (and compaction
        drops it — recorders must tolerate its absence).
        """
        self._append(
            {"v": 1, "event": "submit", "t": round(time.time(), 6),
             "job": job.to_dict()}
        )

    def record_finish(self, job: Job) -> None:
        """WAL a terminal transition (done/failed/cancelled)."""
        event = {"v": 1, "event": job.status, "id": job.id}
        if job.error:
            event["error"] = job.error
        self._append(event)

    # ------------------------------------------------------------------
    def replay(self) -> List[Job]:
        """The jobs admitted but never finished, in admission order.

        Unparseable lines (a torn final write from a killed server) and
        jobs whose serialised configurations no longer load are skipped
        — a bad record must not keep the whole service from booting.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        submitted: dict = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if not isinstance(event, dict):
                continue
            name = event.get("event")
            if name == "submit":
                try:
                    job = Job.from_dict(event["job"])
                except (KeyError, TypeError, ValueError):
                    continue
                submitted[job.id] = job
            elif name in _TERMINAL_EVENTS:
                submitted.pop(event.get("id"), None)
        return list(submitted.values())

    def compact(self, live_jobs: List[Job]) -> None:
        """Rewrite the journal to exactly the given unfinished jobs.

        Runs at startup after :meth:`replay`, so the file carries one
        ``submit`` line per live job instead of the full history.  The
        rewrite is staged in a temp file and atomically renamed, then
        the append handle (and its advisory lock) is reopened on the
        new inode.
        """
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for job in live_jobs:
                    handle.write(
                        json.dumps(
                            {"v": 1, "event": "submit", "job": job.to_dict()},
                            separators=(",", ":"),
                        )
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        old = self._handle
        self._handle = open(self.path, "a", encoding="utf-8")
        if fcntl is not None:
            # Re-lock the new inode before releasing the old one so
            # there is no window in which a second server could start.
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        old.close()

    def close(self) -> None:
        """Release the advisory lock and close the file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()
