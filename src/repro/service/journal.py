"""Write-ahead job journal: a restarted server resumes its queue.

The journal is a JSON-lines file.  Admission appends a ``submit`` event
carrying the job's full durable form before the client gets its 202;
every terminal transition appends a matching ``done`` / ``failed`` /
``cancelled`` event.  Each append is flushed and fsynced, so a server
killed outright (``kill -9``, OOM) loses at most the event being
written — and a torn final line is tolerated by replay.

On startup :meth:`JobJournal.replay` returns the jobs that were
admitted but never finished, in their original admission order; the
server resubmits them.  Resubmission is idempotent by construction:
units whose results already landed in the result store are served from
it at admission, so only genuinely unfinished work re-executes, and
job ids are preserved so clients polling across the restart keep
working.  :meth:`compact` then rewrites the file to just the live
jobs, bounding its growth across restarts.

Two servers pointed at one journal would interleave their write-ahead
logs, so the second one fails fast with :class:`JournalLocked`.  The
guard is a POSIX record lock (``fcntl.lockf``) on a ``<journal>.lock``
sidecar plus a process-local registry.  Each half covers the other's
blind spot: record locks — unlike ``flock`` — are owned by the process
and die with it, so the fork pool workers that inherit the descriptor
cannot keep a kill -9'd server's lock alive and wedge the restart; but
they are invisible within one process (and dropped when *any* handle
on the locked file closes — hence the sidecar no other code path ever
opens), so duplicate opens in-process are caught by the registry.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional, Union

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro import faults

from .jobs import Job

__all__ = ["JobJournal", "JournalLocked"]

#: Event names that mark a job finished.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled", "poisoned"})


class JournalLocked(RuntimeError):
    """Another live server already holds this journal."""


#: Journal paths locked by this process (record locks cannot see them).
_LOCAL_LOCKS: set = set()
_LOCAL_LOCKS_GUARD = threading.Lock()


class JobJournal:
    """Append-only JSON-lines write-ahead log of job lifecycles."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Append mode creates the file when absent and never truncates
        # the history a replay will need.
        self._handle = open(self.path, "a", encoding="utf-8")
        #: Set after a failed/torn append; the next append writes a
        #: newline first so the torn line cannot swallow it.
        self._needs_newline = False
        self._lock_key = str(self.path.resolve())
        self._lock_handle = None
        with _LOCAL_LOCKS_GUARD:
            if self._lock_key in _LOCAL_LOCKS:
                self._handle.close()
                raise JournalLocked(
                    f"journal {self.path} is locked by this process"
                )
            _LOCAL_LOCKS.add(self._lock_key)
        if fcntl is not None:
            # Lock a sidecar, not the journal itself: record locks drop
            # when any handle on the locked file closes, and replay's
            # read would do exactly that.  Nothing else opens the .lock.
            self._lock_handle = open(
                self.path.with_name(self.path.name + ".lock"), "a"
            )
            try:
                fcntl.lockf(
                    self._lock_handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB
                )
            except OSError:
                self._release_local()
                self._lock_handle.close()
                self._handle.close()
                raise JournalLocked(
                    f"journal {self.path} is locked by another server"
                ) from None

    def _release_local(self) -> None:
        with _LOCAL_LOCKS_GUARD:
            _LOCAL_LOCKS.discard(self._lock_key)

    # ------------------------------------------------------------------
    def _append(self, event: dict) -> None:
        """One fsynced JSON line; self-healing after a torn write.

        If a previous append failed partway (disk full, injected torn
        write) the file may end mid-line; the next successful append
        starts with a newline so the damage is confined to the one
        line replay already tolerates, instead of gluing two events
        into one unparseable record.
        """
        line = json.dumps(event, separators=(",", ":"))
        hit = faults.check("journal.append")
        if hit is not None:
            if hit.action == "error":
                raise OSError(f"injected fault: journal append to {self.path.name}")
            if hit.action == "torn":
                self._handle.write(line[: max(1, len(line) // 2)])
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._needs_newline = True
                raise OSError(
                    f"injected fault: torn journal append to {self.path.name}"
                )
        try:
            if self._needs_newline:
                self._handle.write("\n")
                self._needs_newline = False
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError:
            # The write may have landed partially; make the next append
            # terminate this line before starting its own.
            self._needs_newline = True
            raise

    def record_submit(self, job: Job) -> None:
        """WAL a job before its admission is acknowledged.

        The wall-clock ``t`` lets a session recorder reconstruct the
        original inter-arrival gaps; replay ignores it (and compaction
        drops it — recorders must tolerate its absence).
        """
        self._append(
            {"v": 1, "event": "submit", "t": round(time.time(), 6),
             "job": job.to_dict()}
        )

    def record_finish(self, job: Job) -> None:
        """WAL a terminal transition (done/failed/cancelled/poisoned)."""
        event = {"v": 1, "event": job.status, "id": job.id}
        if job.error:
            event["error"] = job.error
        self._append(event)

    # ------------------------------------------------------------------
    def replay(self) -> List[Job]:
        """The jobs admitted but never finished, in admission order.

        Unparseable lines (a torn final write from a killed server) and
        jobs whose serialised configurations no longer load are skipped
        — a bad record must not keep the whole service from booting.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        submitted: dict = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if not isinstance(event, dict):
                continue
            name = event.get("event")
            if name == "submit":
                try:
                    job = Job.from_dict(event["job"])
                except (KeyError, TypeError, ValueError):
                    continue
                submitted[job.id] = job
            elif name in _TERMINAL_EVENTS:
                submitted.pop(event.get("id"), None)
        return list(submitted.values())

    def compact(self, live_jobs: List[Job]) -> None:
        """Rewrite the journal to exactly the given unfinished jobs.

        Runs at startup after :meth:`replay`, so the file carries one
        ``submit`` line per live job instead of the full history.  The
        rewrite is staged in a temp file and atomically renamed, then
        the append handle (and its advisory lock) is reopened on the
        new inode.
        """
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for job in live_jobs:
                    handle.write(
                        json.dumps(
                            {"v": 1, "event": "submit", "job": job.to_dict()},
                            separators=(",", ":"),
                        )
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        old = self._handle
        self._handle = open(self.path, "a", encoding="utf-8")
        self._needs_newline = False  # the rewritten file ends cleanly
        # The advisory lock lives on the .lock sidecar, untouched by the
        # rewrite — no unlock/relock window for a second server here.
        old.close()

    def close(self) -> None:
        """Release the advisory lock and close the file (idempotent)."""
        if not self._handle.closed:
            self._release_local()
            if self._lock_handle is not None:
                self._lock_handle.close()  # releases the record lock
            self._handle.close()
