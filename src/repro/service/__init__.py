"""Simulation-as-a-service: job-queue server, client and scheduler.

The service layer turns the batch :class:`~repro.sim.engine.SimEngine`
into an always-on system: an HTTP server (``repro serve``) accepts
simulation jobs, a priority queue coalesces identical requests onto
one execution, a scheduler shards the work over the engine's
persistent fork pool, and a write-ahead journal makes the queue
survive restarts.  ``repro submit`` / ``repro jobs`` / ``repro
result`` — and ``--server URL`` on ``run``/``sweep``/``experiment`` —
are the client side.

See ``docs/service.md`` for the API reference and deployment notes.
"""

from .client import (
    JobFailed,
    RemoteEngine,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from .jobs import InvalidJob, Job, JobError, MalformedJob, parse_job_payload
from .journal import JobJournal, JournalLocked
from .queue import JobBoard, QueueFull, SubmitReceipt
from .scheduler import Scheduler
from .server import ServiceServer
from .telemetry import Telemetry

__all__ = [
    "InvalidJob",
    "Job",
    "JobBoard",
    "JobError",
    "JobFailed",
    "JobJournal",
    "JournalLocked",
    "MalformedJob",
    "QueueFull",
    "RemoteEngine",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "SubmitReceipt",
    "Telemetry",
    "parse_job_payload",
]
