"""The scheduler: drains the job board through the engine's pool.

One scheduler thread pops jobs off the :class:`~repro.service.queue.JobBoard`
in priority order, claims their still-pending units, and executes them
with :meth:`SimEngine.run_many` — which shards the batch into
trace-affine chunks over the persistent fork pool, exactly as a local
sweep would (the service adds no second scheduling layer; it reuses the
engine's).

Per-job control:

* **cancellation** — every job carries a :class:`threading.Event`; the
  engine checks it between configurations/chunks and raises
  :class:`~repro.sim.engine.RunCancelled`.  Units another live job
  still needs are recovered: results the engine already wrote to the
  store complete on the spot, the rest return to pending and the
  waiting jobs are requeued.
* **timeout** — ``timeout_s`` arms a timer that sets the same event,
  so a runaway job cannot hold the pool; the job finishes
  ``cancelled`` with a timeout message.
* **failure** — an execution error returns the claimed units to
  pending and requeues their jobs (the engine already absorbs worker
  crashes internally, so an error reaching the scheduler is unusual);
  a unit that keeps failing is *quarantined* after ``max_unit_failures``
  attempts — its jobs finish in the distinct terminal state
  ``"poisoned"`` with the last error's message — so a poison
  configuration cannot pin the scheduler in a retry loop.  The
  scheduler thread itself never dies.

Graceful drain: :meth:`Scheduler.stop` closes the board (no more
pops), lets the in-flight execution finish within ``timeout`` seconds,
then cancels it — queued jobs stay in the journal for the next boot.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro import faults
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.sim.engine import RunCancelled, SimEngine

from .jobs import Job
from .queue import JobBoard, Unit
from .telemetry import Telemetry

__all__ = ["Scheduler"]


class Scheduler:
    """Single executor thread between the board and the engine pool.

    Args:
        max_unit_failures: Execution failures a unit absorbs (with
            retries in between) before it is quarantined and its jobs
            finish ``poisoned``.
    """

    def __init__(
        self,
        board: JobBoard,
        engine: SimEngine,
        telemetry: Optional[Telemetry] = None,
        max_unit_failures: int = 3,
    ) -> None:
        if max_unit_failures < 1:
            raise ValueError("max_unit_failures must be at least 1")
        self.board = board
        self.engine = engine
        self.telemetry = telemetry
        self.max_unit_failures = max_unit_failures
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._current_lock = threading.Lock()
        self._current: Optional[Job] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Drain and stop: finish (or cancel) the in-flight execution."""
        self._stop.set()
        self.board.close()
        thread = self._thread
        if thread is None:
            return
        thread.join(timeout)
        if thread.is_alive():
            with self._current_lock:
                job = self._current
            if job is not None:
                job.cancel.set()  # type: ignore[attr-defined]
            thread.join(5.0)
        self._thread = None

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.board.pop(timeout=0.25)
            if job is None:
                continue
            with self._current_lock:
                self._current = job
            try:
                self._execute(job)
            finally:
                with self._current_lock:
                    self._current = None

    def _execute(self, job: Job) -> None:
        cancel: threading.Event = job.cancel  # type: ignore[attr-defined]
        timer: Optional[threading.Timer] = None
        if job.timeout_s is not None:
            elapsed = time.time() - getattr(job, "submitted_at", time.time())
            remaining = job.timeout_s - elapsed
            if remaining <= 0:
                cancel.set()
            else:
                timer = threading.Timer(remaining, cancel.set)
                timer.daemon = True
                timer.start()
        # The queue-wait span: submission to this claim.  Both ends come
        # from the board's own wall-clock stamps, so the span is exact
        # even when the scheduler was busy with earlier jobs.
        submitted_at = getattr(job, "submitted_at", None)
        started_at = getattr(job, "started_at", None)
        trace_id = getattr(job, "trace_id", None)
        root_span = getattr(job, "root_span_id", None)
        if submitted_at is not None and started_at is not None:
            wait = max(0.0, started_at - submitted_at)
            if self.telemetry is not None:
                self.telemetry.observe_queue_wait(wait)
            obs_trace.record_span(
                "job.wait", submitted_at, wait,
                trace_id=trace_id, parent_id=root_span,
                attrs={"job_id": job.id},
            )
        try:
            if cancel.is_set():
                self.board.finish_cancelled(job)
                return
            units = self.board.claim(job)
            if not units:
                # All units already done, or running on behalf of other
                # jobs — completion is event-driven from there.
                return
            self._run_units(job, units, cancel)
        finally:
            if timer is not None:
                timer.cancel()

    def _run_units(self, job: Job, units: List[Unit], cancel: threading.Event) -> None:
        configs = [unit.config for unit in units]
        started = time.monotonic()
        started_wall = time.time()
        trace_id = getattr(job, "trace_id", None) or obs_trace.new_trace_id()
        exec_span = obs_trace.new_span_id()
        # Bind the thread-local context so the engine's chunk spans can
        # parent themselves to this unit-execution span without any API
        # change through run_many.
        obs_trace.set_current(trace_id, exec_span)
        try:
            # The scheduler.unit failpoint models executor death before
            # the engine ever runs ("raise", exercising the unit
            # retry/quarantine path) and a timeout storm ("timeout",
            # tripping the same cancel event a deadline would).
            hit = faults.check("scheduler.unit")
            if hit is not None:
                if hit.action == "timeout":
                    cancel.set()
                elif hit.action == "raise":
                    raise faults.FaultInjected("scheduler.unit")
            results = self.engine.run_many(configs, cancel=cancel)
        except RunCancelled:
            self._recover_cancelled(job, units)
            self.board.finish_cancelled(job)
            obs_log.event("job.cancelled", trace_id=trace_id, job_id=job.id)
            return
        except Exception as error:  # noqa: BLE001 - the thread must survive
            message = f"{type(error).__name__}: {error}"
            retried = quarantined = 0
            for unit in units:
                outcome = self.board.note_unit_failure(
                    unit.key, message, limit=self.max_unit_failures
                )
                if outcome == "retried":
                    retried += 1
                elif outcome == "quarantined":
                    quarantined += 1
            if self.telemetry is not None:
                if retried:
                    self.telemetry.bump("unit_retries", retried)
                if quarantined:
                    self.telemetry.bump("units_quarantined", quarantined)
            obs_log.event(
                "job.units_failed", trace_id=trace_id, job_id=job.id,
                error=message, retried=retried, quarantined=quarantined,
            )
            return
        finally:
            obs_trace.clear_current()
        elapsed = time.monotonic() - started
        per_unit = elapsed / max(len(units), 1)
        if self.telemetry is not None:
            self.telemetry.bump("units_executed", len(units))
            self.telemetry.observe_unit_exec(per_unit, units=len(units))
        obs_trace.record_span(
            "unit.exec", started_wall, elapsed,
            trace_id=trace_id, span_id=exec_span,
            parent_id=getattr(job, "root_span_id", None),
            attrs={"job_id": job.id, "units": len(units)},
        )
        obs_log.event(
            "job.units_executed", trace_id=trace_id, job_id=job.id,
            units=len(units), elapsed_s=round(elapsed, 6),
        )
        for unit, result in zip(units, results):
            self.board.complete_unit(unit.key, result, elapsed=per_unit)

    def _recover_cancelled(self, job: Job, units: List[Unit]) -> None:
        """Salvage a cancelled execution's units for other waiting jobs.

        The engine writes results back incrementally, so units that
        finished before the cancellation are completed from the store;
        the rest go back to pending and any co-attached jobs requeue.
        """
        store = self.engine.store
        unfinished: List[str] = []
        for unit in units:
            result = store.get_by_key(unit.key) if store is not None else None
            if result is not None:
                self.board.complete_unit(unit.key, result)
            else:
                unfinished.append(unit.key)
        if unfinished:
            self.board.release_units(unfinished)
