"""Simulation-as-a-service: the stdlib HTTP server.

``repro serve`` turns the engine into an always-on job service with no
dependencies beyond the standard library
(:class:`http.server.ThreadingHTTPServer`).  The API:

=======  =========================  ===========================================
Method   Path                       Meaning
=======  =========================  ===========================================
POST     ``/v1/jobs``               Submit a run/sweep/batch job (202)
GET      ``/v1/jobs``               List retained jobs
GET      ``/v1/jobs/<id>``          Status + partial results (404 unknown)
POST     ``/v1/jobs/<id>/cancel``   Cancel (idempotent)
DELETE   ``/v1/jobs/<id>``          Alias for cancel
GET      ``/v1/results/<key>``      One result by canonical cache key
GET      ``/v1/policies``           The policy registry
GET      ``/healthz``               Liveness (503 while draining)
GET      ``/metrics``               Queue depth (total and per priority),
                                    cache/coalesce rate, jobs/sec,
                                    rolling 429 rate, latency percentiles
                                    and histograms;
                                    ``?format=prom`` renders the same
                                    snapshot as Prometheus text exposition
GET      ``/v1/metrics``            Alias for ``/metrics``
GET      ``/v1/trace``              Recent spans as Chrome-trace JSON
                                    (Perfetto-loadable);
                                    ``?since=SEQ`` returns only newer spans
=======  =========================  ===========================================

Submissions may carry an ``X-Repro-Trace: <trace>-<span>-<t_ms>``
header (minted by :class:`repro.service.client.ServiceClient`); the
server then records an honest ``client.submit`` root span and threads
the trace id through the job, its units, the scheduler spans and the
engine's chunk spans — all collected in a bounded in-process ring
served by ``/v1/trace``.

Error mapping: malformed JSON or structure → 400; unknown
policy/benchmark/node → 422 with the registry's message; queue full →
429 with a ``Retry-After`` header; oversized body → 413.  All
responses are JSON.

The HTTP handlers only parse and serialise; every decision lives in
:meth:`ServiceServer.dispatch`, which tests (and the in-process bench
mode) call directly.  Shutdown is a graceful drain: stop accepting,
let the in-flight execution finish (bounded), journal everything, shut
the engine pool down.
"""

from __future__ import annotations

import json
import logging
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs

from repro import faults
from repro.obs import export as obs_export
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.core.registry import get_policy_info, policy_names
from repro.sim.engine import SimEngine

from .jobs import Job, JobError, parse_job_payload
from .journal import JobJournal
from .queue import JobBoard, QueueFull
from .scheduler import Scheduler
from .telemetry import HISTOGRAM_BOUNDS, Histogram, Telemetry

__all__ = ["ServiceServer", "policies_payload"]

log = logging.getLogger("repro.service")

#: Largest accepted request body; a sweep spec is a few KB, so this is
#: generous while still bounding a hostile upload.
MAX_BODY_BYTES = 8 * 1024 * 1024

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)$")
_CANCEL_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)/cancel$")
# Result keys are lowercase-hex store digests; anything else is a 404
# at the routing layer (not a ValueError deep in the store).
_RESULT_PATH = re.compile(r"^/v1/results/([0-9a-f]+)$")


def policies_payload() -> Dict[str, Any]:
    """The policy registry as JSON (shared with ``repro policies``)."""
    payload: Dict[str, Any] = {}
    for name in policy_names():
        info = get_policy_info(name)
        payload[name] = {
            "defaults": {key: value for key, value in info.defaults.items()},
            "aliases": list(info.aliases),
            "scheduler_extra_latency": info.scheduler_extra_latency,
            "description": info.description,
        }
    return payload


class ServiceServer:
    """The job-queue service wired together: board, scheduler, HTTP.

    Args:
        engine: The engine executing every unit (its worker pool, LRU,
            result store and fast/reference setting are the service's).
        host / port: Bind address; port ``0`` picks an ephemeral port
            (tests and the bench harness use this).
        queue_limit: Live jobs admitted before 429.
        journal: Write-ahead journal path (or instance); ``None``
            disables persistence across restarts.
    """

    def __init__(
        self,
        engine: Optional[SimEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 256,
        journal: Union[JobJournal, str, Path, None] = None,
        retention_jobs: int = 1024,
        retention_results: int = 4096,
    ) -> None:
        self.engine = engine if engine is not None else SimEngine(fast=True)
        self.telemetry = Telemetry()
        self.board = JobBoard(
            store=self.engine.store,
            queue_limit=queue_limit,
            retention_jobs=retention_jobs,
            retention_results=retention_results,
        )
        self.journal = (
            JobJournal(journal)
            if isinstance(journal, (str, Path))
            else journal
        )
        self.board.on_job_finished = self._job_finished
        # Tracing is always on server-side: the ring is bounded and a
        # span record is a deque append, negligible next to a unit
        # execution.  Installing here makes this server the process's
        # span sink (the scheduler and engine record through the module
        # global), which is exactly right for the one-server-per-process
        # production topology and for in-process chaos/tests.
        self.spans = obs_trace.install_recorder()
        self.scheduler = Scheduler(self.board, self.engine, self.telemetry)
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self._httpd.daemon_threads = True
        self._serve_thread: Optional[threading.Thread] = None
        self._replayed = 0

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def replayed_jobs(self) -> int:
        """Jobs resumed from the journal at the last :meth:`start`."""
        return self._replayed

    # ------------------------------------------------------------------
    def _job_finished(self, job: Job) -> None:
        latency = None
        submitted = getattr(job, "submitted_at", None)
        finished = getattr(job, "finished_at", None)
        if submitted is not None and finished is not None:
            latency = max(0.0, finished - submitted)
        self.telemetry.observe_job_finished(job.status, latency)
        if self.journal is not None:
            try:
                self.journal.record_finish(job)
            except (OSError, ValueError):  # pragma: no cover - disk full etc.
                log.exception("journal write failed for job %s", job.id)

    def _resume_from_journal(self) -> None:
        if self.journal is None:
            return
        jobs = self.journal.replay()
        self.journal.compact(jobs)
        self._replayed = 0
        for job in jobs:
            try:
                self.board.submit(job)
                self._replayed += 1
            except (QueueFull, ValueError):
                log.exception("could not resume journaled job %s", job.id)
        if self._replayed:
            log.info("resumed %d unfinished job(s) from the journal", self._replayed)

    # ------------------------------------------------------------------
    def start(self) -> "ServiceServer":
        """Replay the journal, start the scheduler and the HTTP thread."""
        self._resume_from_journal()
        self.scheduler.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def stop(self, drain_timeout: float = 10.0) -> None:
        """Graceful drain (idempotent): stop accepting, finish, shut down."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._draining.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        self.scheduler.stop(timeout=drain_timeout)
        if self.journal is not None:
            self.journal.close()
        # terminate(), not close(): a drain timeout may have abandoned a
        # long chunk on a worker, and exit must not leave it orphaned.
        self.engine.terminate()
        log.info("service stopped")

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(
        self, drain_timeout: float = 10.0, ready_file: Union[str, Path, None] = None
    ) -> None:
        """Blocking entry point for ``repro serve``.

        Installs SIGTERM/SIGINT handlers that trigger the graceful
        drain, then blocks until one arrives.  ``ready_file`` (when
        given) receives the bound URL once the server is accepting —
        how a supervising process (the chaos driver, a test harness)
        discovers an ephemeral ``--port 0`` without scraping logs.
        """
        done = threading.Event()

        def _drain(signum, frame):  # noqa: ANN001 - signal signature
            log.info("signal %s: draining", signum)
            done.set()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _drain)
        self.start()
        log.info("repro service listening on %s", self.url)
        if ready_file is not None:
            Path(ready_file).write_text(self.url + "\n", encoding="utf-8")
        try:
            done.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.stop(drain_timeout=drain_timeout)

    # ------------------------------------------------------------------
    # Routing (transport-free; tests call this directly)
    # ------------------------------------------------------------------
    def dispatch(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Any] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        """Handle one request; returns ``(status, payload, headers)``.

        ``payload`` is a JSON-serialisable dict for every endpoint but
        ``/metrics?format=prom``, which returns pre-rendered text.
        ``headers`` (when given) is any mapping with ``.get`` — the
        HTTP handler passes the request headers so the trace context
        in ``X-Repro-Trace`` propagates; tests may omit it.
        """
        self.telemetry.bump("http_requests")
        try:
            status, payload, out_headers = self._route(method, path, body, headers)
        except Exception as error:  # noqa: BLE001 - must answer, not die
            log.exception("unhandled error for %s %s", method, path)
            status = 500
            payload = {"error": f"internal error: {type(error).__name__}"}
            out_headers = {}
        if status >= 400:
            self.telemetry.bump("http_errors")
        return status, payload, out_headers

    def _route(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        request_headers: Optional[Any] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        path, _, query = path.partition("?")
        params = parse_qs(query) if query else {}
        if path == "/healthz":
            if self._draining.is_set():
                return 503, {"status": "draining"}, {}
            return 200, {
                "status": "ok",
                "uptime_s": self.telemetry.snapshot()["uptime_s"],
                "queue_depth": self.board.depth(),
            }, {}
        if path in ("/metrics", "/v1/metrics"):
            metrics = self._metrics()
            if params.get("format", [""])[0] == "prom":
                return 200, obs_export.prometheus_text(metrics), {
                    "Content-Type": "text/plain; version=0.0.4; charset=utf-8"
                }
            return 200, metrics, {}
        if path == "/v1/trace":
            since: Optional[int] = None
            raw_since = params.get("since", [""])[0]
            if raw_since:
                try:
                    since = int(raw_since)
                except ValueError:
                    return 400, {"error": f"bad since value {raw_since!r}"}, {}
            spans = self.spans.spans(since=since)
            return 200, obs_export.chrome_trace(
                spans,
                last_seq=self.spans.last_seq(),
                dropped=self.spans.dropped,
            ), {}
        if path == "/v1/policies":
            return 200, {"policies": policies_payload()}, {}
        if path == "/v1/jobs":
            if method == "POST":
                ctx = obs_trace.parse_header(
                    request_headers.get(obs_trace.HEADER)
                    if request_headers is not None
                    else None
                )
                return self._submit(body, ctx)
            if method == "GET":
                jobs = [job.summary() for job in self.board.jobs()]
                return 200, {"jobs": jobs, "queue_depth": self.board.depth()}, {}
            return 405, {"error": "method not allowed"}, {"Allow": "GET, POST"}
        match = _CANCEL_PATH.match(path)
        if match and method == "POST":
            return self._cancel(match.group(1))
        match = _JOB_PATH.match(path)
        if match:
            if method == "GET":
                payload = self.board.job_payload(match.group(1))
                if payload is None:
                    return 404, {"error": f"unknown job {match.group(1)!r}"}, {}
                return 200, payload, {}
            if method == "DELETE":
                return self._cancel(match.group(1))
            return 405, {"error": "method not allowed"}, {"Allow": "GET, DELETE"}
        match = _RESULT_PATH.match(path)
        if match and method == "GET":
            key = match.group(1)
            result = self.board.result_payload(key)
            if result is None:
                return 404, {"error": f"no result for key {key!r}"}, {}
            return 200, {"key": key, "result": result}, {}
        return 404, {"error": f"no such endpoint: {method} {path}"}, {}

    def _submit(
        self, body: Optional[bytes], ctx: Optional[obs_trace.TraceContext] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        admit_start = time.time()
        if self._draining.is_set():
            return 503, {"error": "server is draining"}, {"Retry-After": "5"}
        if not body:
            return 400, {"error": "empty request body"}, {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}, {}
        try:
            job = parse_job_payload(payload)
        except JobError as error:
            return error.status, {"error": str(error)}, {}
        if self.board.get(job.id) is not None:
            # Checked before the WAL write so a duplicate id (possibly
            # with a different payload) never shadows the original's
            # journal entry; board.submit re-checks under its lock.
            return 409, {"error": f"duplicate job id {job.id!r}"}, {}
        self.telemetry.bump("jobs_submitted")
        self.telemetry.bump("units_requested", len(job.configs))
        # Write-ahead: the journal must know the job before the client
        # is told it was admitted.  A failed WAL write therefore rejects
        # the job (503, retryable) — admitting work the journal cannot
        # replay would silently drop it on the next restart.
        if self.journal is not None:
            try:
                self.journal.record_submit(job)
            except OSError as error:
                self.telemetry.bump("journal_errors")
                log.warning("journal write failed; job not admitted: %s", error)
                return 503, {
                    "error": f"journal write failed; job not admitted: {error}"
                }, {"Retry-After": "1"}
        # Trace identity rides on the job as runtime attributes (never
        # journaled): the board tags units with it at admission, the
        # scheduler parents its spans to it.  A client-minted context
        # wins; otherwise the server mints a root of its own.
        job.trace_id = ctx.trace_id if ctx else obs_trace.new_trace_id()
        job.root_span_id = ctx.span_id if ctx else obs_trace.new_span_id()
        try:
            receipt = self.board.submit(job)
        except QueueFull as error:
            self.telemetry.observe_rejection()
            self._void_journal_entry(job, "queue full")
            return 429, {"error": str(error)}, {
                "Retry-After": str(int(max(1, error.retry_after)))
            }
        except ValueError as error:
            # Duplicate client-supplied id: the board never admitted it.
            # No compensating WAL event — a terminal event for this id
            # would pop the *original* job's submit on replay.  The
            # duplicate submit line is harmless: replaying it while the
            # original is unfinished is exactly the idempotent-retry
            # semantics the journal promises, and after the original
            # finishes its results are served from the store instantly.
            self.telemetry.bump("jobs_rejected")
            return 409, {"error": str(error)}, {}
        self.telemetry.bump("units_cached", receipt.cached)
        self.telemetry.bump("units_coalesced", receipt.coalesced)
        admit_end = time.time()
        attrs = {
            "job_id": job.id,
            "units": len(job.configs),
            "cached": receipt.cached,
            "coalesced": receipt.coalesced,
            "priority": job.priority,
        }
        if ctx is not None:
            # The root span starts at the client's send time (same-host
            # clocks in the CI topology; across hosts the root absorbs
            # the skew and the server-side children stay exact).
            root_start = min(ctx.t_ms / 1000.0, admit_start)
            obs_trace.record_span(
                "client.submit", root_start, admit_end - root_start,
                trace_id=job.trace_id, span_id=job.root_span_id, attrs=attrs,
            )
            obs_trace.record_span(
                "server.admit", admit_start, admit_end - admit_start,
                trace_id=job.trace_id, parent_id=job.root_span_id, attrs=attrs,
            )
        else:
            obs_trace.record_span(
                "server.admit", admit_start, admit_end - admit_start,
                trace_id=job.trace_id, span_id=job.root_span_id, attrs=attrs,
            )
        obs_log.event(
            "job.submitted", trace_id=job.trace_id, job_id=job.id,
            units=len(job.configs), cached=receipt.cached,
            coalesced=receipt.coalesced,
        )
        return 202, receipt.to_dict(), {}

    def _void_journal_entry(self, job: Job, reason: str) -> None:
        """Append a terminal event for a write-ahead'd job that was rejected.

        The WAL records the submit before admission; without a matching
        terminal event a restart's replay would resurrect — and a
        compaction preserve — a job the client saw rejected.
        """
        job.status = "cancelled"
        job.error = reason
        if self.journal is not None:
            self.journal.record_finish(job)

    def _cancel(self, job_id: str) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        job = self.board.cancel(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}, {}
        return 200, job.summary(), {}

    def _metrics(self) -> Dict[str, Any]:
        metrics = self.telemetry.snapshot()
        engine_stats = dict(self.engine.stats)
        counters = metrics.get("counters", {})
        # Only the lookup-outcome counters — the engine's recovery
        # stats (pool rebuilds, chunk retries) are not lookups and must
        # not dilute the hit rate.
        lookups = (
            engine_stats.get("memory_hits", 0)
            + engine_stats.get("store_hits", 0)
            + engine_stats.get("computed", 0)
        )
        metrics["queue_depth"] = self.board.depth()
        metrics["queue_depth_by_priority"] = {
            str(priority): depth
            for priority, depth in self.board.priority_depths().items()
        }
        metrics["pending_units"] = self.board.pending_units()
        metrics["engine"] = engine_stats
        metrics["engine_cache_hit_rate"] = (
            round(
                (engine_stats["memory_hits"] + engine_stats["store_hits"]) / lookups, 4
            )
            if lookups
            else None
        )
        # Robustness surface: every recovery the stack performed, in
        # one place, so a chaos campaign (or an operator) can see
        # faults being absorbed rather than surfacing.
        metrics["retries_total"] = (
            engine_stats.get("chunk_retries", 0) + counters.get("unit_retries", 0)
        )
        metrics["quarantined_units"] = counters.get("units_quarantined", 0)
        metrics["pool_rebuilds"] = engine_stats.get("pool_rebuilds", 0)
        store = self.engine.store
        metrics["store_corrupt_entries"] = (
            store.stats.get("corrupt_entries", 0) if store is not None else 0
        )
        metrics["draining"] = self._draining.is_set()
        # Chunk-latency histogram from the span ring: windowed (the ring
        # is bounded), unlike the cumulative telemetry histograms — the
        # exporter's HELP line says so.
        chunk_hist = Histogram(HISTOGRAM_BOUNDS)
        for span in self.spans.spans():
            if span.name == "engine.chunk":
                chunk_hist.observe(span.duration_s)
        metrics.setdefault("histograms", {})["chunk_exec_s"] = chunk_hist.as_dict()
        metrics["spans_recorded"] = self.spans.last_seq()
        metrics["spans_dropped"] = self.spans.dropped
        return metrics


def _make_handler(service: ServiceServer):
    """A request-handler class bound to one :class:`ServiceServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-service/1"

        def _respond(self) -> None:
            body: Optional[bytes] = None
            length = self.headers.get("Content-Length")
            if length is not None:
                try:
                    size = int(length)
                except ValueError:
                    self._send(400, {"error": "bad Content-Length"}, {})
                    return
                if size > MAX_BODY_BYTES:
                    # The body is not read; the connection must close or
                    # the unread bytes would be parsed as the next request.
                    self.close_connection = True
                    self._send(
                        413,
                        {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"},
                        {},
                    )
                    return
                body = self.rfile.read(size) if size else b""
            # The server.response failpoint fires before dispatch, so an
            # injected failure never half-executes a submit: "drop"
            # closes the connection unanswered (the client sees a
            # transport error), "error" answers 503 (retryable).
            hit = faults.check("server.response")
            if hit is not None:
                if hit.action == "drop":
                    self.close_connection = True
                    return
                if hit.action == "error":
                    self._send(
                        503,
                        {"error": "injected fault: server.response"},
                        {"Retry-After": "1"},
                    )
                    return
            status, payload, headers = service.dispatch(
                self.command, self.path, body, self.headers
            )
            self._send(status, payload, headers)

        def _send(self, status: int, payload: Any, headers: Dict[str, str]) -> None:
            if isinstance(payload, str):
                # Pre-rendered text (Prometheus exposition); the route
                # supplies the content type.
                data = payload.encode("utf-8")
                content_type = headers.pop(
                    "Content-Type", "text/plain; charset=utf-8"
                )
            else:
                data = json.dumps(payload).encode("utf-8")
                content_type = "application/json"
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            try:
                self.wfile.write(data)
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                pass

        do_GET = do_POST = do_DELETE = _respond

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            log.info("%s - %s", self.address_string(), format % args)

    return Handler
