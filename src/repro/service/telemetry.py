"""Service telemetry: counters, rates and latency percentiles.

One :class:`Telemetry` instance is shared by the HTTP layer (request
counts), the board hooks (job lifecycle, coalescing/cache admission
stats) and the scheduler (unit execution times).  Everything is behind
one lock and cheap enough to update on every event; ``/metrics``
serialises a snapshot.

Latency percentiles are computed over a bounded window of the most
recent job completions (submission → terminal state, i.e. what a
client actually waits), so they track current behaviour instead of the
whole process history; throughput is reported both since boot and over
a sliding recent window.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Optional

__all__ = ["Telemetry", "percentile"]

#: Sliding window for "recent" throughput, seconds.
_RATE_WINDOW_S = 60.0


def percentile(values, fraction: float) -> Optional[float]:
    """Nearest-rank percentile of ``values`` (``None`` when empty)."""
    data = sorted(values)
    if not data:
        return None
    rank = max(0, min(len(data) - 1, int(round(fraction * (len(data) - 1)))))
    return data[rank]


class Telemetry:
    """Thread-safe service metrics."""

    def __init__(self, latency_window: int = 1024) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self.counters: Dict[str, int] = {
            "http_requests": 0,
            "http_errors": 0,
            "jobs_submitted": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_rejected": 0,
            "jobs_poisoned": 0,
            "units_requested": 0,
            "units_cached": 0,
            "units_coalesced": 0,
            "units_executed": 0,
            "unit_retries": 0,
            "units_quarantined": 0,
            "journal_errors": 0,
        }
        self._job_latencies = deque(maxlen=latency_window)
        self._finish_times = deque(maxlen=4096)
        self._rejection_times = deque(maxlen=4096)

    # ------------------------------------------------------------------
    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def observe_rejection(self) -> None:
        """Record one 429 admission rejection (drives the rolling counter).

        Load generators read the rolling figure to tell "the queue was
        full a minute ago" from "the queue is full *now*"; the plain
        ``jobs_rejected`` counter only ever grows.
        """
        with self._lock:
            self.counters["jobs_rejected"] += 1
            self._rejection_times.append(time.monotonic())

    def observe_job_finished(self, status: str, latency_s: Optional[float]) -> None:
        """Record one job reaching a terminal state."""
        with self._lock:
            key = f"jobs_{status}"
            self.counters[key] = self.counters.get(key, 0) + 1
            self._finish_times.append(time.monotonic())
            if latency_s is not None and status == "done":
                self._job_latencies.append(latency_s)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` document (queue/engine fields added by caller)."""
        with self._lock:
            now = time.monotonic()
            uptime = max(now - self._started_mono, 1e-9)
            completed = (
                self.counters["jobs_done"]
                + self.counters["jobs_failed"]
                + self.counters["jobs_cancelled"]
                + self.counters["jobs_poisoned"]
            )
            recent = [t for t in self._finish_times if now - t <= _RATE_WINDOW_S]
            rejected_recent = sum(
                1 for t in self._rejection_times if now - t <= _RATE_WINDOW_S
            )
            window = min(uptime, _RATE_WINDOW_S)
            requested = self.counters["units_requested"]
            served_without_pool = (
                self.counters["units_cached"] + self.counters["units_coalesced"]
            )
            return {
                "uptime_s": round(uptime, 3),
                "counters": dict(self.counters),
                "jobs_per_s": round(completed / uptime, 4),
                "jobs_per_s_recent": round(len(recent) / window, 4),
                "job_latency_s": {
                    "p50": percentile(self._job_latencies, 0.50),
                    "p95": percentile(self._job_latencies, 0.95),
                    "samples": len(self._job_latencies),
                },
                "coalesce_rate": (
                    round(served_without_pool / requested, 4) if requested else None
                ),
                "rejections_recent": rejected_recent,
                "rejected_per_s_recent": round(rejected_recent / window, 4),
            }
