"""Service telemetry: counters, rates, latency percentiles, histograms.

One :class:`Telemetry` instance is shared by the HTTP layer (request
counts), the board hooks (job lifecycle, coalescing/cache admission
stats) and the scheduler (queue-wait and unit execution times).
Everything is behind one lock and cheap enough to update on every
event; ``/metrics`` serialises a snapshot and ``/metrics?format=prom``
re-renders the same snapshot as Prometheus text exposition.

Latency *percentiles* are computed over a bounded window of the most
recent observations, so they track current behaviour instead of the
whole process history; throughput is reported both since boot and over
a sliding recent window.  Latency *histograms* (:class:`Histogram`)
are cumulative since boot with fixed explicit bucket bounds — the form
a scraper can rate() and aggregate across restarts, and the form the
Prometheus exporter needs (p50/p95 snapshots cannot be aggregated).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["HISTOGRAM_BOUNDS", "Histogram", "Telemetry", "percentile"]

#: Sliding window for "recent" throughput, seconds.
_RATE_WINDOW_S = 60.0

#: Shared explicit bucket upper bounds (seconds) for every service
#: latency histogram; the last implicit bucket is +Inf.
HISTOGRAM_BOUNDS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def percentile(values, fraction: float) -> Optional[float]:
    """Nearest-rank percentile of ``values`` (``None`` when empty)."""
    data = sorted(values)
    if not data:
        return None
    rank = max(0, min(len(data) - 1, int(round(fraction * (len(data) - 1)))))
    return data[rank]


class Histogram:
    """A fixed-bound latency histogram (counts are *not* cumulative).

    ``counts`` has one entry per bound plus the +Inf bucket; the
    Prometheus exporter computes the cumulative ``le`` sums, JSON
    consumers get the raw per-bucket counts.  Not thread-safe on its
    own — :class:`Telemetry` updates it under its lock.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = HISTOGRAM_BOUNDS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, n: int = 1) -> None:
        self.counts[bisect_left(self.bounds, value)] += n
        self.sum += value * n
        self.count += n

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": round(self.sum, 6),
            "count": self.count,
        }


class Telemetry:
    """Thread-safe service metrics."""

    def __init__(self, latency_window: int = 1024) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self.counters: Dict[str, int] = {
            "http_requests": 0,
            "http_errors": 0,
            "jobs_submitted": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_rejected": 0,
            "jobs_poisoned": 0,
            "units_requested": 0,
            "units_cached": 0,
            "units_coalesced": 0,
            "units_executed": 0,
            "unit_retries": 0,
            "units_quarantined": 0,
            "journal_errors": 0,
        }
        self._job_latencies = deque(maxlen=latency_window)
        self._unit_latencies = deque(maxlen=latency_window)
        self._wait_latencies = deque(maxlen=latency_window)
        self._finish_times = deque(maxlen=4096)
        self._rejection_times = deque(maxlen=4096)
        self._hist_job = Histogram()
        self._hist_unit = Histogram()
        self._hist_wait = Histogram()

    # ------------------------------------------------------------------
    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def observe_rejection(self) -> None:
        """Record one 429 admission rejection (drives the rolling counter).

        Load generators read the rolling figure to tell "the queue was
        full a minute ago" from "the queue is full *now*"; the plain
        ``jobs_rejected`` counter only ever grows.
        """
        with self._lock:
            self.counters["jobs_rejected"] += 1
            self._rejection_times.append(time.monotonic())

    def observe_job_finished(self, status: str, latency_s: Optional[float]) -> None:
        """Record one job reaching a terminal state."""
        with self._lock:
            key = f"jobs_{status}"
            self.counters[key] = self.counters.get(key, 0) + 1
            self._finish_times.append(time.monotonic())
            if latency_s is not None and status == "done":
                self._job_latencies.append(latency_s)
                self._hist_job.observe(latency_s)

    def observe_queue_wait(self, wait_s: float) -> None:
        """Record one job's queue wait (submission → scheduler claim)."""
        wait_s = max(0.0, wait_s)
        with self._lock:
            self._wait_latencies.append(wait_s)
            self._hist_wait.observe(wait_s)

    def observe_unit_exec(self, per_unit_s: float, units: int = 1) -> None:
        """Record a batch execution as ``units`` per-unit observations."""
        if units < 1:
            return
        per_unit_s = max(0.0, per_unit_s)
        with self._lock:
            self._unit_latencies.append(per_unit_s)
            self._hist_unit.observe(per_unit_s, n=units)

    # ------------------------------------------------------------------
    @staticmethod
    def _latency_block(window) -> Dict[str, Any]:
        return {
            "p50": percentile(window, 0.50),
            "p95": percentile(window, 0.95),
            "p99": percentile(window, 0.99),
            "samples": len(window),
        }

    def snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` document (queue/engine fields added by caller)."""
        with self._lock:
            now = time.monotonic()
            uptime = max(now - self._started_mono, 1e-9)
            completed = (
                self.counters["jobs_done"]
                + self.counters["jobs_failed"]
                + self.counters["jobs_cancelled"]
                + self.counters["jobs_poisoned"]
            )
            recent = [t for t in self._finish_times if now - t <= _RATE_WINDOW_S]
            rejected_recent = sum(
                1 for t in self._rejection_times if now - t <= _RATE_WINDOW_S
            )
            window = min(uptime, _RATE_WINDOW_S)
            requested = self.counters["units_requested"]
            served_without_pool = (
                self.counters["units_cached"] + self.counters["units_coalesced"]
            )
            return {
                "uptime_s": round(uptime, 3),
                "counters": dict(self.counters),
                "jobs_per_s": round(completed / uptime, 4),
                "jobs_per_s_recent": round(len(recent) / window, 4),
                "job_latency_s": self._latency_block(self._job_latencies),
                "queue_wait_s": self._latency_block(self._wait_latencies),
                "unit_exec_s": self._latency_block(self._unit_latencies),
                "histograms": {
                    "job_latency_s": self._hist_job.as_dict(),
                    "queue_wait_s": self._hist_wait.as_dict(),
                    "unit_exec_s": self._hist_unit.as_dict(),
                },
                "coalesce_rate": (
                    round(served_without_pool / requested, 4) if requested else None
                ),
                "rejections_recent": rejected_recent,
                "rejected_per_s_recent": round(rejected_recent / window, 4),
            }
