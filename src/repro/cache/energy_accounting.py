"""Bitline-discharge energy ledger.

The paper's methodology (Section 3) is two-level: the architectural
simulation produces, for every subarray, the distribution of pulled-up and
isolated (idle) intervals plus the number of precharge-device toggles, and
those are combined with the circuit-level discharge/overhead rates to
obtain energy.  :class:`EnergyLedger` is exactly that combination step.

The precharge-control policies (static pull-up, oracle, on-demand, gated,
resizable) notify the ledger of four kinds of events:

* ``note_precharged_interval(subarray, cycles)`` — the subarray's bitlines
  were pulled up (statically or by the policy) for ``cycles`` cycles,
  paying the full static discharge rate;
* ``note_isolated_interval(subarray, cycles)`` — the bitlines were
  isolated for ``cycles`` cycles, paying only the decaying residual
  discharge;
* ``note_toggle(subarray)`` — the precharge devices were switched
  (isolate + later restore), paying the gate-switching overhead;
* ``note_access(subarray)`` — a read/write access occurred, paying the
  dynamic access energy (used for the "fraction of overall cache energy"
  figures, not for the bitline-discharge ratio itself).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.circuits.subarray_circuit import SubarrayCircuit

__all__ = ["EnergyLedger", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Summary of a run's cache energy, all in joules.

    Attributes:
        precharged_discharge_j: Bitline discharge while pulled up.
        isolated_discharge_j: Residual bitline discharge while isolated.
        toggle_overhead_j: Precharge-device switching overhead.
        dynamic_access_j: Dynamic read/write access energy.
        static_reference_j: Bitline discharge the same run would have paid
            under blind static pull-up (the normalisation baseline).
        precharged_subarray_cycles: Total subarray-cycles spent pulled up.
        total_subarray_cycles: Subarray-cycles available (subarrays x cycles).
    """

    precharged_discharge_j: float
    isolated_discharge_j: float
    toggle_overhead_j: float
    dynamic_access_j: float
    static_reference_j: float
    precharged_subarray_cycles: float
    total_subarray_cycles: float

    @property
    def bitline_discharge_j(self) -> float:
        """Total bitline discharge plus isolation overhead under the policy."""
        return (
            self.precharged_discharge_j
            + self.isolated_discharge_j
            + self.toggle_overhead_j
        )

    @property
    def relative_discharge(self) -> float:
        """Bitline discharge relative to blind static pull-up (Figure 8/9)."""
        if self.static_reference_j <= 0:
            return 0.0
        return self.bitline_discharge_j / self.static_reference_j

    @property
    def discharge_savings(self) -> float:
        """Fraction of the static-pull-up bitline discharge eliminated."""
        return max(0.0, 1.0 - self.relative_discharge)

    @property
    def precharged_fraction(self) -> float:
        """Time-averaged fraction of subarrays kept precharged (Figure 8/10)."""
        if self.total_subarray_cycles <= 0:
            return 0.0
        return min(1.0, self.precharged_subarray_cycles / self.total_subarray_cycles)

    @property
    def total_cache_energy_j(self) -> float:
        """Total cache energy under the policy (discharge + dynamic)."""
        return self.bitline_discharge_j + self.dynamic_access_j

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnergyBreakdown":
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(**data)

    @property
    def overall_energy_savings(self) -> float:
        """Savings as a fraction of the *whole cache's* static-pull-up energy.

        The paper reports both the bitline-discharge reduction and the
        corresponding overall cache energy reduction (e.g. 83% discharge /
        42% overall for gated precharging on data caches at 70nm).
        """
        baseline = self.static_reference_j + self.dynamic_access_j
        if baseline <= 0:
            return 0.0
        return max(0.0, (baseline - self.total_cache_energy_j) / baseline)


class EnergyLedger:
    """Accumulates per-subarray residency and converts it to energy."""

    def __init__(self, circuit: SubarrayCircuit, n_subarrays: int) -> None:
        if n_subarrays < 1:
            raise ValueError("need at least one subarray")
        self._circuit = circuit
        self._isolated_energy_fn = circuit.isolated_discharge_energy_j
        self._n_subarrays = n_subarrays
        self._precharged_cycles = 0.0
        self._isolated_cycles = 0.0
        self._isolated_energy_j = 0.0
        self._toggles = 0
        self._accesses = 0
        self._finalized_total_cycles: Optional[int] = None

    # ------------------------------------------------------------------
    # Event notifications
    # ------------------------------------------------------------------
    def note_precharged_interval(self, subarray: int, cycles: float) -> None:
        """The subarray spent ``cycles`` cycles with bitlines pulled up."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._precharged_cycles += cycles

    def note_isolated_interval(self, subarray: int, cycles: float) -> None:
        """The subarray spent ``cycles`` cycles isolated (one contiguous interval)."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._isolated_cycles += cycles
        self._isolated_energy_j += self._circuit.isolated_discharge_energy_j(cycles)

    def note_toggle(self, subarray: int) -> None:
        """The subarray's precharge devices were toggled off and later on."""
        self._toggles += 1

    def note_gated_interval(self, subarray: int, interval: int, hold_cycles: int) -> bool:
        """Account one inter-access interval under a hold-then-isolate policy.

        Fuses the ``note_precharged_interval`` / ``note_isolated_interval``
        / ``note_toggle`` sequence every hold-style policy (oracle,
        on-demand, gated) performs per access into a single call on the
        simulation's hottest path.  The arithmetic and its order are
        exactly the unfused sequence's, so accumulated energies match
        bit-for-bit.  Returns ``True`` when the interval ended with the
        subarray isolated (i.e. the precharge devices were toggled).
        """
        if interval <= hold_cycles:
            if interval > 0:
                self._precharged_cycles += interval
            return False
        if hold_cycles > 0:
            self._precharged_cycles += hold_cycles
        isolated = interval - hold_cycles
        self._isolated_cycles += isolated
        self._isolated_energy_j += self._isolated_energy_fn(isolated)
        self._toggles += 1
        return True

    def note_access(self, subarray: int) -> None:
        """A read/write access touched the subarray."""
        self._accesses += 1

    def note_access_batch(self, count: int) -> None:
        """Record ``count`` accesses at once.

        The access tally is an independent integer accumulator, so a
        caller that already counts its accesses (the fast-path cache
        model) may defer the ledger update to one batched call — the
        resulting breakdown is identical.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self._accesses += count

    # ------------------------------------------------------------------
    @property
    def toggles(self) -> int:
        """Number of isolate/restore toggles recorded."""
        return self._toggles

    @property
    def accesses(self) -> int:
        """Number of accesses recorded."""
        return self._accesses

    def breakdown(self, total_cycles: int) -> EnergyBreakdown:
        """Convert the accumulated residency into an :class:`EnergyBreakdown`.

        Args:
            total_cycles: Length of the simulated run in cycles; sets the
                static-pull-up reference energy.
        """
        if total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        per_cycle = self._circuit.static_discharge_energy_per_cycle_j
        static_reference = per_cycle * total_cycles * self._n_subarrays
        return EnergyBreakdown(
            precharged_discharge_j=self._precharged_cycles * per_cycle,
            isolated_discharge_j=self._isolated_energy_j,
            toggle_overhead_j=self._toggles * self._circuit.toggle_switching_energy_j,
            dynamic_access_j=self._accesses * self._circuit.read_access_energy_j,
            static_reference_j=static_reference,
            precharged_subarray_cycles=self._precharged_cycles,
            total_subarray_cycles=float(total_cycles) * self._n_subarrays,
        )
