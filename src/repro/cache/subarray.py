"""Per-subarray access statistics.

The architectural side of the paper's methodology is driven entirely by
*when each subarray is accessed*: the pull-up/idle time distributions
(Section 3) are combined with the circuit-level discharge rates to compute
energy, and the access-interval (access frequency) distributions drive the
locality study of Section 6.1 (Figures 5 and 6).

:class:`SubarrayStats` records, for one subarray, the access count and the
distribution of gaps between consecutive accesses; :class:`SubarrayTracker`
aggregates all subarrays of one cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["SubarrayStats", "SubarrayTracker"]


@dataclass
class SubarrayStats:
    """Access history summary of one subarray.

    Attributes:
        index: Subarray index within its cache.
        accesses: Number of accesses observed.
        last_access_cycle: Cycle of the most recent access, or ``None`` if
            the subarray was never touched.
        gap_histogram: Histogram of inter-access gaps, bucketed by
            power-of-ten ranges: key ``k`` counts gaps with
            ``10**k <= gap < 10**(k+1)`` (key 0 holds gaps below 10).
        total_gap_cycles: Sum of all recorded gaps (for mean interval).
        recorded_gaps: Number of gaps recorded.
    """

    index: int
    accesses: int = 0
    last_access_cycle: Optional[int] = None
    gap_histogram: Dict[int, int] = field(default_factory=dict)
    total_gap_cycles: int = 0
    recorded_gaps: int = 0

    def record_access(self, cycle: int) -> Optional[int]:
        """Record an access at ``cycle``; return the gap since the previous one."""
        gap: Optional[int] = None
        if self.last_access_cycle is not None:
            gap = max(0, cycle - self.last_access_cycle)
            bucket = 0
            g = gap
            while g >= 10:
                g //= 10
                bucket += 1
            self.gap_histogram[bucket] = self.gap_histogram.get(bucket, 0) + 1
            self.total_gap_cycles += gap
            self.recorded_gaps += 1
        self.accesses += 1
        self.last_access_cycle = cycle
        return gap

    @property
    def mean_gap_cycles(self) -> float:
        """Mean inter-access gap in cycles (``inf`` if fewer than two accesses)."""
        if self.recorded_gaps == 0:
            return float("inf")
        return self.total_gap_cycles / self.recorded_gaps

    @property
    def mean_access_frequency(self) -> float:
        """Mean accesses per cycle (reciprocal of the mean gap)."""
        mean_gap = self.mean_gap_cycles
        if mean_gap == 0:
            return 1.0
        if mean_gap == float("inf"):
            return 0.0
        return 1.0 / mean_gap


class SubarrayTracker:
    """Aggregated subarray access statistics for one cache."""

    def __init__(self, n_subarrays: int) -> None:
        if n_subarrays < 1:
            raise ValueError("need at least one subarray")
        self._stats: List[SubarrayStats] = [
            SubarrayStats(index=i) for i in range(n_subarrays)
        ]
        self._all_gaps: List[Tuple[int, int]] = []  # (subarray, gap)
        self.total_accesses = 0

    # ------------------------------------------------------------------
    @property
    def n_subarrays(self) -> int:
        """Number of tracked subarrays."""
        return len(self._stats)

    def __getitem__(self, index: int) -> SubarrayStats:
        return self._stats[index]

    def __iter__(self) -> Iterable[SubarrayStats]:
        return iter(self._stats)

    def record_access(self, subarray: int, cycle: int) -> Optional[int]:
        """Record an access; returns the inter-access gap for that subarray."""
        gap = self._stats[subarray].record_access(cycle)
        self.total_accesses += 1
        if gap is not None:
            self._all_gaps.append((subarray, gap))
        return gap

    # ------------------------------------------------------------------
    # Locality analyses (Figures 5 and 6)
    # ------------------------------------------------------------------
    def access_gaps(self) -> List[int]:
        """All recorded inter-access gaps across every subarray."""
        return [gap for _, gap in self._all_gaps]

    def cumulative_access_fraction(self, thresholds: Iterable[int]) -> Dict[int, float]:
        """Figure 5: fraction of accesses whose inter-access gap <= threshold.

        An access occurring in a subarray whose previous access was at most
        ``threshold`` cycles earlier is an access to a "hot" subarray at
        that access-frequency threshold (frequency = 1/threshold).
        """
        gaps = sorted(gap for _, gap in self._all_gaps)
        total = len(gaps)
        result: Dict[int, float] = {}
        for threshold in thresholds:
            if total == 0:
                result[threshold] = 0.0
                continue
            count = _count_leq(gaps, threshold)
            result[threshold] = count / total
        return result

    def hot_subarray_fraction(
        self, thresholds: Iterable[int], total_cycles: int
    ) -> Dict[int, float]:
        """Figure 6: time-averaged fraction of subarrays that are "hot".

        A subarray is hot at a given instant if it was accessed within the
        last ``threshold`` cycles.  Averaged over the run, the fraction of
        time a subarray is hot equals (covered cycles / total cycles) where
        covered cycles is the union of ``threshold``-length windows after
        each access — computed exactly from the gap sequence.
        """
        if total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        result: Dict[int, float] = {}
        for threshold in thresholds:
            hot_time = 0.0
            for stats in self._stats:
                if stats.accesses == 0:
                    continue
                covered = 0
                for bucket, count in stats.gap_histogram.items():
                    # Approximate every gap in the bucket by its geometric
                    # midpoint for the covered-time computation.
                    low = 10 ** bucket
                    high = 10 ** (bucket + 1)
                    mid = (low + high) / 2.0 if bucket > 0 else 5.0
                    covered += count * min(mid, threshold)
                # The final access contributes one more window (or until
                # the end of the run, whichever is shorter).
                covered += min(threshold, total_cycles)
                hot_time += min(covered, total_cycles)
            result[threshold] = hot_time / (total_cycles * self.n_subarrays)
        return result

    def per_subarray_access_counts(self) -> List[int]:
        """Access count of every subarray (index-aligned)."""
        return [s.accesses for s in self._stats]


def _count_leq(sorted_values: List[int], threshold: int) -> int:
    """Number of values <= threshold in a sorted list (binary search)."""
    lo, hi = 0, len(sorted_values)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_values[mid] <= threshold:
            lo = mid + 1
        else:
            hi = mid
    return lo
