"""Replacement policies for set-associative caches."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Sequence

from .block import CacheLine

__all__ = ["ReplacementPolicy", "LRUReplacement", "RandomReplacement", "make_replacement"]


class ReplacementPolicy(ABC):
    """Chooses a victim way within a set."""

    @abstractmethod
    def select_victim(self, ways: Sequence[CacheLine]) -> int:
        """Return the index of the way to evict.

        Invalid ways must be preferred over valid ones.
        """

    @staticmethod
    def _first_invalid(ways: Sequence[CacheLine]) -> int | None:
        for index, line in enumerate(ways):
            if not line.valid:
                return index
        return None


class LRUReplacement(ReplacementPolicy):
    """Evict the least-recently-used valid way."""

    def select_victim(self, ways: Sequence[CacheLine]) -> int:
        invalid = self._first_invalid(ways)
        if invalid is not None:
            return invalid
        oldest_index = 0
        oldest_cycle = ways[0].last_used_cycle
        for index, line in enumerate(ways):
            if line.last_used_cycle < oldest_cycle:
                oldest_cycle = line.last_used_cycle
                oldest_index = index
        return oldest_index


class RandomReplacement(ReplacementPolicy):
    """Evict a (pseudo-)randomly chosen way; deterministic given the seed."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select_victim(self, ways: Sequence[CacheLine]) -> int:
        invalid = self._first_invalid(ways)
        if invalid is not None:
            return invalid
        return self._rng.randrange(len(ways))


def make_replacement(name: str, seed: int = 0) -> ReplacementPolicy:
    """Factory: ``"lru"`` or ``"random"``."""
    lowered = name.lower()
    if lowered == "lru":
        return LRUReplacement()
    if lowered == "random":
        return RandomReplacement(seed=seed)
    raise ValueError(f"unknown replacement policy {name!r}")
