"""Set-associative cache with subarray-granularity precharge control.

This is the behavioural cache model the paper's L1 instruction and data
caches — and, since the L2 became policy-controlled, the unified L2 —
are simulated with.  Each access:

1. maps the address to a set and to the subarray holding that set;
2. consults the attached *precharge policy* — the policy answers with the
   extra latency the access pays if the subarray's bitlines were isolated
   (Table 3 shows this is one cycle for all studied technologies) and
   updates its own bookkeeping plus the energy ledger;
3. performs the tag lookup, allocating on a miss (LRU by default) and
   forwarding the miss to the next level / memory model;
4. records the access in the subarray tracker (for the locality analyses)
   and in the energy ledger (dynamic access energy).

The cache never stores data values — only tags and metadata — because the
paper's results depend only on hit/miss behaviour, timing and subarray
residency.

This class is the *reference* cache model.  The batched fast path
(:class:`repro.sim.fastpath._FastCache`) re-implements the tag/LRU/MSHR
logic of :meth:`SetAssociativeCache.access` over flat arrays — for the
L1s and the L2 alike — and must stay bit-identical — change access
semantics here and there together (the differential suite in
``tests/sim/test_fastpath_differential.py`` will catch a mismatch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.circuits.cacti import CacheOrganization

from .block import CacheLine
from .energy_accounting import EnergyBreakdown, EnergyLedger
from .mshr import MSHRFile
from .replacement import LRUReplacement, ReplacementPolicy
from .subarray import SubarrayTracker

__all__ = ["AccessResult", "SetAssociativeCache", "PrechargeController", "NextLevel"]


@runtime_checkable
class PrechargeController(Protocol):
    """What a precharge-control policy must provide to plug into a cache."""

    def attach(self, organization: CacheOrganization, ledger: EnergyLedger) -> None:
        """Bind the policy to a cache organisation and its energy ledger."""

    def access(
        self, subarray: int, cycle: int, base_address: Optional[int] = None,
        address: Optional[int] = None,
    ) -> int:
        """Notify an access; return the extra latency (cycles) it pays."""

    def note_outcome(self, hit: bool, cycle: int) -> None:
        """Notify the hit/miss outcome of the most recent access."""

    def remap_set(self, set_index: int, n_sets: int) -> int:
        """Optionally remap the set index (used by resizable caches)."""

    def finalize(self, end_cycle: int) -> None:
        """Close any open residency intervals at the end of the run."""

    def precharged_subarrays(self, cycle: int) -> int:
        """Number of subarrays currently precharged (for inspection)."""


@runtime_checkable
class NextLevel(Protocol):
    """Anything that can service a miss: an L2 cache or a memory model."""

    def access(self, address: int, cycle: int, write: bool = False) -> "AccessResult":
        """Service the request; only ``latency`` and ``hit`` are consumed."""


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    Attributes:
        hit: Whether the access hit.
        latency: Total latency in cycles, including the base pipelined
            access latency, any precharge penalty, and miss service time.
        subarray: Index of the subarray the access mapped to.
        precharge_penalty: Extra cycles paid because the subarray's
            bitlines had been isolated.
        set_index: The (possibly remapped) set index used.
        writeback: Whether a dirty line was evicted.
    """

    hit: bool
    latency: int
    subarray: int
    precharge_penalty: int
    set_index: int
    writeback: bool = False


class _StaticController:
    """Fallback controller: blind static pull-up (the conventional baseline)."""

    def __init__(self) -> None:
        self._org: Optional[CacheOrganization] = None
        self._ledger: Optional[EnergyLedger] = None

    def attach(self, organization: CacheOrganization, ledger: EnergyLedger) -> None:
        self._org = organization
        self._ledger = ledger

    def access(self, subarray, cycle, base_address=None, address=None) -> int:
        return 0

    def note_outcome(self, hit: bool, cycle: int) -> None:
        return None

    def remap_set(self, set_index: int, n_sets: int) -> int:
        return set_index

    def finalize(self, end_cycle: int) -> None:
        if self._org is None or self._ledger is None:
            return
        for subarray in range(self._org.n_subarrays):
            self._ledger.note_precharged_interval(subarray, end_cycle)

    def precharged_subarrays(self, cycle: int) -> int:
        return self._org.n_subarrays if self._org is not None else 0


class SetAssociativeCache:
    """A set-associative cache with per-subarray precharge control."""

    def __init__(
        self,
        organization: CacheOrganization,
        name: str = "cache",
        controller: Optional[PrechargeController] = None,
        replacement: Optional[ReplacementPolicy] = None,
        next_level: Optional[NextLevel] = None,
        miss_latency: int = 12,
        mshr_entries: int = 8,
        base_latency: Optional[int] = None,
    ) -> None:
        """Create a cache.

        Args:
            organization: Physical organisation (capacity, ways, subarrays).
            name: Human-readable name used in reports ("L1D", "L1I", ...).
            controller: Precharge policy; defaults to blind static pull-up.
            replacement: Replacement policy; defaults to LRU.
            next_level: Where misses are serviced; if ``None``, misses pay
                a flat ``miss_latency``.
            miss_latency: Flat miss service latency used when there is no
                ``next_level``.
            mshr_entries: Number of outstanding misses supported.
            base_latency: Pipelined hit latency in cycles; defaults to the
                latency derived from the circuit model, but Table 2's
                configured values (2 for L1I, 3 for L1D, 12 for L2) can be
                imposed here.
        """
        self.organization = organization
        self.name = name
        self.base_latency = (
            base_latency
            if base_latency is not None
            else organization.access_latency_cycles
        )
        self.controller: PrechargeController = controller or _StaticController()
        self.replacement = replacement or LRUReplacement()
        self.next_level = next_level
        self.miss_latency = miss_latency
        self.mshrs = MSHRFile(mshr_entries)

        self._sets = [
            [CacheLine() for _ in range(organization.associativity)]
            for _ in range(organization.n_sets)
        ]
        self.tracker = SubarrayTracker(organization.n_subarrays)
        self.ledger = EnergyLedger(organization.subarray, organization.n_subarrays)
        self.controller.attach(organization, self.ledger)

        # Statistics
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.precharge_penalties = 0
        self.penalty_cycles = 0
        self._last_cycle = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """Address with the intra-line offset stripped."""
        return address >> self.organization.offset_bits

    def set_and_tag(self, address: int) -> tuple:
        """(set index before remapping, tag) for an address."""
        line = self.line_address(address)
        set_index = line % self.organization.n_sets
        tag = line // self.organization.n_sets
        return set_index, tag

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        cycle: int,
        write: bool = False,
        base_address: Optional[int] = None,
    ) -> AccessResult:
        """Perform one access and return its outcome.

        Args:
            address: Full byte address.
            cycle: Cycle at which the access starts.
            write: Whether this is a store (marks the line dirty).
            base_address: For loads/stores that use displacement
                addressing, the base-register value — made available to
                policies that implement predecoding (Section 6.3).
        """
        if cycle < self._last_cycle:
            cycle = self._last_cycle
        self._last_cycle = cycle
        self.accesses += 1

        raw_set, tag = self.set_and_tag(address)
        set_index = self.controller.remap_set(raw_set, self.organization.n_sets)
        subarray = self.organization.subarray_for_set(set_index)

        self.tracker.record_access(subarray, cycle)
        self.ledger.note_access(subarray)

        penalty = self.controller.access(
            subarray, cycle, base_address=base_address, address=address
        )
        if penalty > 0:
            self.precharge_penalties += 1
            self.penalty_cycles += penalty

        ways = self._sets[set_index]
        hit_way = None
        for way, line in enumerate(ways):
            if line.matches(tag):
                hit_way = way
                break

        latency = self.base_latency + penalty
        writeback = False
        if hit_way is not None:
            ways[hit_way].touch(cycle, write=write)
            self.hits += 1
            hit = True
        else:
            self.misses += 1
            hit = False
            latency += self._service_miss(address, cycle)
            victim = self.replacement.select_victim(ways)
            if ways[victim].valid and ways[victim].dirty:
                writeback = True
                self.writebacks += 1
                if self.next_level is not None:
                    # Drain the dirty victim to the next level.  The write
                    # happens off the critical path (a writeback buffer),
                    # so its latency is not added to this access — but it
                    # does update the next level's contents, MSHRs and
                    # precharge-policy state.  The victim's recorded line
                    # address is used (not tag * n_sets + set_index): the
                    # set index may have been remapped by the policy, in
                    # which case the tag cannot reconstruct the address.
                    victim_line = ways[victim].line_address
                    if victim_line is None:
                        victim_line = (
                            ways[victim].tag * self.organization.n_sets + raw_set
                        )
                    self.next_level.access(
                        victim_line << self.organization.offset_bits,
                        cycle,
                        write=True,
                    )
            ways[victim].fill(tag, cycle, line_address=self.line_address(address))
            ways[victim].touch(cycle, write=write)

        self.controller.note_outcome(hit, cycle)
        return AccessResult(
            hit=hit,
            latency=latency,
            subarray=subarray,
            precharge_penalty=penalty,
            set_index=set_index,
            writeback=writeback,
        )

    def _service_miss(self, address: int, cycle: int) -> int:
        """Latency added by servicing a miss (next level or flat)."""
        line_addr = self.line_address(address)
        existing = self.mshrs.outstanding(line_addr)
        if existing is not None:
            # Secondary miss: wait for the already-outstanding fill.
            self.mshrs.merged_misses += 0  # merged accounting in allocate()
            return max(1, existing.ready_cycle - cycle)

        if self.next_level is not None:
            below = self.next_level.access(address, cycle)
            service = below.latency
        else:
            service = self.miss_latency

        self.mshrs.retire_completed(cycle)
        entry = self.mshrs.allocate(line_addr, ready_cycle=cycle + service)
        if entry is None:
            earliest = self.mshrs.earliest_ready_cycle()
            stall = max(1, (earliest - cycle)) if earliest is not None else 1
            service += stall
            self.mshrs.retire_completed(cycle + stall)
            self.mshrs.allocate(line_addr, ready_cycle=cycle + service)
        return service

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def miss_ratio(self) -> float:
        """Misses per access."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def finalize(self, end_cycle: int) -> EnergyBreakdown:
        """Close the run at ``end_cycle`` and return the energy breakdown."""
        self.controller.finalize(end_cycle)
        return self.ledger.breakdown(max(1, end_cycle))

    def reset_statistics(self) -> None:
        """Clear counters (contents and policy state are kept)."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.precharge_penalties = 0
        self.penalty_cycles = 0
