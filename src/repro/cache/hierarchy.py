"""Memory hierarchy: L1 instruction/data caches, unified L2, main memory.

The base configuration (Table 2):

* L1 i-cache: 32KB, 2-way, 2-cycle, 2 RW ports;
* L1 d-cache: 32KB, 2-way, 3-cycle, 2 RW + 2 R ports;
* L2 unified: 512KB, 4-way, 12-cycle latency;
* Memory: 100 cycles + 4 cycles per 8 bytes.

All three caches are first-class :class:`SetAssociativeCache` instances
and can each carry a precharge-control policy.  The paper only studies
L1 policies, but half of a Table 2 system's cache leakage sits in the
512KB L2, so the L2 accepts the same :class:`PrechargeController`
objects (with an L2-scaled subarray granularity — see
:meth:`HierarchyConfig.l2_organization`); memory stays a flat latency.
Dirty lines evicted from an L1 are written back into the L2 (and from
the L2 into memory), so an L2 policy sees fill *and* writeback traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.cacti import CacheOrganization, cache_organization

from .cache import AccessResult, PrechargeController, SetAssociativeCache

__all__ = ["MainMemory", "MemoryHierarchy", "HierarchyConfig"]


class MainMemory:
    """Flat-latency main memory: 100 cycles plus 4 cycles per 8 bytes."""

    def __init__(self, base_latency: int = 100, cycles_per_8_bytes: int = 4,
                 line_bytes: int = 32) -> None:
        if base_latency < 1:
            raise ValueError("base latency must be positive")
        self.base_latency = base_latency
        self.cycles_per_8_bytes = cycles_per_8_bytes
        self.line_bytes = line_bytes
        self.requests = 0

    @property
    def line_fill_latency(self) -> int:
        """Latency to fill one cache line."""
        bursts = max(1, self.line_bytes // 8)
        return self.base_latency + self.cycles_per_8_bytes * bursts

    def access(self, address: int, cycle: int, write: bool = False) -> AccessResult:
        """Service a request from memory (always a 'hit')."""
        self.requests += 1
        return AccessResult(
            hit=True,
            latency=self.line_fill_latency,
            subarray=0,
            precharge_penalty=0,
            set_index=0,
        )


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizing of the memory hierarchy (defaults follow Table 2).

    Attributes:
        subarray_bytes: L1 precharge-control granularity.
        l2_subarray_bytes: L2 precharge-control granularity; ``None``
            scales the L1 granularity up to the L2's larger banks
            (at least 4KB — CACTI-style organisations of a 512KB array
            use bigger subarrays than a 32KB one).
    """

    feature_size_nm: int = 70
    line_bytes: int = 32
    l1i_bytes: int = 32 * 1024
    l1i_assoc: int = 2
    l1i_ports: int = 2
    l1i_latency: int = 2
    l1d_bytes: int = 32 * 1024
    l1d_assoc: int = 2
    l1d_ports: int = 2
    l1d_latency: int = 3
    l2_bytes: int = 512 * 1024
    l2_assoc: int = 4
    l2_latency: int = 12
    subarray_bytes: int = 1024
    l2_subarray_bytes: Optional[int] = None
    memory_latency: int = 100
    memory_cycles_per_8_bytes: int = 4
    mshr_entries: int = 8

    def l1i_organization(self) -> CacheOrganization:
        """Physical organisation of the L1 instruction cache."""
        return cache_organization(
            self.feature_size_nm, self.l1i_bytes, self.line_bytes,
            self.l1i_assoc, self.subarray_bytes, ports=self.l1i_ports,
        )

    def l1d_organization(self) -> CacheOrganization:
        """Physical organisation of the L1 data cache."""
        return cache_organization(
            self.feature_size_nm, self.l1d_bytes, self.line_bytes,
            self.l1d_assoc, self.subarray_bytes, ports=self.l1d_ports,
        )

    @property
    def effective_l2_subarray_bytes(self) -> int:
        """The L2 precharge-control granularity actually used."""
        if self.l2_subarray_bytes is not None:
            return self.l2_subarray_bytes
        return max(self.subarray_bytes, 4096)

    def l2_organization(self) -> CacheOrganization:
        """Physical organisation of the unified L2 cache."""
        return cache_organization(
            self.feature_size_nm, self.l2_bytes, self.line_bytes,
            self.l2_assoc, self.effective_l2_subarray_bytes, ports=1,
        )


class MemoryHierarchy:
    """L1I + L1D + unified L2 + main memory, wired together."""

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        icache_controller: Optional[PrechargeController] = None,
        dcache_controller: Optional[PrechargeController] = None,
        l2_controller: Optional[PrechargeController] = None,
    ) -> None:
        """Wire the hierarchy together.

        Args:
            config: Sizing; defaults to Table 2.
            icache_controller: L1I precharge policy (default static pull-up).
            dcache_controller: L1D precharge policy (default static pull-up).
            l2_controller: L2 precharge policy (default static pull-up).
        """
        self.config = config or HierarchyConfig()
        self.memory = MainMemory(
            base_latency=self.config.memory_latency,
            cycles_per_8_bytes=self.config.memory_cycles_per_8_bytes,
            line_bytes=self.config.line_bytes,
        )
        self.l2 = SetAssociativeCache(
            organization=self.config.l2_organization(),
            name="L2",
            controller=l2_controller,
            next_level=self.memory,
            mshr_entries=self.config.mshr_entries,
            base_latency=self.config.l2_latency,
        )
        self.l1i = SetAssociativeCache(
            organization=self.config.l1i_organization(),
            name="L1I",
            controller=icache_controller,
            next_level=self.l2,
            mshr_entries=self.config.mshr_entries,
            base_latency=self.config.l1i_latency,
        )
        self.l1d = SetAssociativeCache(
            organization=self.config.l1d_organization(),
            name="L1D",
            controller=dcache_controller,
            next_level=self.l2,
            mshr_entries=self.config.mshr_entries,
            base_latency=self.config.l1d_latency,
        )

    # ------------------------------------------------------------------
    def fetch_instruction(self, pc: int, cycle: int) -> AccessResult:
        """Fetch an instruction block through the L1 i-cache."""
        return self.l1i.access(pc, cycle, write=False)

    def load(self, address: int, cycle: int,
             base_address: Optional[int] = None) -> AccessResult:
        """Perform a load through the L1 d-cache."""
        return self.l1d.access(address, cycle, write=False, base_address=base_address)

    def store(self, address: int, cycle: int,
              base_address: Optional[int] = None) -> AccessResult:
        """Perform a store through the L1 d-cache."""
        return self.l1d.access(address, cycle, write=True, base_address=base_address)

    def finalize(self, end_cycle: int) -> dict:
        """Finalize every cache level; returns energy breakdowns by name.

        Returns:
            ``{"L1I": ..., "L1D": ..., "L2": ...}`` mapping each level to
            its :class:`~repro.cache.energy_accounting.EnergyBreakdown`.
        """
        return {
            "L1I": self.l1i.finalize(end_cycle),
            "L1D": self.l1d.finalize(end_cycle),
            "L2": self.l2.finalize(end_cycle),
        }
