"""Memory hierarchy: L1 instruction/data caches, unified L2, main memory.

The base configuration (Table 2):

* L1 i-cache: 32KB, 2-way, 2-cycle, 2 RW ports;
* L1 d-cache: 32KB, 2-way, 3-cycle, 2 RW + 2 R ports;
* L2 unified: 512KB, 4-way, 12-cycle latency;
* Memory: 100 cycles + 4 cycles per 8 bytes.

Only the L1 caches carry a precharge-control policy (the paper's subject);
the L2 is modelled as a conventional cache and memory as a flat latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.cacti import CacheOrganization, cache_organization

from .cache import AccessResult, PrechargeController, SetAssociativeCache

__all__ = ["MainMemory", "MemoryHierarchy", "HierarchyConfig"]


class MainMemory:
    """Flat-latency main memory: 100 cycles plus 4 cycles per 8 bytes."""

    def __init__(self, base_latency: int = 100, cycles_per_8_bytes: int = 4,
                 line_bytes: int = 32) -> None:
        if base_latency < 1:
            raise ValueError("base latency must be positive")
        self.base_latency = base_latency
        self.cycles_per_8_bytes = cycles_per_8_bytes
        self.line_bytes = line_bytes
        self.requests = 0

    @property
    def line_fill_latency(self) -> int:
        """Latency to fill one cache line."""
        bursts = max(1, self.line_bytes // 8)
        return self.base_latency + self.cycles_per_8_bytes * bursts

    def access(self, address: int, cycle: int, write: bool = False) -> AccessResult:
        """Service a request from memory (always a 'hit')."""
        self.requests += 1
        return AccessResult(
            hit=True,
            latency=self.line_fill_latency,
            subarray=0,
            precharge_penalty=0,
            set_index=0,
        )


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizing of the memory hierarchy (defaults follow Table 2)."""

    feature_size_nm: int = 70
    line_bytes: int = 32
    l1i_bytes: int = 32 * 1024
    l1i_assoc: int = 2
    l1i_ports: int = 2
    l1i_latency: int = 2
    l1d_bytes: int = 32 * 1024
    l1d_assoc: int = 2
    l1d_ports: int = 2
    l1d_latency: int = 3
    l2_bytes: int = 512 * 1024
    l2_assoc: int = 4
    l2_latency: int = 12
    subarray_bytes: int = 1024
    memory_latency: int = 100
    memory_cycles_per_8_bytes: int = 4
    mshr_entries: int = 8

    def l1i_organization(self) -> CacheOrganization:
        """Physical organisation of the L1 instruction cache."""
        return cache_organization(
            self.feature_size_nm, self.l1i_bytes, self.line_bytes,
            self.l1i_assoc, self.subarray_bytes, ports=self.l1i_ports,
        )

    def l1d_organization(self) -> CacheOrganization:
        """Physical organisation of the L1 data cache."""
        return cache_organization(
            self.feature_size_nm, self.l1d_bytes, self.line_bytes,
            self.l1d_assoc, self.subarray_bytes, ports=self.l1d_ports,
        )

    def l2_organization(self) -> CacheOrganization:
        """Physical organisation of the unified L2 cache."""
        return cache_organization(
            self.feature_size_nm, self.l2_bytes, self.line_bytes,
            self.l2_assoc, max(self.subarray_bytes, 4096), ports=1,
        )


class MemoryHierarchy:
    """L1I + L1D + unified L2 + main memory, wired together."""

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        icache_controller: Optional[PrechargeController] = None,
        dcache_controller: Optional[PrechargeController] = None,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.memory = MainMemory(
            base_latency=self.config.memory_latency,
            cycles_per_8_bytes=self.config.memory_cycles_per_8_bytes,
            line_bytes=self.config.line_bytes,
        )
        self.l2 = SetAssociativeCache(
            organization=self.config.l2_organization(),
            name="L2",
            next_level=self.memory,
            mshr_entries=self.config.mshr_entries,
            base_latency=self.config.l2_latency,
        )
        self.l1i = SetAssociativeCache(
            organization=self.config.l1i_organization(),
            name="L1I",
            controller=icache_controller,
            next_level=self.l2,
            mshr_entries=self.config.mshr_entries,
            base_latency=self.config.l1i_latency,
        )
        self.l1d = SetAssociativeCache(
            organization=self.config.l1d_organization(),
            name="L1D",
            controller=dcache_controller,
            next_level=self.l2,
            mshr_entries=self.config.mshr_entries,
            base_latency=self.config.l1d_latency,
        )

    # ------------------------------------------------------------------
    def fetch_instruction(self, pc: int, cycle: int) -> AccessResult:
        """Fetch an instruction block through the L1 i-cache."""
        return self.l1i.access(pc, cycle, write=False)

    def load(self, address: int, cycle: int,
             base_address: Optional[int] = None) -> AccessResult:
        """Perform a load through the L1 d-cache."""
        return self.l1d.access(address, cycle, write=False, base_address=base_address)

    def store(self, address: int, cycle: int,
              base_address: Optional[int] = None) -> AccessResult:
        """Perform a store through the L1 d-cache."""
        return self.l1d.access(address, cycle, write=True, base_address=base_address)

    def finalize(self, end_cycle: int) -> dict:
        """Finalize both L1 caches; returns their energy breakdowns by name."""
        return {
            "L1I": self.l1i.finalize(end_cycle),
            "L1D": self.l1d.finalize(end_cycle),
        }
