"""Miss Status Holding Registers (MSHRs).

The base configuration (Table 2) provides 8 MSHR entries.  MSHRs bound the
number of outstanding misses; a miss that cannot allocate an entry stalls
until one frees.  Secondary misses to a line already being fetched merge
into the existing entry instead of issuing a new memory request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["MSHRFile", "MSHREntry"]


@dataclass
class MSHREntry:
    """One outstanding miss."""

    line_address: int
    ready_cycle: int
    merged_requests: int = 1


class MSHRFile:
    """A bounded set of outstanding-miss registers."""

    def __init__(self, n_entries: int = 8) -> None:
        if n_entries < 1:
            raise ValueError("need at least one MSHR entry")
        self._n_entries = n_entries
        self._entries: Dict[int, MSHREntry] = {}
        self.merged_misses = 0
        self.rejected_allocations = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of outstanding misses."""
        return self._n_entries

    @property
    def occupancy(self) -> int:
        """Currently outstanding misses."""
        return len(self._entries)

    def is_full(self) -> bool:
        """Whether no further primary miss can be accepted."""
        return len(self._entries) >= self._n_entries

    def outstanding(self, line_address: int) -> Optional[MSHREntry]:
        """The entry tracking ``line_address``, if any."""
        return self._entries.get(line_address)

    def allocate(self, line_address: int, ready_cycle: int) -> Optional[MSHREntry]:
        """Allocate (or merge into) an entry for a missing line.

        Returns:
            The entry, or ``None`` if the file is full and the miss must
            stall (the caller retries later).
        """
        existing = self._entries.get(line_address)
        if existing is not None:
            existing.merged_requests += 1
            self.merged_misses += 1
            return existing
        if self.is_full():
            self.rejected_allocations += 1
            return None
        entry = MSHREntry(line_address=line_address, ready_cycle=ready_cycle)
        self._entries[line_address] = entry
        return entry

    def retire_completed(self, cycle: int) -> List[MSHREntry]:
        """Release every entry whose fill has arrived by ``cycle``."""
        done = [e for e in self._entries.values() if e.ready_cycle <= cycle]
        for entry in done:
            del self._entries[entry.line_address]
        return done

    def earliest_ready_cycle(self) -> Optional[int]:
        """Cycle at which the next outstanding fill returns, if any."""
        if not self._entries:
            return None
        return min(e.ready_cycle for e in self._entries.values())
