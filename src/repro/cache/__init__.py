"""Behavioural cache simulator with subarray-granularity precharge control.

The package provides the memory-system substrate the paper's evaluation
runs on: set-associative L1 caches divided into subarrays, an L2 and a
flat-latency memory behind them, per-subarray access tracking (for the
locality analyses of Section 6.1) and the energy ledger that converts
subarray pull-up/idle residency into bitline-discharge energy using the
circuit models.
"""

from .block import CacheLine
from .cache import AccessResult, NextLevel, PrechargeController, SetAssociativeCache
from .energy_accounting import EnergyBreakdown, EnergyLedger
from .hierarchy import HierarchyConfig, MainMemory, MemoryHierarchy
from .mshr import MSHREntry, MSHRFile
from .replacement import (
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_replacement,
)
from .subarray import SubarrayStats, SubarrayTracker

__all__ = [
    "CacheLine",
    "AccessResult",
    "NextLevel",
    "PrechargeController",
    "SetAssociativeCache",
    "EnergyBreakdown",
    "EnergyLedger",
    "HierarchyConfig",
    "MainMemory",
    "MemoryHierarchy",
    "MSHREntry",
    "MSHRFile",
    "LRUReplacement",
    "RandomReplacement",
    "ReplacementPolicy",
    "make_replacement",
    "SubarrayStats",
    "SubarrayTracker",
]
