"""Cache line (block) bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheLine"]


@dataclass
class CacheLine:
    """State of one cache line within a set.

    Attributes:
        tag: Address tag stored in the line, or ``None`` when invalid.
        valid: Whether the line holds data.
        dirty: Whether the line has been written since it was filled.
        last_used_cycle: Cycle of the most recent access (for LRU).
        fill_cycle: Cycle at which the line was filled.
        line_address: Original (pre-set-remapping) line address, kept so
            a dirty eviction can write back to the address the program
            actually used — the tag alone cannot reconstruct it when the
            policy remaps set indices (resizable caches).
    """

    tag: int | None = None
    valid: bool = False
    dirty: bool = False
    last_used_cycle: int = 0
    fill_cycle: int = 0
    line_address: int | None = None

    def invalidate(self) -> None:
        """Drop the line's contents."""
        self.tag = None
        self.valid = False
        self.dirty = False
        self.line_address = None

    def fill(self, tag: int, cycle: int, line_address: int | None = None) -> None:
        """Install a new tag, marking the line valid and clean."""
        self.tag = tag
        self.valid = True
        self.dirty = False
        self.fill_cycle = cycle
        self.last_used_cycle = cycle
        self.line_address = line_address

    def touch(self, cycle: int, write: bool = False) -> None:
        """Record a hit on the line."""
        self.last_used_cycle = cycle
        if write:
            self.dirty = True

    def matches(self, tag: int) -> bool:
        """Whether the line is valid and holds ``tag``."""
        return self.valid and self.tag == tag
