"""Wattch-style processor-level energy accounting.

The paper's simulator is a modified Wattch 1.0: per-access energies for
the major structures are derived from capacitance models and multiplied by
activity counts from the architectural simulation.  This module provides
the same activity-based accounting for the structures outside the L1
caches (whose energy is handled in detail by
:mod:`repro.cache.energy_accounting`): the issue queue, reorder buffer,
register file, branch predictor, functional units and clock tree.

Absolute numbers are first-order; the purpose of this module is (a) to put
the cache bitline-discharge savings in the context of total processor
energy, and (b) to charge the extra energy of replayed (squashed and
reissued) micro-ops, which the paper notes is one of the costs of load-hit
misspeculation under gated precharging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.circuits.technology import TechnologyNode
from repro.cpu.stats import PipelineStats

__all__ = ["WattchEnergyModel", "ProcessorEnergyBreakdown"]

#: Effective switched capacitance, in picofarads, of one activity unit of
#: each structure at 180nm.  Values follow the relative magnitudes used by
#: Wattch-class models; they scale with feature size and Vdd^2.
_STRUCTURE_CAP_PF_180 = {
    "fetch": 8.0,          # per fetched instruction (i-TLB, fetch buffers)
    "rename_dispatch": 6.0,  # per dispatched instruction
    "issue_queue": 10.0,   # per issue-queue wakeup/select
    "regfile": 12.0,       # per register read/write pair
    "alu": 9.0,            # per executed ALU/FPU op
    "rob_commit": 5.0,     # per committed instruction
    "branch_predictor": 3.0,  # per prediction
    "clock": 20.0,         # per cycle, clock distribution
}


@dataclass(frozen=True)
class ProcessorEnergyBreakdown:
    """Energy of one run, by structure, in joules."""

    by_structure: Dict[str, float]

    @property
    def total_j(self) -> float:
        """Total non-cache processor energy."""
        return sum(self.by_structure.values())

    def fraction(self, structure: str) -> float:
        """Share of the total taken by one structure."""
        total = self.total_j
        if total <= 0:
            return 0.0
        return self.by_structure.get(structure, 0.0) / total

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return dict(self.by_structure)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "ProcessorEnergyBreakdown":
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(by_structure=dict(data))


class WattchEnergyModel:
    """Activity-based energy model for the non-cache parts of the core."""

    def __init__(self, tech: TechnologyNode) -> None:
        self.tech = tech

    def _energy_per_event_j(self, structure: str) -> float:
        cap_pf = _STRUCTURE_CAP_PF_180[structure]
        cap_f = cap_pf * 1e-12 * (self.tech.feature_size_nm / 180.0)
        vdd = self.tech.supply_voltage
        return cap_f * vdd * vdd

    def breakdown(self, stats: PipelineStats) -> ProcessorEnergyBreakdown:
        """Convert pipeline activity counts into an energy breakdown.

        Replayed micro-ops are charged an extra issue-queue and register
        file event each, reflecting the wasted issue bandwidth the paper
        attributes to load-hit misspeculation.
        """
        events = {
            "fetch": stats.fetched_instructions,
            "rename_dispatch": stats.committed_instructions,
            "issue_queue": stats.committed_instructions + stats.load_replays,
            "regfile": stats.committed_instructions + stats.load_replays,
            "alu": stats.committed_instructions,
            "rob_commit": stats.committed_instructions,
            "branch_predictor": stats.branches,
            "clock": stats.cycles,
        }
        by_structure = {
            name: count * self._energy_per_event_j(name)
            for name, count in events.items()
        }
        return ProcessorEnergyBreakdown(by_structure=by_structure)

    def replay_energy_overhead(self, stats: PipelineStats) -> float:
        """Extra energy (relative) caused by replayed micro-ops.

        Returns the replay-induced energy as a fraction of the total
        non-cache processor energy — the paper reports this stays below 1%
        for gated precharging.
        """
        breakdown = self.breakdown(stats)
        per_replay = self._energy_per_event_j("issue_queue") + self._energy_per_event_j(
            "regfile"
        )
        overhead = stats.load_replays * per_replay
        total = breakdown.total_j
        if total <= 0:
            return 0.0
        return overhead / total
