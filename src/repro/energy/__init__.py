"""Energy accounting: Wattch-style processor model plus cache reporting."""

from .cache_energy import CacheEnergyReport, combine_run_energy
from .wattch import ProcessorEnergyBreakdown, WattchEnergyModel

__all__ = [
    "CacheEnergyReport",
    "combine_run_energy",
    "ProcessorEnergyBreakdown",
    "WattchEnergyModel",
]
