"""Combined cache energy reporting.

Glue between the per-cache :class:`~repro.cache.energy_accounting.EnergyBreakdown`
objects produced by the architectural simulation and the figures the paper
reports: relative bitline discharge (Figures 3, 8, 9), precharged-subarray
fraction (Figures 8, 10) and the overall cache / processor energy savings
(the 46%/41% opportunity of Section 4 and the 42%/36% result of Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.energy_accounting import EnergyBreakdown
from repro.cpu.stats import PipelineStats
from repro.circuits.technology import TechnologyNode

from .wattch import ProcessorEnergyBreakdown, WattchEnergyModel

__all__ = ["CacheEnergyReport", "combine_run_energy"]


@dataclass(frozen=True)
class CacheEnergyReport:
    """Energy summary of one simulated run under one precharge policy.

    Attributes:
        dcache: Energy breakdown of the L1 data cache.
        icache: Energy breakdown of the L1 instruction cache.
        processor: Non-cache processor energy (Wattch-style), or ``None``
            when only cache-level reporting was requested.
        l2: Energy breakdown of the unified L2 cache, or ``None`` for
            reports produced before the L2 became policy-controlled
            (old stored results round-trip with ``l2=None``).
    """

    dcache: EnergyBreakdown
    icache: EnergyBreakdown
    processor: Optional[ProcessorEnergyBreakdown] = None
    l2: Optional[EnergyBreakdown] = None

    # ------------------------------------------------------------------
    @property
    def dcache_relative_discharge(self) -> float:
        """L1D bitline discharge relative to blind static pull-up."""
        return self.dcache.relative_discharge

    @property
    def icache_relative_discharge(self) -> float:
        """L1I bitline discharge relative to blind static pull-up."""
        return self.icache.relative_discharge

    @property
    def dcache_discharge_savings(self) -> float:
        """Fraction of L1D bitline discharge eliminated."""
        return self.dcache.discharge_savings

    @property
    def icache_discharge_savings(self) -> float:
        """Fraction of L1I bitline discharge eliminated."""
        return self.icache.discharge_savings

    @property
    def dcache_overall_savings(self) -> float:
        """L1D total-energy savings relative to the static-pull-up cache."""
        return self.dcache.overall_energy_savings

    @property
    def icache_overall_savings(self) -> float:
        """L1I total-energy savings relative to the static-pull-up cache."""
        return self.icache.overall_energy_savings

    @property
    def l2_relative_discharge(self) -> float:
        """L2 bitline discharge relative to blind static pull-up.

        Returns ``1.0`` (the static baseline) when no L2 breakdown was
        recorded, so ratios stay meaningful over legacy reports.
        """
        if self.l2 is None:
            return 1.0
        return self.l2.relative_discharge

    @property
    def l2_discharge_savings(self) -> float:
        """Fraction of L2 bitline discharge eliminated (0 without an L2)."""
        if self.l2 is None:
            return 0.0
        return self.l2.discharge_savings

    @property
    def l2_overall_savings(self) -> float:
        """L2 total-energy savings relative to the static-pull-up cache."""
        if self.l2 is None:
            return 0.0
        return self.l2.overall_energy_savings

    @property
    def total_cache_energy_j(self) -> float:
        """Total L1 cache energy (both caches) under the policy."""
        return self.dcache.total_cache_energy_j + self.icache.total_cache_energy_j

    @property
    def total_hierarchy_energy_j(self) -> float:
        """Total cache energy across every level (L1s plus the L2)."""
        total = self.total_cache_energy_j
        if self.l2 is not None:
            total += self.l2.total_cache_energy_j
        return total

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics (for reports/tests)."""
        summary = {
            "dcache_relative_discharge": self.dcache_relative_discharge,
            "icache_relative_discharge": self.icache_relative_discharge,
            "dcache_precharged_fraction": self.dcache.precharged_fraction,
            "icache_precharged_fraction": self.icache.precharged_fraction,
            "dcache_overall_savings": self.dcache_overall_savings,
            "icache_overall_savings": self.icache_overall_savings,
        }
        if self.l2 is not None:
            summary["l2_relative_discharge"] = self.l2_relative_discharge
            summary["l2_precharged_fraction"] = self.l2.precharged_fraction
            summary["l2_overall_savings"] = self.l2_overall_savings
        return summary

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return {
            "dcache": self.dcache.to_dict(),
            "icache": self.icache.to_dict(),
            "processor": None if self.processor is None else self.processor.to_dict(),
            "l2": None if self.l2 is None else self.l2.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CacheEnergyReport":
        """Rebuild a report from :meth:`to_dict` output.

        Payloads written before the L2 gained a breakdown (no ``"l2"``
        key) load with ``l2=None``.
        """
        processor = data.get("processor")
        l2 = data.get("l2")
        return cls(
            dcache=EnergyBreakdown.from_dict(data["dcache"]),
            icache=EnergyBreakdown.from_dict(data["icache"]),
            processor=None
            if processor is None
            else ProcessorEnergyBreakdown.from_dict(processor),
            l2=None if l2 is None else EnergyBreakdown.from_dict(l2),
        )


def combine_run_energy(
    breakdowns: Dict[str, EnergyBreakdown],
    tech: TechnologyNode,
    pipeline_stats: Optional[PipelineStats] = None,
) -> CacheEnergyReport:
    """Build a :class:`CacheEnergyReport` from a finished run.

    Args:
        breakdowns: The dictionary returned by
            :meth:`repro.cache.MemoryHierarchy.finalize` (keys ``"L1D"``,
            ``"L1I"`` and — since the L2 became policy-controlled —
            ``"L2"``; an absent ``"L2"`` yields a report without one).
        tech: Technology node the run was simulated in.
        pipeline_stats: Optional pipeline statistics; when given, the
            Wattch-style processor energy is attached too.
    """
    processor = None
    if pipeline_stats is not None:
        processor = WattchEnergyModel(tech).breakdown(pipeline_stats)
    return CacheEnergyReport(
        dcache=breakdowns["L1D"],
        icache=breakdowns["L1I"],
        processor=processor,
        l2=breakdowns.get("L2"),
    )
