"""Combined cache energy reporting.

Glue between the per-cache :class:`~repro.cache.energy_accounting.EnergyBreakdown`
objects produced by the architectural simulation and the figures the paper
reports: relative bitline discharge (Figures 3, 8, 9), precharged-subarray
fraction (Figures 8, 10) and the overall cache / processor energy savings
(the 46%/41% opportunity of Section 4 and the 42%/36% result of Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.energy_accounting import EnergyBreakdown
from repro.cpu.stats import PipelineStats
from repro.circuits.technology import TechnologyNode

from .wattch import ProcessorEnergyBreakdown, WattchEnergyModel

__all__ = ["CacheEnergyReport", "combine_run_energy"]


@dataclass(frozen=True)
class CacheEnergyReport:
    """Energy summary of one simulated run under one precharge policy.

    Attributes:
        dcache: Energy breakdown of the L1 data cache.
        icache: Energy breakdown of the L1 instruction cache.
        processor: Non-cache processor energy (Wattch-style), or ``None``
            when only cache-level reporting was requested.
    """

    dcache: EnergyBreakdown
    icache: EnergyBreakdown
    processor: Optional[ProcessorEnergyBreakdown] = None

    # ------------------------------------------------------------------
    @property
    def dcache_relative_discharge(self) -> float:
        """L1D bitline discharge relative to blind static pull-up."""
        return self.dcache.relative_discharge

    @property
    def icache_relative_discharge(self) -> float:
        """L1I bitline discharge relative to blind static pull-up."""
        return self.icache.relative_discharge

    @property
    def dcache_discharge_savings(self) -> float:
        """Fraction of L1D bitline discharge eliminated."""
        return self.dcache.discharge_savings

    @property
    def icache_discharge_savings(self) -> float:
        """Fraction of L1I bitline discharge eliminated."""
        return self.icache.discharge_savings

    @property
    def dcache_overall_savings(self) -> float:
        """L1D total-energy savings relative to the static-pull-up cache."""
        return self.dcache.overall_energy_savings

    @property
    def icache_overall_savings(self) -> float:
        """L1I total-energy savings relative to the static-pull-up cache."""
        return self.icache.overall_energy_savings

    @property
    def total_cache_energy_j(self) -> float:
        """Total L1 cache energy (both caches) under the policy."""
        return self.dcache.total_cache_energy_j + self.icache.total_cache_energy_j

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics (for reports/tests)."""
        return {
            "dcache_relative_discharge": self.dcache_relative_discharge,
            "icache_relative_discharge": self.icache_relative_discharge,
            "dcache_precharged_fraction": self.dcache.precharged_fraction,
            "icache_precharged_fraction": self.icache.precharged_fraction,
            "dcache_overall_savings": self.dcache_overall_savings,
            "icache_overall_savings": self.icache_overall_savings,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return {
            "dcache": self.dcache.to_dict(),
            "icache": self.icache.to_dict(),
            "processor": None if self.processor is None else self.processor.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CacheEnergyReport":
        """Rebuild a report from :meth:`to_dict` output."""
        processor = data.get("processor")
        return cls(
            dcache=EnergyBreakdown.from_dict(data["dcache"]),
            icache=EnergyBreakdown.from_dict(data["icache"]),
            processor=None
            if processor is None
            else ProcessorEnergyBreakdown.from_dict(processor),
        )


def combine_run_energy(
    breakdowns: Dict[str, EnergyBreakdown],
    tech: TechnologyNode,
    pipeline_stats: Optional[PipelineStats] = None,
) -> CacheEnergyReport:
    """Build a :class:`CacheEnergyReport` from a finished run.

    Args:
        breakdowns: The dictionary returned by
            :meth:`repro.cache.MemoryHierarchy.finalize` (keys ``"L1D"``
            and ``"L1I"``).
        tech: Technology node the run was simulated in.
        pipeline_stats: Optional pipeline statistics; when given, the
            Wattch-style processor energy is attached too.
    """
    processor = None
    if pipeline_stats is not None:
        processor = WattchEnergyModel(tech).breakdown(pipeline_stats)
    return CacheEnergyReport(
        dcache=breakdowns["L1D"],
        icache=breakdowns["L1I"],
        processor=processor,
    )
